//! Cross-crate integration tests: the full stack (simkit → storage → dfs →
//! stores → ycsb → bench-core) driven end to end at smoke scale.

use bytes::Bytes;
use cloudserve::bench_core::driver::{self, DriverConfig};
use cloudserve::bench_core::setup::{build_cstore, build_cstore_with, build_hstore, Scale};
use cloudserve::bench_core::{DriverEvent, SimStore};
use cloudserve::cstore::Consistency;
use cloudserve::simkit::Sim;
use cloudserve::storage::{OpKind, OpResult, StoreOp};
use cloudserve::ycsb::{encode_key, WorkloadSpec};

fn quick(workload: WorkloadSpec, scale: &Scale) -> DriverConfig {
    DriverConfig {
        threads: 8,
        warmup_ops: 200,
        measure_ops: 1_500,
        value_len: scale.value_len,
        ..DriverConfig::new(workload, scale.records)
    }
}

#[test]
fn every_paper_workload_runs_on_both_stores() {
    let scale = Scale::tiny();
    for workload in ycsb::WorkloadSpec::paper_stress_workloads() {
        let mut h = build_hstore(&scale, 3);
        driver::load(&mut h, scale.records, scale.value_len, 1);
        let out = driver::run(&mut h, &quick(workload.clone(), &scale));
        assert_eq!(out.metrics.ops(), 1_500, "hstore {}", workload.name);
        assert_eq!(out.errors, 0, "hstore {}", workload.name);

        let mut c = build_cstore(&scale, 3, Consistency::One, Consistency::One);
        driver::load(&mut c, scale.records, scale.value_len, 1);
        let out = driver::run(&mut c, &quick(workload.clone(), &scale));
        assert_eq!(out.metrics.ops(), 1_500, "cstore {}", workload.name);
        assert_eq!(out.errors, 0, "cstore {}", workload.name);
    }
}

#[test]
fn quorum_and_write_all_never_serve_stale_reads() {
    let scale = Scale::tiny();
    for (read, write) in [
        (Consistency::Quorum, Consistency::Quorum),
        (Consistency::One, Consistency::All),
    ] {
        let mut c = build_cstore(&scale, 3, read, write);
        driver::load(&mut c, scale.records, scale.value_len, 5);
        let out = driver::run(&mut c, &quick(WorkloadSpec::read_update(), &scale));
        let (stale, checked) = out.metrics.staleness();
        assert!(checked > 0);
        assert_eq!(
            stale, 0,
            "W+R>N must be strongly consistent ({read:?}/{write:?})"
        );
    }
}

#[test]
fn hstore_is_always_strongly_consistent() {
    let scale = Scale::tiny();
    let mut h = build_hstore(&scale, 6);
    driver::load(&mut h, scale.records, scale.value_len, 5);
    let out = driver::run(&mut h, &quick(WorkloadSpec::read_update(), &scale));
    let (stale, checked) = out.metrics.staleness();
    assert!(checked > 0);
    assert_eq!(stale, 0, "single-primary reads can never be stale");
}

#[test]
fn both_stores_return_identical_scan_rows() {
    // Same data, same shards: a scan must return the same keys from either
    // architecture (values are pooled; compare keys and counts).
    let scale = Scale::tiny();
    let mut h = build_hstore(&scale, 2);
    let mut c = build_cstore(&scale, 2, Consistency::One, Consistency::One);
    driver::load(&mut h, scale.records, scale.value_len, 9);
    driver::load(&mut c, scale.records, scale.value_len, 9);

    fn scan_keys<S: SimStore>(store: &mut S, start: bytes::Bytes, limit: usize) -> Vec<Vec<u8>> {
        let mut sim: Sim<DriverEvent<S::Event>> = Sim::new(3);
        store.submit(&mut sim, 1, StoreOp::Scan { start, limit });
        while let Some(ev) = sim.next() {
            if let DriverEvent::Store(ev) = ev {
                store.handle(&mut sim, ev);
            }
            if let Some(comp) = store.drain_completions().pop() {
                match comp.result {
                    OpResult::Rows(rows) => {
                        return rows.into_iter().map(|(k, _)| k.to_vec()).collect()
                    }
                    other => panic!("scan failed: {other:?}"),
                }
            }
        }
        panic!("scan never completed");
    }

    for id in [0u64, 77, 1_500] {
        let start = encode_key(id);
        let hk = scan_keys(&mut h, start.clone(), 25);
        let ck = scan_keys(&mut c, start, 25);
        assert_eq!(hk.len(), 25);
        assert_eq!(hk, ck, "scan divergence starting at id {id}");
    }
}

#[test]
fn read_your_own_write_through_the_full_path() {
    let scale = Scale::tiny();
    let mut c = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
    let mut sim: Sim<DriverEvent<cloudserve::cstore::Event>> = Sim::new(1);
    let key = encode_key(123);
    c.submit(
        &mut sim,
        1,
        StoreOp::Insert {
            key: key.clone(),
            value: Bytes::from_static(b"mine"),
        },
    );
    let mut wrote = false;
    while let Some(ev) = sim.next() {
        if let DriverEvent::Store(ev) = ev {
            cloudserve::cstore::Cluster::handle(&mut c, &mut sim, ev);
        }
        for comp in c.drain_completions() {
            if comp.token == 1 {
                assert!(matches!(comp.result, OpResult::Written { .. }));
                wrote = true;
                c.submit(&mut sim, 2, StoreOp::Read { key: key.clone() });
            }
            if comp.token == 2 {
                match comp.result {
                    OpResult::Value(Some(cell)) => {
                        assert_eq!(cell.value.as_deref(), Some(&b"mine"[..]));
                        return;
                    }
                    other => panic!("read-your-write failed: {other:?}"),
                }
            }
        }
    }
    panic!("never completed (wrote={wrote})");
}

#[test]
fn end_to_end_determinism_across_full_runs() {
    let scale = Scale::tiny();
    let go = |seed: u64| {
        let mut c = build_cstore(&scale, 3, Consistency::One, Consistency::One);
        driver::load(&mut c, scale.records, scale.value_len, seed);
        let mut cfg = quick(WorkloadSpec::read_latest(), &scale);
        cfg.seed = seed;
        let out = driver::run(&mut c, &cfg);
        (
            out.metrics.ops(),
            out.sim_duration_us,
            out.metrics.overall().max(),
            out.counters,
        )
    };
    assert_eq!(go(77), go(77));
    assert_ne!(go(77).1, go(78).1, "different seeds should differ");
}

#[test]
fn rmw_latency_exceeds_component_latencies() {
    let scale = Scale::tiny();
    let mut h = build_hstore(&scale, 2);
    driver::load(&mut h, scale.records, scale.value_len, 3);
    let out = driver::run(&mut h, &quick(WorkloadSpec::read_modify_write(), &scale));
    let rmw = out.metrics.for_op(OpKind::ReadModifyWrite).unwrap();
    let read = out.metrics.for_op(OpKind::Read).unwrap();
    assert!(rmw.mean() > read.mean());
}

#[test]
fn read_repair_chance_zero_leaves_failures_unrepaired() {
    let scale = Scale::tiny();
    let mut c = build_cstore_with(&scale, 3, Consistency::One, Consistency::One, |cfg| {
        cfg.read_repair_chance = 0.0;
        cfg.hinted_handoff = false;
    });
    driver::load(&mut c, scale.records, scale.value_len, 5);
    let out = driver::run(&mut c, &quick(WorkloadSpec::read_mostly(), &scale));
    assert_eq!(out.errors, 0);
    assert_eq!(c.metrics().repair_fanouts, 0);
    assert_eq!(c.metrics().repair_writes, 0);
}

#[test]
fn audit_history_reproduces_the_staleness_tracker() {
    // The recorded history must carry enough to re-derive the live
    // tracker's accounting exactly: replaying it through
    // `History::stale_counts` gives the same (stale, checked, missing)
    // triple as `RunMetrics::staleness()` / `missing_reads()`. Run a
    // config where staleness actually occurs (CL=ONE under a crash) so
    // the invariant is exercised on nonzero counts.
    let scale = Scale::tiny();
    let mut c = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut c, scale.records, scale.value_len, 5);
    let mut cfg = quick(WorkloadSpec::read_update(), &scale);
    cfg.measure_ops = 4_000;
    cfg.audit = cloudserve::audit::AuditConfig::all();
    cfg.faults = cloudserve::faults::FaultPlan::new().crash_window(
        cloudserve::simkit::NodeId(0),
        400_000,
        900_000,
    );
    let out = driver::run(&mut c, &cfg);
    let history = out.audit.expect("audit enabled");
    let replay = history.stale_counts();
    let (stale, checked) = out.metrics.staleness();
    assert!(checked > 0);
    assert_eq!(replay.checked, checked);
    assert_eq!(replay.stale, stale);
    assert_eq!(replay.missing, out.metrics.missing_reads());
    // Client-sampled recording stays a subset that never invents checks.
    let mut cfg2 = quick(WorkloadSpec::read_update(), &scale);
    cfg2.measure_ops = 4_000;
    cfg2.audit = cloudserve::audit::AuditConfig::every(4);
    let out2 = driver::run(&mut c, &cfg2);
    let sampled = out2.audit.expect("audit enabled").stale_counts();
    let (_, checked2) = out2.metrics.staleness();
    assert!(sampled.checked > 0, "some clients sampled");
    assert!(
        sampled.checked < checked2,
        "sampling records a strict subset"
    );
}
