//! Overload-robustness integration: open-loop arrivals, admission control,
//! and load shedding driven across the full stack (driver → stores).

use cloudserve::bench_core::driver::{self, ArrivalMode, DriverConfig};
use cloudserve::bench_core::resilience::RetryPolicy;
use cloudserve::bench_core::setup::{
    build_cstore, build_cstore_with, build_hstore, build_hstore_with, Scale,
};
use cloudserve::cstore::Consistency;
use cloudserve::simkit::{AdmissionConfig, AdmissionPolicy};
use cloudserve::ycsb::{OpenLoop, Tenant, WorkloadSpec};

fn two_tenants() -> Vec<Tenant> {
    vec![
        Tenant {
            name: "interactive",
            weight: 0.7,
            priority: 0,
            mix: None,
        },
        Tenant {
            name: "batch",
            weight: 0.3,
            priority: 2,
            mix: None,
        },
    ]
}

fn open_cfg(scale: &Scale, rate: f64, threads: usize) -> DriverConfig {
    DriverConfig {
        threads,
        warmup_ops: 100,
        measure_ops: 1_200,
        value_len: scale.value_len,
        retry: RetryPolicy {
            deadline_us: 100_000,
            ..RetryPolicy::none()
        },
        arrival: ArrivalMode::OpenLoop(OpenLoop {
            ops_per_sec: rate,
            diurnal_amplitude: 0.0,
            diurnal_period_us: 0,
            flash: None,
            tenants: two_tenants(),
        }),
        ..DriverConfig::new(WorkloadSpec::read_mostly(), scale.records)
    }
}

/// Open-loop arrivals chain from a single simulated event stream, so the
/// `threads` knob (a closed-loop concept) must not affect results at all.
#[test]
fn open_loop_results_are_thread_count_invariant() {
    let scale = Scale::tiny();
    let run_with_threads = |threads: usize| {
        let mut c = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
        driver::load(&mut c, scale.records, scale.value_len, 7);
        let out = driver::run(&mut c, &open_cfg(&scale, 4_000.0, threads));
        (
            out.throughput,
            out.mean_latency_us,
            out.errors,
            out.events_dispatched,
            out.sim_duration_us,
            out.metrics.overall().quantile(0.99),
        )
    };
    let one = run_with_threads(1);
    assert_eq!(one, run_with_threads(16));
    assert_eq!(one, run_with_threads(64));
}

/// An enabled admission controller whose bound never binds must be
/// byte-identical to admission-off: the admit decision is a pure function,
/// so no RNG draws and no events may differ.
#[test]
fn unreachable_admission_bound_is_byte_identical_to_off() {
    let scale = Scale::tiny();
    let wide_open = AdmissionConfig {
        max_in_flight: 1_000_000,
        policy: AdmissionPolicy::RejectNewest,
        est_service_us: 0,
    };
    let fingerprint = |out: driver::RunOutcome| {
        (
            out.throughput,
            out.mean_latency_us,
            out.errors,
            out.events_dispatched,
            out.sim_duration_us,
        )
    };
    let cfg = DriverConfig {
        threads: 8,
        warmup_ops: 200,
        measure_ops: 1_500,
        value_len: scale.value_len,
        ..DriverConfig::new(WorkloadSpec::read_update(), scale.records)
    };

    let mut c_off = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
    driver::load(&mut c_off, scale.records, scale.value_len, 3);
    let mut c_on = build_cstore_with(&scale, 3, Consistency::Quorum, Consistency::Quorum, |c| {
        c.admission = wide_open;
    });
    driver::load(&mut c_on, scale.records, scale.value_len, 3);
    assert_eq!(
        fingerprint(driver::run(&mut c_off, &cfg)),
        fingerprint(driver::run(&mut c_on, &cfg)),
        "cstore: unbindable admission bound changed the run"
    );

    let mut h_off = build_hstore(&scale, 3);
    driver::load(&mut h_off, scale.records, scale.value_len, 3);
    let mut h_on = build_hstore_with(&scale, 3, |h| {
        h.admission = wide_open;
    });
    driver::load(&mut h_on, scale.records, scale.value_len, 3);
    assert_eq!(
        fingerprint(driver::run(&mut h_off, &cfg)),
        fingerprint(driver::run(&mut h_on, &cfg)),
        "hstore: unbindable admission bound changed the run"
    );
}

/// Past the knee with a tight bound, every client-visible error is a shed
/// (`OpError::Overloaded`), the store's `shed` counter agrees with the
/// driver's per-tenant accounting, and successes still flow.
#[test]
fn shed_accounting_is_consistent_across_layers() {
    let scale = Scale::tiny();
    let mut c = build_cstore_with(&scale, 3, Consistency::One, Consistency::One, |c| {
        c.admission = AdmissionConfig {
            max_in_flight: 16,
            policy: AdmissionPolicy::StrictPriority,
            est_service_us: 1_000,
        };
    });
    driver::load(&mut c, scale.records, scale.value_len, 11);
    let out = driver::run(&mut c, &open_cfg(&scale, 32_000.0, 1));
    assert!(out.errors > 0, "overload with a 16-deep bound must shed");
    assert!(out.metrics.ops() > 0, "admitted traffic must still succeed");
    let tenant_shed: u64 = out.metrics.tenants().iter().map(|t| t.shed).sum();
    let tenant_errors: u64 = out.metrics.tenants().iter().map(|t| t.errors).sum();
    assert_eq!(tenant_errors, out.errors, "tenant errors must sum to total");
    assert_eq!(
        tenant_shed, out.errors,
        "with no faults, every error is an admission shed"
    );
    let store_shed = out
        .counters
        .iter()
        .find(|(name, _)| *name == "shed")
        .map(|(_, v)| *v)
        .expect("stores export a shed counter");
    // The store counter is cumulative (warm-up included), the driver's is
    // window-only.
    assert!(
        store_shed >= tenant_shed,
        "store shed {store_shed} < window shed {tenant_shed}"
    );
}

/// Deadline-aware admission drops ops whose remaining budget cannot cover
/// the estimated service time — with an impossible estimate every op is
/// shed at the door, instantly.
#[test]
fn deadline_aware_early_drop_sheds_doomed_ops() {
    let scale = Scale::tiny();
    let mut h = build_hstore_with(&scale, 3, |h| {
        h.admission = AdmissionConfig {
            max_in_flight: 1_000_000,
            policy: AdmissionPolicy::DeadlineAware,
            est_service_us: 10_000_000,
        };
    });
    driver::load(&mut h, scale.records, scale.value_len, 5);
    let mut cfg = open_cfg(&scale, 2_000.0, 1);
    cfg.retry = RetryPolicy {
        deadline_us: 1_000, // 1 ms budget << 10 s estimated service
        ..RetryPolicy::none()
    };
    cfg.warmup_ops = 0;
    cfg.measure_ops = 500;
    let out = driver::run(&mut h, &cfg);
    assert_eq!(out.metrics.ops(), 0, "no op can cover the service estimate");
    assert_eq!(out.errors, 500, "every op is shed at the door");
    let shed: u64 = out.metrics.tenants().iter().map(|t| t.shed).sum();
    assert_eq!(shed, 500);
}
