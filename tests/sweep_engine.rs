//! Sweep-engine integration tests: scheduling never changes results, and
//! the copy-on-write snapshots the engine stamps out per cell are truly
//! independent of their base state and of each other.

use bytes::Bytes;
use cloudserve::bench_core::driver;
use cloudserve::bench_core::micro::{run_micro_with, MicroConfig};
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::bench_core::sweep::{derive_seed, CellCtx, SeedPolicy};
use cloudserve::bench_core::{DriverEvent, SimStore, Sweep};
use cloudserve::cstore::Consistency;
use cloudserve::simkit::Sim;
use cloudserve::storage::{OpResult, StoreOp};
use cloudserve::ycsb::encode_key;
use proptest::prelude::*;

/// Read one key through the full async path, off virtual time.
fn read_value<S: SimStore>(store: &mut S, key: Bytes) -> Option<Bytes> {
    let mut sim: Sim<DriverEvent<S::Event>> = Sim::new(11);
    store.submit(&mut sim, 1, StoreOp::Read { key });
    while let Some(ev) = sim.next() {
        if let DriverEvent::Store(ev) = ev {
            store.handle(&mut sim, ev);
        }
        if let Some(comp) = store.drain_completions().pop() {
            match comp.result {
                OpResult::Value(cell) => return cell.and_then(|c| c.value),
                other => panic!("read failed: {other:?}"),
            }
        }
    }
    panic!("read never completed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_results_are_schedule_independent(
        root in any::<u64>(),
        n in 0usize..48,
        threads in 2usize..9,
    ) {
        let cells: Vec<u64> = (0..n as u64).collect();
        let f = |ctx: CellCtx, &c: &u64| (ctx.index, ctx.seed, ctx.seed.wrapping_mul(c + 1));
        let serial = Sweep::new()
            .serial()
            .with_seed_policy(SeedPolicy::PerCell)
            .run(root, &cells, f);
        let parallel = Sweep::new()
            .with_threads(threads)
            .with_seed_policy(SeedPolicy::PerCell)
            .run(root, &cells, f);
        prop_assert_eq!(&serial.results, &parallel.results);
        for (i, &(index, seed, _)) in parallel.results.iter().enumerate() {
            prop_assert_eq!(index, i);
            prop_assert_eq!(seed, derive_seed(root, i));
        }
    }
}

#[test]
fn micro_grid_is_bitwise_identical_serial_vs_parallel() {
    let cfg = MicroConfig::quick();
    let serial = run_micro_with(&cfg, &Sweep::new().serial());
    let parallel = run_micro_with(&cfg, &Sweep::new().with_threads(4));
    // Full f64 bit patterns, not approximate equality: the engine promises
    // the schedule is invisible to results.
    let key = |r: &cloudserve::bench_core::micro::MicroResult| -> Vec<_> {
        r.cells
            .iter()
            .map(|c| {
                (
                    c.store.short(),
                    c.rf,
                    c.op.label(),
                    c.mean_us.to_bits(),
                    c.p95_us,
                    c.throughput.to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(key(&serial), key(&parallel));
    // Each run loaded each of the 4 base states exactly once.
    assert_eq!(serial.telemetry.base_loads, 4);
    assert_eq!(parallel.telemetry.base_loads, 4);
}

#[test]
fn cstore_snapshots_are_copy_on_write_and_independent() {
    let scale = Scale::tiny();
    let mut base = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut base, scale.records, scale.value_len, 7);

    let mut fork = base.snapshot();
    let sibling = base.snapshot();
    assert!(SimStore::shares_storage_with(&base, &fork));
    assert!(SimStore::shares_storage_with(&fork, &sibling));

    let key = encode_key(42);
    let original = read_value(&mut base, key.clone()).expect("loaded key");

    // Overwrite the key in the fork and flush it into a new sorted run.
    SimStore::load_direct(
        &mut fork,
        key.clone(),
        Bytes::from_static(b"forked"),
        u64::MAX,
    );
    SimStore::flush_all(&mut fork);
    assert!(!SimStore::shares_storage_with(&base, &fork));

    // The base and the sibling snapshot are untouched: they still share
    // every run and still serve the original value.
    assert!(SimStore::shares_storage_with(&base, &sibling));
    assert_eq!(
        read_value(&mut fork, key.clone()).as_deref(),
        Some(&b"forked"[..])
    );
    assert_eq!(
        read_value(&mut base, key).as_deref(),
        Some(original.as_ref())
    );
}

#[test]
fn hstore_snapshots_are_copy_on_write_and_independent() {
    let scale = Scale::tiny();
    let mut base = build_hstore(&scale, 3);
    driver::load(&mut base, scale.records, scale.value_len, 7);

    let mut fork = base.snapshot();
    let sibling = base.snapshot();
    assert!(SimStore::shares_storage_with(&base, &fork));

    let key = encode_key(42);
    let original = read_value(&mut base, key.clone()).expect("loaded key");

    SimStore::load_direct(
        &mut fork,
        key.clone(),
        Bytes::from_static(b"forked"),
        u64::MAX,
    );
    SimStore::flush_all(&mut fork);
    assert!(!SimStore::shares_storage_with(&base, &fork));
    assert!(SimStore::shares_storage_with(&base, &sibling));
    assert_eq!(
        read_value(&mut fork, key.clone()).as_deref(),
        Some(&b"forked"[..])
    );
    assert_eq!(
        read_value(&mut base, key).as_deref(),
        Some(original.as_ref())
    );
}

#[test]
fn driving_a_snapshot_leaves_the_base_reusable() {
    // The engine's whole premise: one load, many cells. A full measured run
    // on a snapshot must leave the base able to stamp out further snapshots
    // that behave as if they were the first.
    let scale = Scale::tiny();
    let mut base = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut base, scale.records, scale.value_len, 7);

    let dcfg = cloudserve::bench_core::driver::DriverConfig {
        threads: 8,
        warmup_ops: 100,
        measure_ops: 600,
        value_len: scale.value_len,
        ..cloudserve::bench_core::driver::DriverConfig::new(
            cloudserve::ycsb::WorkloadSpec::read_update(),
            scale.records,
        )
    };
    let run = |c: &cloudserve::cstore::Cluster| {
        let mut snap = c.snapshot();
        let out = driver::run(&mut snap, &dcfg);
        (out.metrics.ops(), out.sim_duration_us, out.counters)
    };
    let first = run(&base);
    let second = run(&base);
    assert_eq!(first, second, "base state was mutated by a snapshot run");
}
