//! Integration tests pinning the consistency *semantics* (not performance)
//! of the two stores across failure and repair scenarios.

use bytes::Bytes;
use cloudserve::bench_core::setup::{build_cstore, build_cstore_with, Scale};
use cloudserve::bench_core::DriverEvent;
use cloudserve::cstore::{Cluster, Consistency, Event};
use cloudserve::simkit::Sim;
use cloudserve::storage::{OpError, OpResult, StoreOp};
use cloudserve::ycsb::encode_key;

type Dsim = Sim<DriverEvent<Event>>;

struct H {
    c: Cluster,
    sim: Dsim,
    next: u64,
}

impl H {
    fn new(c: Cluster) -> Self {
        Self {
            c,
            sim: Sim::new(99),
            next: 1,
        }
    }

    fn op(&mut self, op: StoreOp) -> OpResult {
        let t = self.next;
        self.next += 1;
        self.c.submit(&mut self.sim, t, op);
        while let Some(ev) = self.sim.next() {
            if let DriverEvent::Store(ev) = ev {
                self.c.handle(&mut self.sim, ev);
            }
            if let Some(done) = self
                .c
                .drain_completions()
                .into_iter()
                .find(|c| c.token == t)
            {
                // Drain remaining events so background repair settles.
                while let Some(ev) = self.sim.next() {
                    if let DriverEvent::Store(ev) = ev {
                        self.c.handle(&mut self.sim, ev);
                    }
                    self.c.drain_completions();
                }
                return done.result;
            }
        }
        panic!("op never completed");
    }

    fn write(&mut self, id: u64, val: &str) -> OpResult {
        self.op(StoreOp::Update {
            key: encode_key(id),
            value: Bytes::copy_from_slice(val.as_bytes()),
        })
    }

    fn read(&mut self, id: u64) -> Option<Vec<u8>> {
        match self.op(StoreOp::Read {
            key: encode_key(id),
        }) {
            OpResult::Value(v) => v.and_then(|c| c.value.map(|b| b.to_vec())),
            other => panic!("read failed: {other:?}"),
        }
    }
}

fn cluster(read: Consistency, write: Consistency) -> Cluster {
    build_cstore(&Scale::tiny(), 3, read, write)
}

#[test]
fn quorum_survives_any_single_failure_with_read_your_writes() {
    for victim_idx in 0..3 {
        let mut h = H::new(cluster(Consistency::Quorum, Consistency::Quorum));
        h.write(5, "before");
        let reps = h.c.ring().replicas(&encode_key(5), 3);
        h.c.fail_node(reps[victim_idx]);
        assert!(matches!(h.write(5, "after"), OpResult::Written { .. }));
        assert_eq!(
            h.read(5).as_deref(),
            Some(&b"after"[..]),
            "read-your-writes must hold with replica {victim_idx} down"
        );
    }
}

#[test]
fn write_all_fails_but_quorum_succeeds_under_one_failure() {
    let mut h = H::new(cluster(Consistency::One, Consistency::All));
    let reps = h.c.ring().replicas(&encode_key(9), 3);
    h.c.fail_node(reps[1]);
    assert_eq!(
        h.op(StoreOp::Update {
            key: encode_key(9),
            value: Bytes::from_static(b"x"),
        }),
        OpResult::Error(OpError::Unavailable),
        "ALL requires every replica"
    );
    let mut h = H::new(cluster(Consistency::Quorum, Consistency::Quorum));
    let reps = h.c.ring().replicas(&encode_key(9), 3);
    h.c.fail_node(reps[1]);
    assert!(matches!(h.write(9, "x"), OpResult::Written { .. }));
}

#[test]
fn two_failures_break_quorum_but_not_one() {
    let mut h = H::new(cluster(Consistency::Quorum, Consistency::Quorum));
    let reps = h.c.ring().replicas(&encode_key(1), 3);
    h.c.fail_node(reps[1]);
    h.c.fail_node(reps[2]);
    assert_eq!(
        h.op(StoreOp::Update {
            key: encode_key(1),
            value: Bytes::from_static(b"x"),
        }),
        OpResult::Error(OpError::Unavailable)
    );
    let mut h = H::new(cluster(Consistency::One, Consistency::One));
    let reps = h.c.ring().replicas(&encode_key(1), 3);
    h.c.fail_node(reps[1]);
    h.c.fail_node(reps[2]);
    assert!(matches!(h.write(1, "x"), OpResult::Written { .. }));
    assert_eq!(h.read(1).as_deref(), Some(&b"x"[..]));
}

#[test]
fn hinted_handoff_converges_all_replicas_after_recovery() {
    let mut h = H::new(cluster(Consistency::One, Consistency::One));
    let reps = h.c.ring().replicas(&encode_key(7), 3);
    let victim = reps[2];
    h.write(7, "v1");
    h.c.fail_node(victim);
    h.write(7, "v2");
    assert!(h.c.metrics().hints_stored >= 1);
    // Recover; hints replay through the event loop.
    h.c.recover_node(&mut h.sim, victim);
    let mut sim = std::mem::replace(&mut h.sim, Sim::new(0));
    while let Some(ev) = sim.next() {
        if let DriverEvent::Store(ev) = ev {
            h.c.handle(&mut sim, ev);
        }
        h.c.drain_completions();
    }
    h.sim = sim;
    let cell =
        h.c.read_local(victim, &encode_key(7))
            .expect("hint applied");
    assert_eq!(cell.value.as_deref(), Some(&b"v2"[..]));
    assert!(h.c.metrics().hints_replayed >= 1);
}

#[test]
fn read_repair_converges_all_replicas_under_full_fanout() {
    let mut h = H::new(build_cstore_with(
        &Scale::tiny(),
        3,
        Consistency::One,
        Consistency::One,
        |c| {
            c.read_repair_chance = 1.0;
            c.hinted_handoff = false;
        },
    ));
    let reps = h.c.ring().replicas(&encode_key(3), 3);
    h.write(3, "old");
    h.c.fail_node(reps[2]);
    h.write(3, "new");
    h.c.node_mut(reps[2]).hw.recover();
    // One read with guaranteed fan-out repairs the lagging replica.
    let _ = h.read(3);
    for &r in &reps {
        let cell = h.c.read_local(r, &encode_key(3)).expect("present");
        assert_eq!(
            cell.value.as_deref(),
            Some(&b"new"[..]),
            "replica {r} not converged"
        );
    }
}

#[test]
fn deletes_propagate_as_tombstones_across_replicas() {
    let mut h = H::new(cluster(Consistency::Quorum, Consistency::Quorum));
    h.write(11, "soon gone");
    assert!(matches!(
        h.op(StoreOp::Delete {
            key: encode_key(11)
        }),
        OpResult::Written { .. }
    ));
    assert_eq!(h.read(11), None);
    // Every replica holds the tombstone, not the value.
    for r in h.c.ring().replicas(&encode_key(11), 3) {
        let cell = h.c.read_local(r, &encode_key(11)).expect("tombstone");
        assert!(cell.is_tombstone());
    }
}

#[test]
fn timestamps_resolve_write_races_identically_everywhere() {
    // Two racing writes through different coordinators: all replicas must
    // converge on the same winner (the one with the later coordinator
    // timestamp), and a quorum read returns it.
    let mut h = H::new(cluster(Consistency::Quorum, Consistency::Quorum));
    h.write(20, "first");
    h.write(20, "second");
    assert_eq!(h.read(20).as_deref(), Some(&b"second"[..]));
    let reps = h.c.ring().replicas(&encode_key(20), 3);
    let versions: Vec<_> = reps
        .iter()
        .map(|&r| h.c.read_local(r, &encode_key(20)).expect("present"))
        .collect();
    assert!(
        versions.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {versions:?}"
    );
}
