//! Integration tests for the fault-injection subsystem and the client
//! resilience layer riding on it: identical (plan, seed) pairs reproduce
//! bit-identical timelines — with and without retries/hedging — inert
//! plans and no-op retry policies leave a run untouched, and deadline
//! give-ups surface exactly one client error without leaking tokens.

use cloudserve::bench_core::driver::{self, DriverConfig, RunOutcome};
use cloudserve::bench_core::resilience::RetryPolicy;
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::cstore::Consistency;
use cloudserve::faults::FaultPlan;
use cloudserve::simkit::NodeId;
use cloudserve::ycsb::WorkloadSpec;

fn faulted_cfg(scale: &Scale, plan: FaultPlan, window_us: u64) -> DriverConfig {
    DriverConfig {
        threads: 8,
        target_ops_per_sec: 1_500.0,
        warmup_ops: 200,
        measure_ops: 2_000,
        value_len: scale.value_len,
        faults: plan,
        timeline_window_us: window_us,
        ..DriverConfig::new(WorkloadSpec::read_update(), scale.records)
    }
}

fn run_hstore(plan: FaultPlan, window_us: u64) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_hstore(&scale, 3);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &faulted_cfg(&scale, plan, window_us))
}

fn run_cstore(plan: FaultPlan, window_us: u64) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &faulted_cfg(&scale, plan, window_us))
}

fn run_cstore_with_policy(
    plan: FaultPlan,
    window_us: u64,
    write_cl: Consistency,
    retry: RetryPolicy,
) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_cstore(&scale, 3, Consistency::One, write_cl);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    let cfg = DriverConfig {
        retry,
        ..faulted_cfg(&scale, plan, window_us)
    };
    driver::run(&mut s, &cfg)
}

#[test]
fn identical_plan_and_seed_give_bit_identical_timelines() {
    let plan = FaultPlan::new().crash_window(NodeId(0), 400_000, 900_000);
    for runner in [run_hstore, run_cstore] {
        let a = runner(plan.clone(), 100_000);
        let b = runner(plan.clone(), 100_000);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.faults_injected, 2);
        assert_eq!(b.faults_injected, 2);
        let wa = a.metrics.timeline().expect("timeline enabled").windows();
        let wb = b.metrics.timeline().expect("timeline enabled").windows();
        assert!(!wa.is_empty());
        assert_eq!(wa, wb);
    }
}

#[test]
fn inert_plans_leave_the_run_untouched() {
    let empty = run_cstore(FaultPlan::new(), 100_000);
    assert_eq!(empty.faults_injected, 0);
    // A crash scheduled far beyond the run's horizon never fires inside
    // the measured window; a crash aimed at a node index the cluster does
    // not have is skipped by the injector. Both must reproduce the empty
    // plan's run exactly.
    let beyond = run_cstore(
        FaultPlan::new().crash_at(NodeId(0), 60_000_000_000),
        100_000,
    );
    let out_of_range = run_cstore(
        FaultPlan::new().crash_window(NodeId(99), 100_000, 200_000),
        100_000,
    );
    assert_eq!(out_of_range.faults_injected, 0);
    for other in [&beyond, &out_of_range] {
        assert_eq!(other.throughput, empty.throughput);
        assert_eq!(other.errors, empty.errors);
        assert_eq!(other.mean_latency_us, empty.mean_latency_us);
        assert_eq!(
            other
                .metrics
                .timeline()
                .expect("timeline enabled")
                .windows(),
            empty
                .metrics
                .timeline()
                .expect("timeline enabled")
                .windows(),
        );
    }
}

#[test]
fn timeline_recording_does_not_perturb_the_run() {
    let plan = FaultPlan::new().crash_window(NodeId(0), 400_000, 900_000);
    let with_timeline = run_hstore(plan.clone(), 100_000);
    let without = run_hstore(plan, 0);
    assert!(without.metrics.timeline().is_none());
    assert_eq!(with_timeline.throughput, without.throughput);
    assert_eq!(with_timeline.errors, without.errors);
    assert_eq!(with_timeline.mean_latency_us, without.mean_latency_us);
}

#[test]
fn retrying_and_hedging_timelines_are_seed_deterministic() {
    // Write-ALL under a crash produces a steady stream of retryable
    // errors, so the retry ladder, its jitter draws, and the hedging path
    // all genuinely engage — and must still replay bit-identically.
    let plan = FaultPlan::new().crash_window(NodeId(0), 400_000, 900_000);
    let policy = RetryPolicy::retrying(6, 10_000, 0).with_hedge(3_000);
    let go = || run_cstore_with_policy(plan.clone(), 100_000, Consistency::All, policy);
    let a = go();
    let b = go();
    let ra = a.metrics.resilience();
    assert!(ra.retries > 0, "the crash must exercise the retry path");
    assert!(ra.hedges > 0, "the tail must exercise the hedge path");
    assert_eq!(ra, b.metrics.resilience());
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.mean_latency_us, b.mean_latency_us);
    assert_eq!(
        a.metrics.timeline().expect("timeline enabled").windows(),
        b.metrics.timeline().expect("timeline enabled").windows(),
    );
}

#[test]
fn untriggered_policies_leave_the_run_bit_identical() {
    // The resilience layer's no-perturbation contract: under the default
    // config (RetryPolicy::none) the driver is bit-identical to one
    // predating the layer — proven against the checked-in fig1/fig2/fig4
    // artifacts — and an armed retry policy that never fires (no faults,
    // no errors, no hedging) draws no randomness and schedules no events,
    // so it reproduces the very same run.
    let baseline = run_cstore(FaultPlan::new(), 100_000);
    let explicit_none = run_cstore_with_policy(
        FaultPlan::new(),
        100_000,
        Consistency::One,
        RetryPolicy::none(),
    );
    let armed_but_idle = run_cstore_with_policy(
        FaultPlan::new(),
        100_000,
        Consistency::One,
        RetryPolicy::retrying(5, 10_000, 0),
    );
    for out in [&explicit_none, &armed_but_idle] {
        assert_eq!(out.metrics.resilience().retries, 0);
        assert_eq!(out.metrics.resilience().hedges, 0);
        assert_eq!(out.throughput, baseline.throughput);
        assert_eq!(out.errors, baseline.errors);
        assert_eq!(out.mean_latency_us, baseline.mean_latency_us);
        assert_eq!(out.sim_duration_us, baseline.sim_duration_us);
        assert_eq!(
            out.metrics.timeline().expect("timeline enabled").windows(),
            baseline
                .metrics
                .timeline()
                .expect("timeline enabled")
                .windows(),
        );
    }
}

#[test]
fn deadline_give_ups_settle_exactly_once_without_leaking_tokens() {
    // A permanently-dead replica under write-ALL makes every write fail;
    // the backoff ladder (60 ms, 120 ms, ...) outruns the 150 ms budget
    // after a retry or two, so each failing op must surface exactly one
    // client-visible error — no late completions, no stuck client
    // threads, no tokens left in the driver's maps.
    let plan = FaultPlan::new().crash_at(NodeId(0), 0);
    let out = run_cstore_with_policy(
        plan,
        100_000,
        Consistency::All,
        RetryPolicy::retrying(10, 60_000, 150_000),
    );
    assert!(out.errors > 0, "write-ALL with a dead replica must fail");
    let res = out.metrics.resilience();
    assert!(res.retries > 0, "the budget must allow at least one retry");
    assert!(
        res.deadline_exceeded > 0,
        "the ladder must hit the deadline: {res:?}"
    );
    // Every measured completion settled exactly once: successes plus
    // errors account for the full measured window, nothing settled twice
    // (which would overshoot) and nothing hung (which would undershoot or
    // leave unsettled ops behind).
    assert_eq!(out.metrics.ops() + out.errors, 2_000);
    assert_eq!(out.unsettled_ops, 0);
}

#[test]
fn randomized_plans_are_seed_deterministic() {
    let a = FaultPlan::randomized(1234, 5, 2_000_000);
    let b = FaultPlan::randomized(1234, 5, 2_000_000);
    assert_eq!(a, b);
    assert!(!a.is_empty());
    let c = FaultPlan::randomized(1235, 5, 2_000_000);
    assert_ne!(a, c, "different seeds should draw different plans");
}
