//! Integration tests for the fault-injection subsystem: identical
//! (plan, seed) pairs reproduce bit-identical timelines, inert plans
//! leave a run untouched, and randomized plans are seed-deterministic.

use cloudserve::bench_core::driver::{self, DriverConfig, RunOutcome};
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::cstore::Consistency;
use cloudserve::faults::FaultPlan;
use cloudserve::simkit::NodeId;
use cloudserve::ycsb::WorkloadSpec;

fn faulted_cfg(scale: &Scale, plan: FaultPlan, window_us: u64) -> DriverConfig {
    DriverConfig {
        threads: 8,
        target_ops_per_sec: 1_500.0,
        warmup_ops: 200,
        measure_ops: 2_000,
        value_len: scale.value_len,
        faults: plan,
        timeline_window_us: window_us,
        ..DriverConfig::new(WorkloadSpec::read_update(), scale.records)
    }
}

fn run_hstore(plan: FaultPlan, window_us: u64) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_hstore(&scale, 3);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &faulted_cfg(&scale, plan, window_us))
}

fn run_cstore(plan: FaultPlan, window_us: u64) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &faulted_cfg(&scale, plan, window_us))
}

#[test]
fn identical_plan_and_seed_give_bit_identical_timelines() {
    let plan = FaultPlan::new().crash_window(NodeId(0), 400_000, 900_000);
    for runner in [run_hstore, run_cstore] {
        let a = runner(plan.clone(), 100_000);
        let b = runner(plan.clone(), 100_000);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.faults_injected, 2);
        assert_eq!(b.faults_injected, 2);
        let wa = a.metrics.timeline().expect("timeline enabled").windows();
        let wb = b.metrics.timeline().expect("timeline enabled").windows();
        assert!(!wa.is_empty());
        assert_eq!(wa, wb);
    }
}

#[test]
fn inert_plans_leave_the_run_untouched() {
    let empty = run_cstore(FaultPlan::new(), 100_000);
    assert_eq!(empty.faults_injected, 0);
    // A crash scheduled far beyond the run's horizon never fires inside
    // the measured window; a crash aimed at a node index the cluster does
    // not have is skipped by the injector. Both must reproduce the empty
    // plan's run exactly.
    let beyond = run_cstore(
        FaultPlan::new().crash_at(NodeId(0), 60_000_000_000),
        100_000,
    );
    let out_of_range = run_cstore(
        FaultPlan::new().crash_window(NodeId(99), 100_000, 200_000),
        100_000,
    );
    assert_eq!(out_of_range.faults_injected, 0);
    for other in [&beyond, &out_of_range] {
        assert_eq!(other.throughput, empty.throughput);
        assert_eq!(other.errors, empty.errors);
        assert_eq!(other.mean_latency_us, empty.mean_latency_us);
        assert_eq!(
            other
                .metrics
                .timeline()
                .expect("timeline enabled")
                .windows(),
            empty
                .metrics
                .timeline()
                .expect("timeline enabled")
                .windows(),
        );
    }
}

#[test]
fn timeline_recording_does_not_perturb_the_run() {
    let plan = FaultPlan::new().crash_window(NodeId(0), 400_000, 900_000);
    let with_timeline = run_hstore(plan.clone(), 100_000);
    let without = run_hstore(plan, 0);
    assert!(without.metrics.timeline().is_none());
    assert_eq!(with_timeline.throughput, without.throughput);
    assert_eq!(with_timeline.errors, without.errors);
    assert_eq!(with_timeline.mean_latency_us, without.mean_latency_us);
}

#[test]
fn randomized_plans_are_seed_deterministic() {
    let a = FaultPlan::randomized(1234, 5, 2_000_000);
    let b = FaultPlan::randomized(1234, 5, 2_000_000);
    assert_eq!(a, b);
    assert!(!a.is_empty());
    let c = FaultPlan::randomized(1235, 5, 2_000_000);
    assert_ne!(a, c, "different seeds should draw different plans");
}
