//! Integration tests for the audit subsystem's two contracts:
//!
//! 1. **Zero perturbation** — with auditing disabled (the default) a run is
//!    bit-identical to one that never touched the recorder; enabling it
//!    changes *nothing* about the simulation itself (no events, no RNG
//!    draws), only what is observed.
//! 2. **Determinism** — the same seed and sampling config always produce
//!    the same recorded history, the Fig. 8 CSV is byte-identical across
//!    reruns and sweep thread counts, and the checkers are pure functions
//!    of the history.

use cloudserve::audit::{self, AuditConfig, PhaseWindow};
use cloudserve::bench_core::audit_experiment::{run_audit_with, AuditExperimentConfig};
use cloudserve::bench_core::driver::{self, DriverConfig, RunOutcome};
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::bench_core::Sweep;
use cloudserve::cstore::Consistency;
use cloudserve::faults::FaultPlan;
use cloudserve::simkit::NodeId;
use cloudserve::ycsb::WorkloadSpec;

fn cfg(scale: &Scale, audit: AuditConfig) -> DriverConfig {
    DriverConfig {
        threads: 8,
        warmup_ops: 200,
        measure_ops: 2_000,
        value_len: scale.value_len,
        audit,
        faults: FaultPlan::new().crash_window(NodeId(0), 400_000, 900_000),
        target_ops_per_sec: 1_500.0,
        ..DriverConfig::new(WorkloadSpec::read_update(), scale.records)
    }
}

fn run_hstore(audit: AuditConfig) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_hstore(&scale, 3);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &cfg(&scale, audit))
}

fn run_cstore(audit: AuditConfig) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &cfg(&scale, audit))
}

/// Everything the simulation itself decides, independent of observation.
fn fingerprint(out: &RunOutcome) -> (u64, u64, u64, u64, u64, Vec<(&'static str, u64)>) {
    (
        out.metrics.ops(),
        out.metrics.overall().max(),
        out.sim_duration_us,
        out.errors,
        out.unsettled_ops,
        out.counters.clone(),
    )
}

#[test]
fn auditing_enabled_perturbs_nothing() {
    for runner in [run_hstore, run_cstore] {
        let off = runner(AuditConfig::off());
        let on = runner(AuditConfig::all());
        assert!(off.audit.is_none(), "disabled run must carry no history");
        let history = on.audit.as_ref().expect("enabled run carries a history");
        assert!(!history.is_empty());
        // The observed run is bit-identical to the unobserved one: same
        // virtual timings, same histogram contents, same store counters.
        assert_eq!(fingerprint(&off), fingerprint(&on));
        assert_eq!(off.throughput, on.throughput);
        assert_eq!(off.mean_latency_us, on.mean_latency_us);
        assert_eq!(off.faults_injected, on.faults_injected);
    }
}

#[test]
fn same_seed_and_sampling_record_identical_histories() {
    for runner in [run_hstore, run_cstore] {
        for config in [AuditConfig::all(), AuditConfig::every(3)] {
            let a = runner(config).audit.expect("history");
            let b = runner(config).audit.expect("history");
            assert!(!a.is_empty());
            assert_eq!(a.records(), b.records());
        }
    }
}

#[test]
fn checkers_are_pure_functions_of_the_history() {
    let history = run_cstore(AuditConfig::all()).audit.expect("history");
    let windows = [
        PhaseWindow {
            label: "healthy",
            start_us: 0,
            end_us: 400_000,
        },
        PhaseWindow {
            label: "faulted",
            start_us: 400_000,
            end_us: u64::MAX,
        },
    ];
    assert_eq!(
        audit::check_sessions(&history, &windows),
        audit::check_sessions(&history, &windows)
    );
    let m1 = audit::staleness::margins(&history, &windows);
    let m2 = audit::staleness::margins(&history, &windows);
    assert_eq!(m1, m2);
    let deltas = [0, 1_000, 100_000];
    for (a, b) in m1.iter().zip(&m2) {
        assert_eq!(
            audit::staleness::curve(a, &deltas),
            audit::staleness::curve(b, &deltas)
        );
    }
    for key in history.keys_by_activity().into_iter().take(3) {
        let ops = audit::key_ops(&history, &key).expect("no deletes in read_update");
        assert_eq!(
            audit::check_key(&ops, Some(1), 100_000),
            audit::check_key(&ops, Some(1), 100_000)
        );
    }
}

#[test]
fn fig8_is_byte_identical_across_reruns_and_thread_counts() {
    // A reduced grid keeps the test quick while still crossing the sweep.
    let cfg = AuditExperimentConfig {
        rfs: vec![3],
        ..AuditExperimentConfig::quick()
    };
    let csv = |sweep: &Sweep| run_audit_with(&cfg, sweep).table().to_csv();
    let serial_a = csv(&Sweep::new().serial());
    let serial_b = csv(&Sweep::new().serial());
    let threaded = csv(&Sweep::new().with_threads(4));
    assert_eq!(serial_a, serial_b, "rerun must be byte-identical");
    assert_eq!(serial_a, threaded, "thread count must not change results");
}
