//! Integration tests for the span-tracing subsystem's two contracts:
//!
//! 1. **Zero perturbation** — with tracing disabled (the default) a run is
//!    bit-identical to one that never touched the tracer; enabling tracing
//!    changes *nothing* about the simulation itself (no events, no RNG
//!    draws), only what is observed.
//! 2. **Determinism** — the same seed and sampling config always produce
//!    byte-identical trace exports.

use cloudserve::bench_core::driver::{self, DriverConfig, RunOutcome};
use cloudserve::bench_core::resilience::RetryPolicy;
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::cstore::Consistency;
use cloudserve::faults::FaultPlan;
use cloudserve::obs::TraceConfig;
use cloudserve::simkit::NodeId;
use cloudserve::ycsb::WorkloadSpec;

fn cfg(scale: &Scale, trace: TraceConfig) -> DriverConfig {
    DriverConfig {
        threads: 8,
        warmup_ops: 200,
        measure_ops: 2_000,
        value_len: scale.value_len,
        trace,
        ..DriverConfig::new(WorkloadSpec::read_update(), scale.records)
    }
}

fn run_hstore(trace: TraceConfig) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_hstore(&scale, 3);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &cfg(&scale, trace))
}

fn run_cstore(trace: TraceConfig) -> RunOutcome {
    let scale = Scale::tiny();
    let mut s = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
    driver::load(&mut s, scale.records, scale.value_len, 7);
    driver::run(&mut s, &cfg(&scale, trace))
}

/// Everything the simulation itself decides, independent of observation.
fn fingerprint(out: &RunOutcome) -> (u64, u64, u64, u64, u64, Vec<(&'static str, u64)>) {
    (
        out.metrics.ops(),
        out.metrics.overall().max(),
        out.sim_duration_us,
        out.errors,
        out.unsettled_ops,
        out.counters.clone(),
    )
}

#[test]
fn tracing_enabled_perturbs_nothing() {
    for runner in [run_hstore, run_cstore] {
        let off = runner(TraceConfig::off());
        let on = runner(TraceConfig::all());
        assert!(off.trace.is_none(), "disabled run must carry no trace");
        let trace = on.trace.as_ref().expect("enabled run must carry a trace");
        assert!(!trace.ops.is_empty());
        // The observed run is bit-identical to the unobserved one: same
        // virtual timings, same histogram contents, same store counters.
        assert_eq!(fingerprint(&off), fingerprint(&on));
        assert_eq!(off.throughput, on.throughput);
        assert_eq!(off.mean_latency_us, on.mean_latency_us);
    }
}

#[test]
fn same_seed_and_sampling_give_byte_identical_exports() {
    for runner in [run_hstore, run_cstore] {
        let a = runner(TraceConfig::every(7));
        let b = runner(TraceConfig::every(7));
        let ta = a.trace.expect("trace");
        let tb = b.trace.expect("trace");
        assert!(!ta.ops.is_empty());
        assert_eq!(ta.to_jsonl(), tb.to_jsonl());
        assert_eq!(ta.to_csv(), tb.to_csv());
    }
}

#[test]
fn sampling_rate_bounds_the_trace_and_spans_nest_inside_op_lifetimes() {
    let out = run_cstore(TraceConfig::every(10));
    let trace = out.trace.expect("trace");
    let total = out.metrics.ops() + 200; // measured + warm-up
    let sampled = trace.ops.len() as u64;
    assert!(sampled > 0);
    assert!(
        sampled <= total / 10 + 1,
        "sampled {sampled} of {total} at 1-in-10"
    );
    for op in &trace.ops {
        assert!(op.settled > op.issued);
        // Some spans may legitimately outlive the op (a straggler replica
        // ack reconciled after the coordinator already responded); the
        // response leg itself always ends exactly at settle.
        for s in &op.spans {
            assert!(s.start < s.end, "empty spans are never recorded");
        }
        assert!(
            op.spans.iter().any(|s| s.end == op.settled),
            "no span ends at settle for op {}",
            op.op
        );
    }
}

#[test]
fn tracing_composes_with_faults_and_retries_without_perturbation() {
    let go = |trace: TraceConfig| {
        let scale = Scale::tiny();
        let mut s = build_cstore(&scale, 3, Consistency::One, Consistency::All);
        driver::load(&mut s, scale.records, scale.value_len, 7);
        let cfg = DriverConfig {
            // Throttled so the run is still going when the crash lands.
            target_ops_per_sec: 1_500.0,
            faults: FaultPlan::new().crash_window(NodeId(0), 400_000, 900_000),
            retry: RetryPolicy::retrying(4, 20_000, 2_000_000),
            trace,
            ..cfg(&scale, TraceConfig::off())
        };
        driver::run(&mut s, &cfg)
    };
    let off = go(TraceConfig::off());
    let on = go(TraceConfig::all());
    assert_eq!(fingerprint(&off), fingerprint(&on));
    assert_eq!(off.faults_injected, on.faults_injected);
    let trace = on.trace.expect("trace");
    // Retried ops fold every attempt's spans into one logical trace; the
    // run above forces retries, so at least one backoff span must appear.
    let has_backoff = trace.ops.iter().any(|op| {
        op.spans
            .iter()
            .any(|s| s.stage == cloudserve::obs::Stage::RetryBackoff)
    });
    assert!(has_backoff, "no retry backoff span found in a faulted run");
}
