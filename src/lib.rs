//! # cloudserve — umbrella crate
//!
//! Reproduction of *Wang, Li, Zhang, Zhou: "Benchmarking Replication and
//! Consistency Strategies in Cloud Serving Databases: HBase and Cassandra"*
//! (BPOE 2014 / VLDB workshops, LNCS 8807).
//!
//! This crate re-exports the whole workspace under one roof so the examples
//! and integration tests have a single dependency:
//!
//! * [`simkit`] — the discrete-event simulation kernel (the "testbed").
//! * [`storage`] — shared LSM storage-engine components.
//! * [`dfs`] — the replicated block filesystem (HDFS analog).
//! * [`hstore`] — the HBase analog.
//! * [`cstore`] — the Cassandra analog.
//! * [`faults`] — the deterministic fault-injection subsystem (declarative
//!   crash/recover/degradation plans the driver replays in virtual time).
//! * [`obs`] — deterministic per-op span tracing: stage taxonomy,
//!   critical-path extraction, and trace export (zero-cost when disabled).
//! * [`audit`] — client-centric consistency auditing: per-client
//!   operation-history recording (zero-cost when disabled),
//!   session-guarantee checkers, (Δ,p)-staleness curves, and a bounded
//!   linearizability checker.
//! * [`ycsb`] — the YCSB-analog workload generator and client.
//! * [`bench_core`] — the paper's benchmark methodology (micro/stress/
//!   consistency experiments, sweeps, report rendering).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub use audit;
pub use bench_core;
pub use cstore;
pub use dfs;
pub use faults;
pub use hstore;
pub use obs;
pub use simkit;
pub use storage;
pub use ycsb;
