//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the harness subset its benches use: [`black_box`],
//! [`Criterion::bench_function`] with [`Bencher::iter`], `sample_size`,
//! and the `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Instead of criterion's statistical machinery this harness takes
//! `sample_size` wall-clock samples of an auto-calibrated iteration batch
//! and prints min / median / mean nanoseconds per iteration. That is
//! enough to compare the workspace's A-vs-B microbenches (e.g. snapshot
//! clone vs full reload); it makes no outlier or confidence claims.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measured sample; batches are sized to roughly hit it.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// The benchmark harness: owns settings and runs registered functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run `f` as a benchmark named `id` and print its per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the batch until one sample takes long enough to
        // time reliably.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= SAMPLE_TARGET || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (SAMPLE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1) + 1) as u64
            };
            b.iters = (b.iters.saturating_mul(grow.clamp(2, 16))).min(1 << 30);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<40} {:>12}/iter  (min {}, mean {}; {} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
            self.sample_size,
            b.iters,
        );
        self
    }

    /// Criterion prints a summary on drop; this harness already printed
    /// per-benchmark lines, so this is a no-op hook for API parity.
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the harness-chosen batch of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $cfg:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("shim/self_test_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            });
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = tiny_bench
    }

    criterion_group!(benches_simple, tiny_bench);

    #[test]
    fn groups_run_to_completion() {
        benches();
        benches_simple();
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 us");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3_e9), "3.000 s");
    }
}
