//! Offline stand-in for the `rand` crate (v0.8 API subset).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the trait surface it uses: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen` /
//! `gen_range` / `gen_bool`. Generators themselves live in `simkit`
//! (xoshiro256**), which implements [`RngCore`]; distribution sampling here
//! uses the same Lemire multiply-shift reduction the workspace RNG uses,
//! so draws are deterministic and platform-stable.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations. The workspace's generators are
/// infallible; this exists so `try_fill_bytes` has the crate's signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random bytes, fallibly.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, splitmix-spread over the seed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let v = (z ^ (z >> 31)).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) double.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over a sub-range (`rng.gen_range(..)`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draw uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                // Lemire multiply-shift; bias is negligible for simulation.
                lo + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as i64).wrapping_add(off as i64)) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                ((lo as i64).wrapping_add(off as i64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (unit as $t) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_below(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value over the type's full domain ([0, 1) for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — only for exercising the trait surface in these tests.
    struct TestRng(u64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = TestRng(42);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..3);
            assert!(w < 3);
            let x: u64 = r.gen_range(5..=5);
            assert_eq!(x, 5);
            let f: f64 = r.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut r = TestRng(7);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = TestRng(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Seeded([u8; 8]);
        impl SeedableRng for Seeded {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                Seeded(seed)
            }
        }
        assert_eq!(Seeded::seed_from_u64(1).0, Seeded::seed_from_u64(1).0);
        assert_ne!(Seeded::seed_from_u64(1).0, Seeded::seed_from_u64(2).0);
    }
}
