//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the *exact API subset it uses* as a local crate with
//! the same name. Semantics match `bytes::Bytes` where the surfaces
//! overlap: an immutable, cheaply cloneable byte buffer backed by a shared
//! allocation (`Arc<[u8]>`), ordered and hashed like `[u8]` so it can key
//! ordered maps via `Borrow<[u8]>`.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. `Clone` is O(1) — the
/// allocation is shared, never copied.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// A buffer over static data (copied once into the shared allocation;
    /// the real crate borrows, which only changes constant factors here).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

// Hash must agree with `Borrow<[u8]>`: hash exactly like the slice.
impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()));
    }

    #[test]
    fn btreemap_lookup_by_slice() {
        let mut m: BTreeMap<Bytes, u32> = BTreeMap::new();
        m.insert(Bytes::from(vec![b'k', b'1']), 7);
        assert_eq!(m.get(&b"k1"[..]), Some(&7));
        assert_eq!(m.get(&b"k2"[..]), None);
    }

    #[test]
    fn ordering_matches_slices() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
        assert_eq!(a, Bytes::copy_from_slice(b"abc"));
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'a', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
