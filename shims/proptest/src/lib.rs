//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the strategy/macro subset its property tests use:
//! range, `any`, tuple, `prop::bool::ANY`, `prop::collection::{vec,
//! btree_set}` strategies, the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros, and `ProptestConfig::with_cases`.
//!
//! Deliberate simplifications vs the real crate:
//!
//! * **No shrinking.** A failing case panics with the drawn inputs via the
//!   assert message; it is not minimized.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test name, so CI failures reproduce locally without a persistence
//!   file. The default case count is 64 (the workspace's common setting)
//!   rather than 256, bounding suite wall time.

#![warn(missing_docs)]

use std::ops::Range;

use rand::{Rng, RngCore};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Test-runner internals used by the `proptest!` macro expansion.
pub mod test_runner {
    use rand::{Error, RngCore};

    /// Deterministic xoshiro256** generator driving value creation.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from a test's name so each property gets
        /// a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then splitmix64 to fill the state.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut s = [0u64; 4];
            for w in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            Self { s }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

use test_runner::TestRng;

/// A recipe for producing random values of `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a strategy by passing drawn values through `map`
    /// (proptest's `prop_map`; no shrinking here, as with the rest of the
    /// shim).
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.new_value(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types drawable over their whole domain via [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value spanning the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy producing either boolean with equal probability.
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            bool::arbitrary(rng)
        }
    }

    /// Any boolean.
    pub const ANY: BoolAny = BoolAny;
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of roughly `size` distinct elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            // Retry duplicates, bounded so tiny domains can't spin forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything the workspace's property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random draws of its inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one fn per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($arg:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_bounded(a in 3u64..9, b in 0usize..4, f in 1.0f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_vecs_and_sets(
            mut xs in prop::collection::vec((0u64..10, prop::collection::vec(any::<u8>(), 0..4)), 1..20),
            set in prop::collection::btree_set(0u64..1_000, 2..8),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            xs.push((0, vec![]));
            for (k, v) in &xs {
                prop_assert!(*k < 10);
                prop_assert!(v.len() < 4);
            }
            prop_assert!(set.len() >= 2 && set.len() < 8);
            prop_assume!(flag);
            prop_assert!(flag);
        }
    }

    #[test]
    fn named_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let mut c = crate::test_runner::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
