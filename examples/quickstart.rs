//! Quickstart: stand up both simulated stores, write and read a record
//! through the full replicated path, and run a small benchmark.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use cloudserve::bench_core::driver::{self, DriverConfig};
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::bench_core::{DriverEvent, SimStore};
use cloudserve::cstore::Consistency;
use cloudserve::simkit::Sim;
use cloudserve::storage::{OpResult, StoreOp};
use cloudserve::ycsb::{encode_key, WorkloadSpec};

/// Drive one operation through a store and return its result with the
/// virtual time it took.
fn one_op<S: SimStore>(store: &mut S, op: StoreOp) -> (OpResult, u64) {
    let mut sim: Sim<DriverEvent<S::Event>> = Sim::new(7);
    store.submit(&mut sim, 1, op);
    let started = sim.now();
    while let Some(ev) = sim.next() {
        if let DriverEvent::Store(ev) = ev {
            store.handle(&mut sim, ev);
        }
        if let Some(c) = store.drain_completions().pop() {
            return (c.result, sim.now() - started);
        }
    }
    unreachable!("operation never completed");
}

fn main() {
    let scale = Scale::tiny();

    // --- Cassandra analog: quorum write, quorum read. ---
    let mut cassandra = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
    let key = encode_key(42);
    let (w, wt) = one_op(
        &mut cassandra,
        StoreOp::Insert {
            key: key.clone(),
            value: Bytes::from_static(b"hello, ring"),
        },
    );
    println!("cstore quorum write: {w:?} in {wt}us (virtual)");
    let (r, rt) = one_op(&mut cassandra, StoreOp::Read { key: key.clone() });
    println!("cstore quorum read:  {r:?} in {rt}us (virtual)");

    // --- HBase analog: strongly consistent, no consistency knob. ---
    let mut hbase = build_hstore(&scale, 3);
    let (w, wt) = one_op(
        &mut hbase,
        StoreOp::Insert {
            key: key.clone(),
            value: Bytes::from_static(b"hello, region"),
        },
    );
    println!("hstore write (WAL pipeline): {w:?} in {wt}us (virtual)");
    let (r, rt) = one_op(&mut hbase, StoreOp::Read { key });
    println!("hstore read (local, strong): {r:?} in {rt}us (virtual)");

    // --- A small YCSB run against each. ---
    for rf in [1u32, 3] {
        let mut store = build_cstore(&scale, rf, Consistency::One, Consistency::One);
        driver::load(&mut store, scale.records, scale.value_len, 1);
        let cfg = DriverConfig {
            threads: 8,
            warmup_ops: 200,
            measure_ops: 2_000,
            value_len: scale.value_len,
            ..DriverConfig::new(WorkloadSpec::read_mostly(), scale.records)
        };
        let out = driver::run(&mut store, &cfg);
        println!(
            "cstore rf={rf} read-mostly: {:.0} ops/s, mean {:.0}us, p99 {}us, stale {:.3}%",
            out.throughput,
            out.mean_latency_us,
            out.metrics.overall().p99(),
            out.stale_fraction * 100.0
        );
    }
}
