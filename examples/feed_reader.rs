//! The paper's "feeds reading" scenario (*read latest*, read/insert 80/20,
//! latest distribution): compare the two architectures and show how the
//! replication factor affects each.
//!
//! ```sh
//! cargo run --release --example feed_reader
//! ```

use cloudserve::bench_core::driver::{self, DriverConfig};
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::bench_core::SimStore;
use cloudserve::cstore::Consistency;
use cloudserve::faults::FaultTarget;
use cloudserve::ycsb::WorkloadSpec;

fn run_one<S: SimStore + FaultTarget<Event = <S as SimStore>::Event>>(
    store: &mut S,
    scale: &Scale,
) -> (f64, f64) {
    driver::load(store, scale.records, scale.value_len, 23);
    let cfg = DriverConfig {
        threads: 16,
        warmup_ops: 500,
        measure_ops: 5_000,
        value_len: scale.value_len,
        ..DriverConfig::new(WorkloadSpec::read_latest(), scale.records)
    };
    let out = driver::run(store, &cfg);
    (out.throughput, out.mean_latency_us)
}

fn main() {
    let scale = Scale::tiny();
    println!("feeds reading (read latest 80/20, latest distribution)\n");
    println!(
        "{:<28} {:>4} {:>10} {:>12}",
        "store", "rf", "ops/s", "mean latency"
    );
    for rf in [1u32, 3, 6] {
        let mut h = build_hstore(&scale, rf);
        let (tput, mean) = run_one(&mut h, &scale);
        println!(
            "{:<28} {:>4} {:>10.0} {:>10.0}us",
            "hstore (HBase analog)", rf, tput, mean
        );
    }
    for rf in [1u32, 3, 6] {
        let mut c = build_cstore(&scale, rf, Consistency::One, Consistency::One);
        let (tput, mean) = run_one(&mut c, &scale);
        println!(
            "{:<28} {:>4} {:>10.0} {:>10.0}us",
            "cstore (Cassandra analog)", rf, tput, mean
        );
    }
    println!(
        "\nThe HBase analog's numbers barely move with RF (reads are local to\n\
         the region's primary; WAL replication acknowledges in memory). The\n\
         Cassandra analog pays for extra replicas through read repair traffic\n\
         and larger per-node datasets — the paper's central observation."
    );
}
