//! SLA-based capacity certification — the paper's §6 future work in action:
//! "At least p percentage of requests get response within l latency."
//! Finds, by bisection over throttled runs, the highest throughput each
//! store sustains while meeting a p95 latency agreement, keeping "user
//! experiences at the same level to compare throughputs of different
//! systems".
//!
//! ```sh
//! cargo run --release --example sla_certify
//! ```

use cloudserve::bench_core::driver;
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::bench_core::sla::{capacity_table, find_sla_capacity, Sla, SlaSearchConfig};
use cloudserve::cstore::Consistency;
use cloudserve::ycsb::WorkloadSpec;

fn main() {
    let scale = Scale::tiny();
    let sla = Sla {
        percentile: 0.95,
        latency_us: 5_000,
        error_budget: 0.0,
    };
    let search = |scale: Scale| SlaSearchConfig {
        threads: 16,
        floor: 200.0,
        ceiling: 50_000.0,
        iterations: 7,
        measure_ops: 4_000,
        warmup_ops: 400,
        ..SlaSearchConfig::new(scale, WorkloadSpec::read_mostly(), sla)
    };

    let mut h = build_hstore(&scale, 3);
    driver::load(&mut h, scale.records, scale.value_len, 77);
    let h_cap = find_sla_capacity(&h, &search(scale));

    let mut c1 = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut c1, scale.records, scale.value_len, 77);
    let c1_cap = find_sla_capacity(&c1, &search(scale));

    let mut cq = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
    driver::load(&mut cq, scale.records, scale.value_len, 77);
    let cq_cap = find_sla_capacity(&cq, &search(scale));

    let table = capacity_table(
        "SLA-certified capacity (read mostly, RF=3)",
        &[
            ("hstore (strong)", &h_cap),
            ("cstore @ ONE", &c1_cap),
            ("cstore @ QUORUM", &cq_cap),
        ],
    );
    println!("{}", table.render());
    println!("probes (cstore @ QUORUM):");
    for (target, q, met) in &cq_cap.probes {
        println!(
            "  target {:>8.0} ops/s -> p95 {:>6}us  {}",
            target,
            q,
            if *met { "meets SLA" } else { "violates" }
        );
    }
}
