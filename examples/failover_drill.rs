//! Availability drill (the Pokluda et al. related-work scenario): kill a
//! node under load in both stores, watch what clients experience, recover,
//! and verify the repair machinery (hinted handoff / region failover)
//! brought everything back.
//!
//! ```sh
//! cargo run --release --example failover_drill
//! ```

use cloudserve::bench_core::driver::{self, DriverConfig};
use cloudserve::bench_core::setup::{build_cstore, build_hstore, Scale};
use cloudserve::bench_core::DriverEvent;
use cloudserve::cstore::Consistency;
use cloudserve::simkit::{NodeId, Sim};
use cloudserve::ycsb::WorkloadSpec;

fn cfg(scale: &Scale) -> DriverConfig {
    DriverConfig {
        threads: 16,
        warmup_ops: 300,
        measure_ops: 3_000,
        value_len: scale.value_len,
        ..DriverConfig::new(WorkloadSpec::read_mostly(), scale.records)
    }
}

fn main() {
    let scale = Scale::tiny();

    println!("=== cstore (Cassandra analog), RF=3, CL=ONE ===");
    let mut c = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut c, scale.records, scale.value_len, 31);
    let healthy = driver::run(&mut c, &cfg(&scale));
    println!(
        "healthy:   {:>8.0} ops/s, {:>3} errors",
        healthy.throughput, healthy.errors
    );
    c.fail_node(NodeId(0));
    let degraded = driver::run(&mut c, &cfg(&scale));
    println!(
        "node down: {:>8.0} ops/s, {:>3} errors (CL=ONE rides through; hints queue: {})",
        degraded.throughput,
        degraded.errors,
        c.metrics().hints_stored
    );
    // Recover and replay hints.
    let mut sim: Sim<DriverEvent<cloudserve::cstore::Event>> = Sim::new(31);
    c.recover_node(&mut sim, NodeId(0));
    while let Some(ev) = sim.next() {
        if let DriverEvent::Store(ev) = ev {
            cloudserve::cstore::Cluster::handle(&mut c, &mut sim, ev);
        }
    }
    let recovered = driver::run(&mut c, &cfg(&scale));
    println!(
        "recovered: {:>8.0} ops/s, {:>3} errors (hints replayed: {})",
        recovered.throughput,
        recovered.errors,
        c.metrics().hints_replayed
    );

    println!("\n=== hstore (HBase analog), RF=3 ===");
    let mut h = build_hstore(&scale, 3);
    driver::load(&mut h, scale.records, scale.value_len, 31);
    let healthy = driver::run(&mut h, &cfg(&scale));
    println!(
        "healthy:        {:>8.0} ops/s, {:>3} errors",
        healthy.throughput, healthy.errors
    );
    h.fail_server(NodeId(0));
    let failed_over = driver::run(&mut h, &cfg(&scale));
    println!(
        "after failover: {:>8.0} ops/s, {:>3} errors ({} regions moved; remote reads until compaction re-localizes)",
        failed_over.throughput,
        failed_over.errors,
        h.metrics().regions_moved
    );
    h.recover_server(NodeId(0));
    let recovered = driver::run(&mut h, &cfg(&scale));
    println!(
        "server back:    {:>8.0} ops/s, {:>3} errors",
        recovered.throughput, recovered.errors
    );
    println!(
        "\nBoth systems stay available through a single node failure at RF=3 —\n\
         Cassandra by quorum-less acks plus hinted handoff, HBase by moving\n\
         regions onto survivors (briefly paying remote-read penalties)."
    );
}
