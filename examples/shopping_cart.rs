//! The paper's "online shopping cart" scenario (*read & update*, 50/50,
//! zipfian): how does the consistency level change what the user
//! experiences — latency, throughput, and whether a just-updated cart can
//! read back stale?
//!
//! ```sh
//! cargo run --release --example shopping_cart
//! ```

use cloudserve::bench_core::driver::{self, DriverConfig};
use cloudserve::bench_core::setup::{build_cstore, Scale};
use cloudserve::cstore::Consistency;
use cloudserve::ycsb::WorkloadSpec;

fn main() {
    let scale = Scale::tiny();
    println!("online shopping cart (read & update 50/50, zipfian), RF=3\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "consistency", "ops/s", "mean", "p99", "stale%"
    );
    for (name, read, write) in [
        ("ONE/ONE", Consistency::One, Consistency::One),
        ("QUORUM/QUORUM", Consistency::Quorum, Consistency::Quorum),
        ("ONE read/ALL write", Consistency::One, Consistency::All),
    ] {
        let mut store = build_cstore(&scale, 3, read, write);
        driver::load(&mut store, scale.records, scale.value_len, 11);
        let cfg = DriverConfig {
            threads: 16,
            warmup_ops: 500,
            measure_ops: 5_000,
            value_len: scale.value_len,
            ..DriverConfig::new(WorkloadSpec::read_update(), scale.records)
        };
        let out = driver::run(&mut store, &cfg);
        println!(
            "{:<22} {:>10.0} {:>8}us {:>8}us {:>9.3}%",
            name,
            out.throughput,
            out.mean_latency_us as u64,
            out.metrics.overall().p99(),
            out.stale_fraction * 100.0
        );
    }
    println!(
        "\nW + R > N (QUORUM/QUORUM, ALL-write/ONE-read) never reads back a\n\
         stale cart; ONE/ONE trades that guarantee for the lowest latency —\n\
         the PACELC tradeoff the paper benchmarks."
    );
}
