//! Workload specifications: operation mixes, request distributions, and the
//! concrete workloads the paper benchmarks.
//!
//! Table 1 of the paper defines five stress workloads; the micro benchmark
//! runs rounds of a single atomic operation each. The YCSB core workloads
//! A–F are included as well (the paper's five are adaptations of them).

use rand::Rng;

use crate::generator::{RequestDistribution, Zipfian};
use storage::OpKind;

/// Which request distribution a workload uses (resolved into a
/// [`RequestDistribution`] once the record count is known).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionKind {
    /// Uniform over all records.
    Uniform,
    /// Zipfian with popularity scattered over the key space.
    Zipfian,
    /// Skewed toward the newest records.
    Latest,
    /// Hotspot: 80% of ops on 20% of records.
    Hotspot,
}

/// An operation mix: fractions must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of point reads.
    pub read: f64,
    /// Fraction of updates.
    pub update: f64,
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of scans.
    pub scan: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
}

impl OpMix {
    /// Validate the mix sums to 1 (±1e-9).
    pub fn is_valid(&self) -> bool {
        let sum = self.read + self.update + self.insert + self.scan + self.rmw;
        (sum - 1.0).abs() < 1e-9
            && [self.read, self.update, self.insert, self.scan, self.rmw]
                .iter()
                .all(|&f| (0.0..=1.0).contains(&f))
    }

    /// Draw an operation kind.
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> OpKind {
        let mut u: f64 = rng.gen();
        for (frac, kind) in [
            (self.read, OpKind::Read),
            (self.update, OpKind::Update),
            (self.insert, OpKind::Insert),
            (self.scan, OpKind::Scan),
            (self.rmw, OpKind::ReadModifyWrite),
        ] {
            if u < frac {
                return kind;
            }
            u -= frac;
        }
        OpKind::Read
    }

    /// Fraction of operations that write (updates + inserts + the write half
    /// of each RMW).
    pub fn write_fraction(&self) -> f64 {
        self.update + self.insert + self.rmw
    }
}

/// A complete workload description.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Short name used in reports (e.g. `"read latest"`).
    pub name: String,
    /// The paper's "typical usage" column, for Table 1 rendering.
    pub typical_usage: String,
    /// Operation mix.
    pub mix: OpMix,
    /// Request distribution over record ids.
    pub distribution: DistributionKind,
    /// Maximum scan length (rows); actual lengths are uniform in `1..=max`.
    pub max_scan_len: usize,
}

impl WorkloadSpec {
    fn new(
        name: &str,
        usage: &str,
        mix: OpMix,
        distribution: DistributionKind,
        max_scan_len: usize,
    ) -> Self {
        debug_assert!(mix.is_valid(), "op mix for {name} does not sum to 1");
        Self {
            name: name.to_owned(),
            typical_usage: usage.to_owned(),
            mix,
            distribution,
            max_scan_len,
        }
    }

    /// Resolve the request distribution for a given record count.
    pub fn request_distribution(&self, records: u64) -> RequestDistribution {
        match self.distribution {
            DistributionKind::Uniform => RequestDistribution::Uniform { items: records },
            DistributionKind::Zipfian => {
                RequestDistribution::ScrambledZipfian(Zipfian::new(records))
            }
            DistributionKind::Latest => RequestDistribution::Latest(Zipfian::new(records)),
            DistributionKind::Hotspot => RequestDistribution::Hotspot {
                items: records,
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
        }
    }

    /// Draw a scan length.
    pub fn scan_len<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.gen_range(1..=self.max_scan_len.max(1))
    }

    // ----- the paper's Table 1 -----

    /// *Read mostly* — online tagging; read/update 95/5, zipfian.
    pub fn read_mostly() -> Self {
        Self::new(
            "read mostly",
            "Online tagging",
            OpMix {
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            DistributionKind::Zipfian,
            100,
        )
    }

    /// *Read latest* — feeds reading; read/insert 80/20, latest.
    pub fn read_latest() -> Self {
        Self::new(
            "read latest",
            "Feeds reading",
            OpMix {
                read: 0.80,
                update: 0.0,
                insert: 0.20,
                scan: 0.0,
                rmw: 0.0,
            },
            DistributionKind::Latest,
            100,
        )
    }

    /// *Read & update* — online shopping cart; read/update 50/50, zipfian.
    pub fn read_update() -> Self {
        Self::new(
            "read & update",
            "Online shopping cart",
            OpMix {
                read: 0.50,
                update: 0.50,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            DistributionKind::Zipfian,
            100,
        )
    }

    /// *Read-modify-write* — user profile; read/RMW 50/50, zipfian.
    pub fn read_modify_write() -> Self {
        Self::new(
            "read-modify-write",
            "User profile",
            OpMix {
                read: 0.50,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.50,
            },
            DistributionKind::Zipfian,
            100,
        )
    }

    /// *Scan short ranges* — topic retrieving; scan/insert 95/5, zipfian.
    pub fn scan_short_ranges() -> Self {
        Self::new(
            "scan short ranges",
            "Topic retrieving",
            OpMix {
                read: 0.0,
                update: 0.0,
                insert: 0.05,
                scan: 0.95,
                rmw: 0.0,
            },
            DistributionKind::Zipfian,
            100,
        )
    }

    /// The five Table 1 stress workloads, in the paper's order.
    pub fn paper_stress_workloads() -> Vec<Self> {
        vec![
            Self::read_latest(),
            Self::scan_short_ranges(),
            Self::read_mostly(),
            Self::read_modify_write(),
            Self::read_update(),
        ]
    }

    // ----- YCSB core workloads, for completeness -----

    /// YCSB A: update heavy, 50/50 read/update, zipfian.
    pub fn ycsb_a() -> Self {
        let mut w = Self::read_update();
        w.name = "ycsb-a".into();
        w.typical_usage = "Session store".into();
        w
    }

    /// YCSB B: read mostly, 95/5 read/update, zipfian.
    pub fn ycsb_b() -> Self {
        let mut w = Self::read_mostly();
        w.name = "ycsb-b".into();
        w.typical_usage = "Photo tagging".into();
        w
    }

    /// YCSB C: read only, zipfian.
    pub fn ycsb_c() -> Self {
        Self::new(
            "ycsb-c",
            "User profile cache",
            OpMix {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            DistributionKind::Zipfian,
            100,
        )
    }

    /// YCSB D: read latest, 95/5 read/insert.
    pub fn ycsb_d() -> Self {
        Self::new(
            "ycsb-d",
            "User status updates",
            OpMix {
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                scan: 0.0,
                rmw: 0.0,
            },
            DistributionKind::Latest,
            100,
        )
    }

    /// YCSB E: short ranges, 95/5 scan/insert.
    pub fn ycsb_e() -> Self {
        let mut w = Self::scan_short_ranges();
        w.name = "ycsb-e".into();
        w.typical_usage = "Threaded conversations".into();
        w
    }

    /// YCSB F: read-modify-write, 50/50 read/RMW.
    pub fn ycsb_f() -> Self {
        let mut w = Self::read_modify_write();
        w.name = "ycsb-f".into();
        w.typical_usage = "User database".into();
        w
    }

    /// A single-operation micro workload (the Fig. 1 rounds).
    pub fn micro(kind: OpKind) -> Self {
        let mix = match kind {
            OpKind::Read => OpMix {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            OpKind::Update => OpMix {
                read: 0.0,
                update: 1.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            OpKind::Insert => OpMix {
                read: 0.0,
                update: 0.0,
                insert: 1.0,
                scan: 0.0,
                rmw: 0.0,
            },
            OpKind::Scan => OpMix {
                read: 0.0,
                update: 0.0,
                insert: 0.0,
                scan: 1.0,
                rmw: 0.0,
            },
            other => panic!("no micro workload for {other}"),
        };
        Self::new(
            &format!("micro-{}", kind.label().to_lowercase()),
            "Micro benchmark",
            mix,
            DistributionKind::Uniform,
            50,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimRng;

    #[test]
    fn paper_mixes_are_valid_and_match_table1() {
        let ws = WorkloadSpec::paper_stress_workloads();
        assert_eq!(ws.len(), 5);
        for w in &ws {
            assert!(w.mix.is_valid(), "{} mix invalid", w.name);
        }
        let rm = WorkloadSpec::read_mostly();
        assert!((rm.mix.read - 0.95).abs() < 1e-12);
        assert!((rm.mix.update - 0.05).abs() < 1e-12);
        assert_eq!(rm.distribution, DistributionKind::Zipfian);

        let rl = WorkloadSpec::read_latest();
        assert!((rl.mix.insert - 0.20).abs() < 1e-12);
        assert_eq!(rl.distribution, DistributionKind::Latest);

        let sc = WorkloadSpec::scan_short_ranges();
        assert!((sc.mix.scan - 0.95).abs() < 1e-12);
    }

    #[test]
    fn choose_matches_mix_fractions() {
        let mix = WorkloadSpec::read_mostly().mix;
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let reads = (0..n)
            .filter(|_| mix.choose(&mut rng) == OpKind::Read)
            .count();
        let share = reads as f64 / n as f64;
        assert!((share - 0.95).abs() < 0.01, "read share {share}");
    }

    #[test]
    fn rmw_kind_is_chosen() {
        let mix = WorkloadSpec::read_modify_write().mix;
        let mut rng = SimRng::new(6);
        let n = 10_000;
        let rmws = (0..n)
            .filter(|_| mix.choose(&mut rng) == OpKind::ReadModifyWrite)
            .count();
        assert!((rmws as f64 / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn write_fraction_ranks_workloads_like_the_paper() {
        // Paper: "the bigger write proportion, the more obvious performance
        // difference". read&update (50%) > read latest (20%) > read mostly (5%).
        let ru = WorkloadSpec::read_update().mix.write_fraction();
        let rl = WorkloadSpec::read_latest().mix.write_fraction();
        let rm = WorkloadSpec::read_mostly().mix.write_fraction();
        assert!(ru > rl && rl > rm);
    }

    #[test]
    fn micro_workloads_are_pure() {
        let mut rng = SimRng::new(1);
        for kind in [OpKind::Read, OpKind::Update, OpKind::Insert, OpKind::Scan] {
            let w = WorkloadSpec::micro(kind);
            assert!(w.mix.is_valid());
            for _ in 0..100 {
                assert_eq!(w.mix.choose(&mut rng), kind);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no micro workload")]
    fn micro_rejects_rmw() {
        let _ = WorkloadSpec::micro(OpKind::ReadModifyWrite);
    }

    #[test]
    fn scan_len_in_bounds() {
        let w = WorkloadSpec::scan_short_ranges();
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let len = w.scan_len(&mut rng);
            assert!((1..=100).contains(&len));
        }
    }

    #[test]
    fn distribution_resolution() {
        let w = WorkloadSpec::read_latest();
        let d = w.request_distribution(500);
        assert_eq!(d.items(), 500);
        matches!(d, RequestDistribution::Latest(_));
        let w = WorkloadSpec::read_mostly();
        matches!(
            w.request_distribution(500),
            RequestDistribution::ScrambledZipfian(_)
        );
    }

    #[test]
    fn ycsb_core_workloads_are_valid() {
        for w in [
            WorkloadSpec::ycsb_a(),
            WorkloadSpec::ycsb_b(),
            WorkloadSpec::ycsb_c(),
            WorkloadSpec::ycsb_d(),
            WorkloadSpec::ycsb_e(),
            WorkloadSpec::ycsb_f(),
        ] {
            assert!(w.mix.is_valid(), "{} invalid", w.name);
        }
    }
}
