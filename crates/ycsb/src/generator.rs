//! Request-key distributions, mirroring YCSB's generator package.
//!
//! Every generator draws an item index in `[0, items)`. The zipfian
//! implementation follows Gray et al., *"Quickly generating billion-record
//! synthetic databases"* (the algorithm YCSB uses), with `theta = 0.99` and
//! incremental zeta extension so the item count can grow during a run.

use rand::Rng;

/// YCSB's zipfian skew constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// A zipfian generator over `items` elements: item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    zeta2: f64,
    eta: f64,
}

impl Zipfian {
    /// Create a generator over `items` elements with the YCSB constant.
    pub fn new(items: u64) -> Self {
        Self::with_theta(items, ZIPFIAN_CONSTANT)
    }

    /// Create with an explicit skew `theta` in (0, 1).
    pub fn with_theta(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = Self::zeta_range(0, items, theta, 0.0);
        let zeta2 = Self::zeta_range(0, 2.min(items), theta, 0.0);
        let mut z = Self {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            zeta2,
            eta: 0.0,
        };
        z.recompute_eta();
        z
    }

    fn zeta_range(from: u64, to: u64, theta: f64, base: f64) -> f64 {
        let mut sum = base;
        for i in from..to {
            sum += 1.0 / ((i + 1) as f64).powf(theta);
        }
        sum
    }

    fn recompute_eta(&mut self) {
        let n = self.items as f64;
        self.eta = (1.0 - (2.0 / n).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zetan);
    }

    /// Current item count.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Grow the item count (zeta is extended incrementally, O(delta)).
    pub fn set_items(&mut self, items: u64) {
        if items <= self.items {
            return;
        }
        self.zetan = Self::zeta_range(self.items, items, self.theta, self.zetan);
        if self.items < 2 && items >= 2 {
            // zeta(2) was truncated while only one item existed.
            self.zeta2 = Self::zeta_range(0, 2, self.theta, 0.0);
        }
        self.items = items;
        self.recompute_eta();
    }

    /// Draw an item index in `[0, items)`.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.items >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.items - 1)
    }
}

#[inline]
fn fnv_hash(v: u64) -> u64 {
    // FNV-1a over the 8 little-endian bytes, YCSB's scrambling hash.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The request distributions available to workloads.
#[derive(Debug, Clone)]
pub enum RequestDistribution {
    /// Uniform over all items.
    Uniform {
        /// Item count.
        items: u64,
    },
    /// Zipfian where low indices are popular.
    Zipfian(Zipfian),
    /// Zipfian popularity scattered over the key space (YCSB's default for
    /// workloads A/B/C/E/F: the popular items are spread out).
    ScrambledZipfian(Zipfian),
    /// Skewed toward the most recently inserted items (YCSB workload D and
    /// the paper's *read latest*).
    Latest(Zipfian),
    /// A hot set of `hot_fraction` of the items receives
    /// `hot_op_fraction` of the requests.
    Hotspot {
        /// Item count.
        items: u64,
        /// Fraction of items that are hot.
        hot_fraction: f64,
        /// Fraction of operations that target the hot set.
        hot_op_fraction: f64,
    },
    /// Exponentially distributed popularity.
    Exponential {
        /// Item count.
        items: u64,
        /// Rate parameter; larger = more skew toward low indices.
        gamma: f64,
    },
}

impl RequestDistribution {
    /// Draw an item index in `[0, items)`.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            Self::Uniform { items } => rng.gen_range(0..*items),
            Self::Zipfian(z) => z.next(rng),
            Self::ScrambledZipfian(z) => fnv_hash(z.next(rng)) % z.items(),
            Self::Latest(z) => {
                let n = z.items();
                n - 1 - z.next(rng)
            }
            Self::Hotspot {
                items,
                hot_fraction,
                hot_op_fraction,
            } => {
                let hot_items = ((*items as f64) * hot_fraction).ceil().max(1.0) as u64;
                if rng.gen::<f64>() < *hot_op_fraction {
                    rng.gen_range(0..hot_items.min(*items))
                } else if hot_items >= *items {
                    rng.gen_range(0..*items)
                } else {
                    rng.gen_range(hot_items..*items)
                }
            }
            Self::Exponential { items, gamma } => {
                let u: f64 = rng.gen();
                let v = (-u.ln() / gamma) as u64;
                v.min(items - 1)
            }
        }
    }

    /// Current item count.
    pub fn items(&self) -> u64 {
        match self {
            Self::Uniform { items }
            | Self::Hotspot { items, .. }
            | Self::Exponential { items, .. } => *items,
            Self::Zipfian(z) | Self::ScrambledZipfian(z) | Self::Latest(z) => z.items(),
        }
    }

    /// Grow the item count (inserts during a run).
    pub fn set_items(&mut self, n: u64) {
        match self {
            Self::Uniform { items }
            | Self::Hotspot { items, .. }
            | Self::Exponential { items, .. } => *items = (*items).max(n),
            Self::Zipfian(z) | Self::ScrambledZipfian(z) | Self::Latest(z) => z.set_items(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimRng;

    fn draws(dist: &RequestDistribution, n: usize) -> Vec<u64> {
        let mut rng = SimRng::new(42);
        (0..n).map(|_| dist.next(&mut rng)).collect()
    }

    #[test]
    fn all_distributions_respect_bounds() {
        let n = 1000;
        for dist in [
            RequestDistribution::Uniform { items: n },
            RequestDistribution::Zipfian(Zipfian::new(n)),
            RequestDistribution::ScrambledZipfian(Zipfian::new(n)),
            RequestDistribution::Latest(Zipfian::new(n)),
            RequestDistribution::Hotspot {
                items: n,
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            RequestDistribution::Exponential {
                items: n,
                gamma: 0.01,
            },
        ] {
            for v in draws(&dist, 20_000) {
                assert!(v < n, "{dist:?} produced out-of-range {v}");
            }
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_zero() {
        let dist = RequestDistribution::Zipfian(Zipfian::new(10_000));
        let values = draws(&dist, 100_000);
        let zero = values.iter().filter(|&&v| v == 0).count() as f64 / 100_000.0;
        // Item 0 should take several percent of draws under theta=0.99.
        assert!(zero > 0.03, "item-0 share too small: {zero}");
        let top10 = values.iter().filter(|&&v| v < 10).count() as f64 / 100_000.0;
        assert!(top10 > 0.2, "top-10 share too small: {top10}");
    }

    #[test]
    fn uniform_is_flat() {
        let dist = RequestDistribution::Uniform { items: 10 };
        let values = draws(&dist, 100_000);
        for bucket in 0..10u64 {
            let share = values.iter().filter(|&&v| v == bucket).count() as f64 / 100_000.0;
            assert!((share - 0.1).abs() < 0.01, "bucket {bucket} share {share}");
        }
    }

    #[test]
    fn latest_favors_newest_items() {
        let dist = RequestDistribution::Latest(Zipfian::new(1000));
        let values = draws(&dist, 50_000);
        let newest = values.iter().filter(|&&v| v >= 990).count() as f64 / 50_000.0;
        assert!(newest > 0.3, "newest-10 share too small: {newest}");
    }

    #[test]
    fn scrambled_zipfian_spreads_popularity() {
        let dist = RequestDistribution::ScrambledZipfian(Zipfian::new(1000));
        let values = draws(&dist, 50_000);
        // Still skewed (some item is hot)...
        let mut counts = vec![0u32; 1000];
        for v in &values {
            counts[*v as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64 / 50_000.0;
        assert!(max > 0.02, "no hot item after scrambling: {max}");
        // ...but the hottest item is no longer item 0 specifically (with
        // overwhelming probability under this seed).
        let hottest = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap()
            .0;
        assert_ne!(hottest, 0);
    }

    #[test]
    fn hotspot_honors_op_fraction() {
        let dist = RequestDistribution::Hotspot {
            items: 1000,
            hot_fraction: 0.1,
            hot_op_fraction: 0.9,
        };
        let values = draws(&dist, 50_000);
        let hot = values.iter().filter(|&&v| v < 100).count() as f64 / 50_000.0;
        assert!((hot - 0.9).abs() < 0.02, "hot share {hot}");
    }

    #[test]
    fn growing_items_extends_range() {
        let mut dist = RequestDistribution::Latest(Zipfian::new(100));
        dist.set_items(200);
        assert_eq!(dist.items(), 200);
        let mut rng = SimRng::new(1);
        let saw_new = (0..10_000).any(|_| dist.next(&mut rng) >= 100);
        assert!(saw_new, "latest never reached the newly inserted items");
    }

    #[test]
    fn incremental_zeta_matches_fresh_computation() {
        let mut grown = Zipfian::new(100);
        grown.set_items(1000);
        let fresh = Zipfian::new(1000);
        assert!((grown.zetan - fresh.zetan).abs() < 1e-9);
        assert!((grown.eta - fresh.eta).abs() < 1e-9);
    }

    #[test]
    fn shrinking_items_is_a_no_op() {
        let mut z = Zipfian::new(100);
        let zetan = z.zetan;
        z.set_items(50);
        assert_eq!(z.items(), 100);
        assert_eq!(z.zetan, zetan);
    }

    #[test]
    fn single_item_distribution_works() {
        let dist = RequestDistribution::Zipfian(Zipfian::new(1));
        assert!(draws(&dist, 100).iter().all(|&v| v == 0));
    }

    #[test]
    fn exponential_is_skewed() {
        let dist = RequestDistribution::Exponential {
            items: 1000,
            gamma: 0.05,
        };
        let values = draws(&dist, 50_000);
        let low = values.iter().filter(|&&v| v < 50).count() as f64 / 50_000.0;
        assert!(low > 0.8, "exponential low share {low}");
    }
}
