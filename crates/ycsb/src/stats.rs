//! Latency histograms and run metrics.
//!
//! The histogram is HDR-style: exact below 128 µs, then log-bucketed with 64
//! sub-buckets per octave (≤ ~1.6% relative error), constant memory, O(1)
//! record. Quantiles and means are computed from bucket midpoints.

use std::collections::BTreeMap;

use storage::OpKind;

const LINEAR_LIMIT: u64 = 128;
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;
/// Linear buckets + 64 sub-buckets for each octave from 2^7 up to 2^63.
const BUCKETS: usize = (LINEAR_LIMIT + (64 - 7) * SUB_BUCKETS) as usize;

/// A log-bucketed latency histogram over `u64` microsecond values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= 7
        let sub = (v >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
        (LINEAR_LIMIT + (msb as u64 - 7) * SUB_BUCKETS + sub) as usize
    }
}

#[inline]
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_LIMIT {
        idx
    } else {
        let rel = idx - LINEAR_LIMIT;
        let msb = 7 + rel / SUB_BUCKETS;
        let sub = rel % SUB_BUCKETS;
        (1 << msb) + (sub << (msb - SUB_BITS as u64))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values (not bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket-representative value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(i);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Aggregated metrics for one benchmark run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    per_op: BTreeMap<OpKind, Histogram>,
    all: Option<Histogram>,
    started_at: u64,
    finished_at: u64,
    errors: u64,
    stale_reads: u64,
    reads_checked: u64,
}

impl RunMetrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Self {
            all: Some(Histogram::new()),
            ..Self::default()
        }
    }

    /// Record one completed operation.
    pub fn record(&mut self, kind: OpKind, latency_us: u64) {
        self.per_op.entry(kind).or_default().record(latency_us);
        self.all
            .get_or_insert_with(Histogram::new)
            .record(latency_us);
    }

    /// Record one failed operation.
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Record one read-consistency check outcome.
    pub fn record_staleness_check(&mut self, stale: bool) {
        self.reads_checked += 1;
        if stale {
            self.stale_reads += 1;
        }
    }

    /// Set the measured interval boundaries (virtual microseconds).
    pub fn set_window(&mut self, start: u64, end: u64) {
        self.started_at = start;
        self.finished_at = end.max(start);
    }

    /// Total successful operations.
    pub fn ops(&self) -> u64 {
        self.all.as_ref().map_or(0, Histogram::count)
    }

    /// Failed operations.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Stale reads observed / reads checked.
    pub fn staleness(&self) -> (u64, u64) {
        (self.stale_reads, self.reads_checked)
    }

    /// Runtime throughput over the measured window, ops/second.
    pub fn throughput(&self) -> f64 {
        let window = self.finished_at.saturating_sub(self.started_at);
        if window == 0 {
            0.0
        } else {
            self.ops() as f64 * 1_000_000.0 / window as f64
        }
    }

    /// The all-operations histogram.
    pub fn overall(&self) -> &Histogram {
        self.all.as_ref().expect("initialized in new()")
    }

    /// The histogram for one op kind, if any were recorded.
    pub fn for_op(&self, kind: OpKind) -> Option<&Histogram> {
        self.per_op.get(&kind)
    }

    /// Iterate recorded op kinds with their histograms.
    pub fn per_op(&self) -> impl Iterator<Item = (OpKind, &Histogram)> {
        self.per_op.iter().map(|(k, h)| (*k, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 99, 127] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn bucket_error_is_bounded() {
        for v in [130u64, 1_000, 8_192, 1_000_000, 123_456_789] {
            let lo = bucket_low(bucket_index(v));
            assert!(lo <= v, "low bound above value for {v}");
            let rel = (v - lo) as f64 / v as f64;
            assert!(rel < 0.017, "relative error {rel} too large for {v}");
        }
    }

    #[test]
    fn bucket_low_is_monotone() {
        let mut prev = 0;
        for idx in 0..BUCKETS {
            let lo = bucket_low(idx);
            assert!(lo >= prev, "bucket lows must not decrease at {idx}");
            prev = lo;
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        // Median of 0..10000 is ~5000, within bucket tolerance.
        let p50 = h.p50() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50={p50}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert!((h.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn run_metrics_throughput() {
        let mut m = RunMetrics::new();
        for _ in 0..1000 {
            m.record(OpKind::Read, 500);
        }
        m.set_window(0, 1_000_000); // one second
        assert!((m.throughput() - 1000.0).abs() < 1e-9);
        assert_eq!(m.ops(), 1000);
        assert_eq!(m.for_op(OpKind::Read).unwrap().count(), 1000);
        assert!(m.for_op(OpKind::Scan).is_none());
    }

    #[test]
    fn run_metrics_track_errors_and_staleness() {
        let mut m = RunMetrics::new();
        m.record_error();
        m.record_staleness_check(true);
        m.record_staleness_check(false);
        assert_eq!(m.errors(), 1);
        assert_eq!(m.staleness(), (1, 2));
    }

    #[test]
    fn zero_window_throughput_is_zero() {
        let mut m = RunMetrics::new();
        m.record(OpKind::Read, 1);
        m.set_window(5, 5);
        assert_eq!(m.throughput(), 0.0);
    }
}
