//! Latency histograms and run metrics.
//!
//! The histogram is HDR-style: exact below 128 µs, then log-bucketed with 64
//! sub-buckets per octave (≤ ~1.6% relative error), constant memory, O(1)
//! record. Quantiles and means are computed from bucket midpoints.

use std::collections::BTreeMap;

use storage::OpKind;

const LINEAR_LIMIT: u64 = 128;
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;
/// Linear buckets + 64 sub-buckets for each octave from 2^7 up to 2^63.
const BUCKETS: usize = (LINEAR_LIMIT + (64 - 7) * SUB_BUCKETS) as usize;

/// A log-bucketed latency histogram over `u64` microsecond values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= 7
        let sub = (v >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
        (LINEAR_LIMIT + (msb as u64 - 7) * SUB_BUCKETS + sub) as usize
    }
}

#[inline]
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_LIMIT {
        idx
    } else {
        let rel = idx - LINEAR_LIMIT;
        let msb = 7 + rel / SUB_BUCKETS;
        let sub = rel % SUB_BUCKETS;
        (1 << msb) + (sub << (msb - SUB_BITS as u64))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values (not bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket-representative value.
    ///
    /// Degenerate inputs resolve exactly rather than to a bucket floor:
    /// an empty histogram returns 0, a single-sample histogram returns
    /// its one value, `q <= 0` returns the true minimum and `q >= 1` the
    /// true maximum (both tracked exactly). The general bucketed path is
    /// untouched.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.count == 1 || q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(i);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-window latency and error accounting inside a [`Timeline`].
#[derive(Debug, Clone, Default)]
struct WindowStats {
    hist: Option<Histogram>,
    errors: u64,
    retried_ok: u64,
    attempts: u64,
}

/// One materialized timeline window, ready for tables and CSV rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineWindow {
    /// Window start, virtual microseconds from run start.
    pub start_us: u64,
    /// Window end (exclusive).
    pub end_us: u64,
    /// Successful operations completed inside the window.
    pub ops: u64,
    /// Successful-operation rate over the window.
    pub ops_per_sec: f64,
    /// Mean latency of the window's operations (µs; 0 when empty).
    pub mean_us: f64,
    /// 95th-percentile latency (µs; 0 when empty).
    pub p95_us: u64,
    /// 99th-percentile latency (µs; 0 when empty).
    pub p99_us: u64,
    /// Failed operations inside the window.
    pub errors: u64,
    /// Of [`TimelineWindow::ops`], how many needed a retry or a winning
    /// hedge (the rest succeeded on their first attempt).
    pub retried_ops: u64,
    /// Store attempts spent by the operations settling in this window
    /// (successes and errors); `attempts / (ops + errors)` is the window's
    /// attempts-per-op.
    pub attempts: u64,
}

impl TimelineWindow {
    /// Of [`TimelineWindow::ops`], how many succeeded on their first
    /// attempt — the window's *goodput the client got for free*.
    pub fn first_try_ops(&self) -> u64 {
        self.ops - self.retried_ops
    }

    /// Mean store attempts per settled operation (0 when the window is
    /// empty; 1.0 means no retry/hedge traffic at all).
    pub fn attempts_per_op(&self) -> f64 {
        let settled = self.ops + self.errors;
        if settled == 0 {
            0.0
        } else {
            self.attempts as f64 / settled as f64
        }
    }
}

/// Time-bucketed metrics: completions fall into fixed-width windows of
/// virtual time, each keeping its own latency histogram and error count,
/// so degradation and recovery around a fault are observable as a curve
/// rather than one end-of-run aggregate.
///
/// Windows are keyed by `completion_time / window_us`; a completion exactly
/// on a boundary belongs to the *later* window. Gaps (windows where nothing
/// completed — e.g. a total outage) materialize as empty windows in
/// [`Timeline::windows`], which is precisely the dip a failure experiment
/// wants to see.
#[derive(Debug, Clone)]
pub struct Timeline {
    window_us: u64,
    windows: BTreeMap<u64, WindowStats>,
}

impl Timeline {
    /// An empty timeline with the given window width (must be nonzero).
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "timeline window width must be nonzero");
        Self {
            window_us,
            windows: BTreeMap::new(),
        }
    }

    /// The window width, microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Record one successful completion at virtual time `at` that took one
    /// first-try attempt (shorthand for [`Timeline::record_success`]).
    pub fn record(&mut self, at: u64, latency_us: u64) {
        self.record_success(at, latency_us, false, 1);
    }

    /// Record one successful completion at virtual time `at`: `retried`
    /// marks an operation that needed a retry or winning hedge, `attempts`
    /// counts the store attempts it consumed.
    pub fn record_success(&mut self, at: u64, latency_us: u64, retried: bool, attempts: u32) {
        let w = self.windows.entry(at / self.window_us).or_default();
        w.hist.get_or_insert_with(Histogram::new).record(latency_us);
        if retried {
            w.retried_ok += 1;
        }
        w.attempts += u64::from(attempts);
    }

    /// Record one failed completion at virtual time `at` that consumed one
    /// attempt (shorthand for [`Timeline::record_failure`]).
    pub fn record_error(&mut self, at: u64) {
        self.record_failure(at, 1);
    }

    /// Record one client-visible failure at virtual time `at` that consumed
    /// `attempts` store attempts.
    pub fn record_failure(&mut self, at: u64, attempts: u32) {
        let w = self.windows.entry(at / self.window_us).or_default();
        w.errors += 1;
        w.attempts += u64::from(attempts);
    }

    /// Materialize every window from the first recorded one through the
    /// last, including interior gaps as zero-op windows.
    pub fn windows(&self) -> Vec<TimelineWindow> {
        let (Some((&first, _)), Some((&last, _))) = (
            self.windows.first_key_value(),
            self.windows.last_key_value(),
        ) else {
            return Vec::new();
        };
        let empty = WindowStats::default();
        (first..=last)
            .map(|idx| {
                let w = self.windows.get(&idx).unwrap_or(&empty);
                let (ops, mean_us, p95_us, p99_us) = match &w.hist {
                    Some(h) => (h.count(), h.mean(), h.p95(), h.p99()),
                    None => (0, 0.0, 0, 0),
                };
                TimelineWindow {
                    start_us: idx * self.window_us,
                    end_us: (idx + 1) * self.window_us,
                    ops,
                    ops_per_sec: ops as f64 * 1_000_000.0 / self.window_us as f64,
                    mean_us,
                    p95_us,
                    p99_us,
                    errors: w.errors,
                    retried_ops: w.retried_ok,
                    attempts: w.attempts,
                }
            })
            .collect()
    }
}

/// Client-resilience accounting for one run, maintained by the driver's
/// retry/hedge layer. All zeros under a no-retry policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Attempts submitted to the store: first tries, retries, hedges, and
    /// read-modify-write write phases.
    pub attempts: u64,
    /// Backed-off re-submissions after a retryable error.
    pub retries: u64,
    /// Hedged (speculative second) read attempts issued.
    pub hedges: u64,
    /// Settled operations whose hedge attempt finished first.
    pub hedge_wins: u64,
    /// Hedge losers: attempt completions drained after their operation had
    /// already settled, counted and dropped.
    pub hedge_cancelled: u64,
    /// Client-visible errors verdicted by the per-op deadline budget.
    pub deadline_exceeded: u64,
    /// Operations that succeeded on their first attempt.
    pub first_try_ok: u64,
    /// Operations that needed a retry or a winning hedge to succeed.
    pub retried_ok: u64,
}

/// Per-tenant accounting for multi-tenant open-loop runs: which tenant's
/// traffic got served, which got shed. Indexed by the arrival mix's tenant
/// position.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Latencies of the tenant's successful ops in the measured window.
    pub hist: Histogram,
    /// Client-visible failures (shed ops included).
    pub errors: u64,
    /// Of those, ops the store's admission controller shed. Budget
    /// consumers, not latency samples.
    pub shed: u64,
}

/// Aggregated metrics for one benchmark run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    per_op: BTreeMap<OpKind, Histogram>,
    all: Option<Histogram>,
    timeline: Option<Timeline>,
    resilience: ResilienceCounters,
    tenants: Vec<TenantStats>,
    started_at: u64,
    finished_at: u64,
    errors: u64,
    stale_reads: u64,
    missing_reads: u64,
    reads_checked: u64,
}

impl RunMetrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Self {
            all: Some(Histogram::new()),
            ..Self::default()
        }
    }

    /// Record one completed operation.
    pub fn record(&mut self, kind: OpKind, latency_us: u64) {
        self.per_op.entry(kind).or_default().record(latency_us);
        self.all
            .get_or_insert_with(Histogram::new)
            .record(latency_us);
    }

    /// Record one failed operation.
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Record one read-consistency check outcome.
    pub fn record_staleness_check(&mut self, stale: bool) {
        self.record_read_check(stale, false);
    }

    /// Record one read-consistency check outcome with the full verdict:
    /// `missing` marks a read that found no value after an acknowledged
    /// write (always also `stale`), so lost writes are countable apart
    /// from stale reads.
    pub fn record_read_check(&mut self, stale: bool, missing: bool) {
        self.reads_checked += 1;
        if stale {
            self.stale_reads += 1;
        }
        if missing {
            self.missing_reads += 1;
        }
    }

    /// Turn on time-bucketed collection with the given window width.
    /// Without this call the timeline hooks below are free no-ops, keeping
    /// aggregate-only runs untouched.
    pub fn enable_timeline(&mut self, window_us: u64) {
        self.timeline = Some(Timeline::new(window_us));
    }

    /// Note one successful completion at virtual time `at` for the
    /// timeline; a no-op unless [`RunMetrics::enable_timeline`] was called.
    /// Separate from [`RunMetrics::record`] because the timeline spans the
    /// whole run (warm-up included) while aggregates cover only the
    /// measured window. `retried` and `attempts` carry the resilience
    /// layer's per-op accounting into the window columns.
    pub fn note_timeline(&mut self, at: u64, latency_us: u64, retried: bool, attempts: u32) {
        if let Some(t) = &mut self.timeline {
            t.record_success(at, latency_us, retried, attempts);
        }
    }

    /// Note one failed completion at virtual time `at` (after `attempts`
    /// store attempts) for the timeline; a no-op unless the timeline is
    /// enabled.
    pub fn note_timeline_error(&mut self, at: u64, attempts: u32) {
        if let Some(t) = &mut self.timeline {
            t.record_failure(at, attempts);
        }
    }

    fn tenant_mut(&mut self, tenant: usize) -> &mut TenantStats {
        if self.tenants.len() <= tenant {
            self.tenants.resize_with(tenant + 1, TenantStats::default);
        }
        &mut self.tenants[tenant]
    }

    /// Record one successful completion for tenant index `tenant`
    /// (multi-tenant open-loop runs; single-tenant runs never call this).
    pub fn record_tenant(&mut self, tenant: usize, latency_us: u64) {
        self.tenant_mut(tenant).hist.record(latency_us);
    }

    /// Record one client-visible failure for tenant index `tenant`;
    /// `shed` marks admission-control rejections.
    pub fn record_tenant_error(&mut self, tenant: usize, shed: bool) {
        let t = self.tenant_mut(tenant);
        t.errors += 1;
        if shed {
            t.shed += 1;
        }
    }

    /// Per-tenant stats, indexed by tenant position in the arrival mix.
    /// Empty unless the tenant hooks above were used.
    pub fn tenants(&self) -> &[TenantStats] {
        &self.tenants
    }

    /// The run's client-resilience counters.
    pub fn resilience(&self) -> &ResilienceCounters {
        &self.resilience
    }

    /// Mutable access for the driver's retry/hedge layer.
    pub fn resilience_mut(&mut self) -> &mut ResilienceCounters {
        &mut self.resilience
    }

    /// The timeline, when enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Set the measured interval boundaries (virtual microseconds).
    pub fn set_window(&mut self, start: u64, end: u64) {
        self.started_at = start;
        self.finished_at = end.max(start);
    }

    /// Total successful operations.
    pub fn ops(&self) -> u64 {
        self.all.as_ref().map_or(0, Histogram::count)
    }

    /// Failed operations.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Stale reads observed / reads checked.
    pub fn staleness(&self) -> (u64, u64) {
        (self.stale_reads, self.reads_checked)
    }

    /// Checked reads that found no value after an acknowledged write (a
    /// subset of the stale count: lost writes, not lagging replicas).
    pub fn missing_reads(&self) -> u64 {
        self.missing_reads
    }

    /// Runtime throughput over the measured window, ops/second.
    pub fn throughput(&self) -> f64 {
        let window = self.finished_at.saturating_sub(self.started_at);
        if window == 0 {
            0.0
        } else {
            self.ops() as f64 * 1_000_000.0 / window as f64
        }
    }

    /// The all-operations histogram.
    pub fn overall(&self) -> &Histogram {
        self.all.as_ref().expect("initialized in new()")
    }

    /// The histogram for one op kind, if any were recorded.
    pub fn for_op(&self, kind: OpKind) -> Option<&Histogram> {
        self.per_op.get(&kind)
    }

    /// Iterate recorded op kinds with their histograms.
    pub fn per_op(&self) -> impl Iterator<Item = (OpKind, &Histogram)> {
        self.per_op.iter().map(|(k, h)| (*k, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 99, 127] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // A lone sample far above the linear bucket range must come back
        // exactly, not as its bucket's floor.
        let mut h = Histogram::new();
        h.record(1_000_003);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1_000_003, "q={q}");
        }
    }

    #[test]
    fn out_of_range_q_pins_to_exact_extremes() {
        let mut h = Histogram::new();
        h.record(130);
        h.record(123_456_789);
        assert_eq!(h.quantile(0.0), 130);
        assert_eq!(h.quantile(-3.0), 130);
        assert_eq!(h.quantile(1.0), 123_456_789);
        assert_eq!(h.quantile(7.0), 123_456_789);
    }

    #[test]
    fn known_distribution_pins_p50_p95_p99() {
        // 1..=100 sits in the exact linear buckets, so percentile ranks
        // map straight to values: rank ceil(q*100).
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p95(), 95);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.quantile(0.01), 1);
        // A skewed known distribution: ninety 10s and ten 100s.
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100);
        }
        assert_eq!(h.p50(), 10);
        assert_eq!(h.quantile(0.90), 10);
        assert_eq!(h.p95(), 100);
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn bucket_error_is_bounded() {
        for v in [130u64, 1_000, 8_192, 1_000_000, 123_456_789] {
            let lo = bucket_low(bucket_index(v));
            assert!(lo <= v, "low bound above value for {v}");
            let rel = (v - lo) as f64 / v as f64;
            assert!(rel < 0.017, "relative error {rel} too large for {v}");
        }
    }

    #[test]
    fn bucket_low_is_monotone() {
        let mut prev = 0;
        for idx in 0..BUCKETS {
            let lo = bucket_low(idx);
            assert!(lo >= prev, "bucket lows must not decrease at {idx}");
            prev = lo;
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        // Median of 0..10000 is ~5000, within bucket tolerance.
        let p50 = h.p50() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50={p50}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert!((h.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn run_metrics_throughput() {
        let mut m = RunMetrics::new();
        for _ in 0..1000 {
            m.record(OpKind::Read, 500);
        }
        m.set_window(0, 1_000_000); // one second
        assert!((m.throughput() - 1000.0).abs() < 1e-9);
        assert_eq!(m.ops(), 1000);
        assert_eq!(m.for_op(OpKind::Read).unwrap().count(), 1000);
        assert!(m.for_op(OpKind::Scan).is_none());
    }

    #[test]
    fn run_metrics_track_errors_and_staleness() {
        let mut m = RunMetrics::new();
        m.record_error();
        m.record_staleness_check(true);
        m.record_staleness_check(false);
        assert_eq!(m.errors(), 1);
        assert_eq!(m.staleness(), (1, 2));
        assert_eq!(m.missing_reads(), 0);
    }

    #[test]
    fn missing_reads_count_apart_from_stale() {
        let mut m = RunMetrics::new();
        m.record_read_check(true, false); // lagging replica
        m.record_read_check(true, true); // lost write
        m.record_read_check(false, false); // fresh
        assert_eq!(m.staleness(), (2, 3));
        assert_eq!(m.missing_reads(), 1);
    }

    #[test]
    fn zero_window_throughput_is_zero() {
        let mut m = RunMetrics::new();
        m.record(OpKind::Read, 1);
        m.set_window(5, 5);
        assert_eq!(m.throughput(), 0.0);
    }

    #[test]
    fn timeline_empty_window_gap_materializes_as_zeros() {
        let mut t = Timeline::new(1_000);
        t.record(500, 10); // window 0
        t.record(2_500, 30); // window 2; window 1 is a gap
        let w = t.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[1].start_us, 1_000);
        assert_eq!(w[1].ops, 0);
        assert_eq!(w[1].ops_per_sec, 0.0);
        assert_eq!(w[1].mean_us, 0.0);
        assert_eq!(w[1].p95_us, 0);
        assert_eq!(w[1].p99_us, 0);
        assert_eq!(w[1].errors, 0);
    }

    #[test]
    fn timeline_single_op_window_percentiles_equal_the_op() {
        let mut t = Timeline::new(1_000);
        t.record(100, 42);
        let w = t.windows();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].ops, 1);
        assert!((w[0].mean_us - 42.0).abs() < 1e-9);
        // One op below the linear bucket limit: every quantile is exact.
        assert_eq!(w[0].p95_us, 42);
        assert_eq!(w[0].p99_us, 42);
        assert!((w[0].ops_per_sec - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_boundary_completion_lands_in_later_window() {
        let mut t = Timeline::new(1_000);
        t.record(999, 1);
        t.record(1_000, 2); // exactly on the boundary
        let w = t.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].ops, 1);
        assert_eq!(w[1].ops, 1);
        assert_eq!(w[1].start_us, 1_000);
    }

    #[test]
    fn timeline_errors_bucket_separately_from_ops() {
        let mut t = Timeline::new(100);
        t.record_error(50);
        t.record_error(250);
        t.record(250, 5);
        let w = t.windows();
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].ops, w[0].errors), (0, 1));
        assert_eq!((w[2].ops, w[2].errors), (1, 1));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn timeline_rejects_zero_width_windows() {
        let _ = Timeline::new(0);
    }

    #[test]
    fn run_metrics_timeline_hooks_are_noops_until_enabled() {
        let mut m = RunMetrics::new();
        m.note_timeline(100, 5, false, 1);
        m.note_timeline_error(100, 1);
        assert!(m.timeline().is_none());
        m.enable_timeline(1_000);
        m.note_timeline(100, 5, false, 1);
        m.note_timeline_error(2_100, 1);
        let t = m.timeline().expect("enabled");
        let w = t.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].ops, 1);
        assert_eq!(w[2].errors, 1);
        // Timeline recording is independent of the aggregate counters.
        assert_eq!(m.ops(), 0);
        assert_eq!(m.errors(), 0);
    }

    #[test]
    fn timeline_splits_first_try_from_retried_goodput() {
        let mut t = Timeline::new(1_000);
        t.record_success(100, 10, false, 1); // clean first try
        t.record_success(200, 900, true, 3); // needed two extra attempts
        t.record_failure(300, 4); // gave up after four attempts
        let w = t.windows();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].ops, 2);
        assert_eq!(w[0].retried_ops, 1);
        assert_eq!(w[0].first_try_ops(), 1);
        assert_eq!(w[0].errors, 1);
        assert_eq!(w[0].attempts, 8);
        assert!((w[0].attempts_per_op() - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn plain_record_is_a_first_try_single_attempt() {
        let mut t = Timeline::new(1_000);
        t.record(100, 10);
        t.record_error(200);
        let w = t.windows();
        assert_eq!(w[0].retried_ops, 0);
        assert_eq!(w[0].attempts, 2);
        assert!((w[0].attempts_per_op() - 1.0).abs() < 1e-9);
        // An empty window has no attempts-per-op.
        let empty = Timeline::new(10).windows();
        assert!(empty.is_empty());
    }

    #[test]
    fn tenant_stats_grow_on_demand_and_split_shed_from_errors() {
        let mut m = RunMetrics::new();
        assert!(m.tenants().is_empty());
        m.record_tenant(1, 500);
        m.record_tenant_error(0, true);
        m.record_tenant_error(0, false);
        assert_eq!(m.tenants().len(), 2);
        assert_eq!(m.tenants()[0].errors, 2);
        assert_eq!(m.tenants()[0].shed, 1);
        assert_eq!(m.tenants()[0].hist.count(), 0);
        assert_eq!(m.tenants()[1].hist.count(), 1);
        assert_eq!(m.tenants()[1].errors, 0);
    }

    #[test]
    fn resilience_counters_default_to_zero_and_are_driver_writable() {
        let mut m = RunMetrics::new();
        assert_eq!(*m.resilience(), ResilienceCounters::default());
        m.resilience_mut().attempts += 3;
        m.resilience_mut().retries += 1;
        m.resilience_mut().retried_ok += 1;
        assert_eq!(m.resilience().attempts, 3);
        assert_eq!(m.resilience().retries, 1);
    }
}
