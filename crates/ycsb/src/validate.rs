//! Stale-read detection: measuring consistency instead of assuming it.
//!
//! The tracker implements a time-based staleness check in the spirit of
//! Bermbach et al. (the paper's related work [14]): a read is *stale* when
//! it returns a version older than the newest write that was already
//! acknowledged **before the read was issued**. Concurrent writes (in
//! flight at read-issue time) do not count against the store.

use simkit::FastHashMap;

use bytes::Bytes;

/// The verdict for one completed read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCheck {
    /// The read returned a version older than the newest write
    /// acknowledged before it was issued (not-found included).
    pub stale: bool,
    /// The read found *no* value at all after an acknowledged write — a
    /// lost-write symptom rather than a lagging replica. Always implies
    /// `stale` (missing ⊂ stale), so the stale counts figures already
    /// report are unchanged by tracking it.
    pub missing: bool,
}

/// Per-key acknowledged-write watermarks plus staleness counters.
#[derive(Debug, Clone, Default)]
pub struct StalenessTracker {
    acked: FastHashMap<Bytes, u64>,
    stale: u64,
    missing: u64,
    checked: u64,
}

impl StalenessTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a write of `key` with version timestamp `ts` has been
    /// acknowledged to the client.
    pub fn write_acked(&mut self, key: Bytes, ts: u64) {
        let slot = self.acked.entry(key).or_insert(0);
        *slot = (*slot).max(ts);
    }

    /// Snapshot the expectation for a read being issued now: the newest
    /// acknowledged version of `key` (0 when never written).
    pub fn expected(&self, key: &[u8]) -> u64 {
        self.acked.get(key).copied().unwrap_or(0)
    }

    /// Judge a completed read: `expected` is the snapshot taken at issue
    /// time, `observed` the version timestamp the read returned (`None` for
    /// not-found). Returns `true` when the read was stale.
    pub fn check(&mut self, expected: u64, observed: Option<u64>) -> bool {
        self.check_read(expected, observed).stale
    }

    /// [`StalenessTracker::check`] with the full verdict: splits "found no
    /// value after an acked write" (`missing`) out of the plain stale
    /// count, so lost writes are distinguishable from stale reads.
    pub fn check_read(&mut self, expected: u64, observed: Option<u64>) -> ReadCheck {
        self.checked += 1;
        let stale = observed.unwrap_or(0) < expected;
        let missing = observed.is_none() && expected > 0;
        if stale {
            self.stale += 1;
        }
        if missing {
            self.missing += 1;
        }
        ReadCheck { stale, missing }
    }

    /// `(stale, checked)` counts so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.stale, self.checked)
    }

    /// Reads that found no value after an acknowledged write (a subset of
    /// the stale count).
    pub fn missing(&self) -> u64 {
        self.missing
    }

    /// Stale fraction (0 when nothing checked).
    pub fn stale_fraction(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.stale as f64 / self.checked as f64
        }
    }

    /// Number of keys with acknowledged writes.
    pub fn tracked_keys(&self) -> usize {
        self.acked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn fresh_read_is_not_stale() {
        let mut t = StalenessTracker::new();
        t.write_acked(k("a"), 100);
        let exp = t.expected(b"a");
        assert!(!t.check(exp, Some(100)));
        assert!(!t.check(exp, Some(150)), "newer than expected is fine");
        assert_eq!(t.counts(), (0, 2));
    }

    #[test]
    fn old_version_is_stale() {
        let mut t = StalenessTracker::new();
        t.write_acked(k("a"), 100);
        assert!(t.check(t.expected(b"a"), Some(50)));
        assert!(
            t.check(t.expected(b"a"), None),
            "not-found after an ack is stale"
        );
        assert_eq!(t.counts(), (2, 2));
        assert!((t.stale_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_splits_not_found_out_of_stale() {
        let mut t = StalenessTracker::new();
        t.write_acked(k("a"), 100);
        // An old version is stale but not missing.
        assert_eq!(
            t.check_read(t.expected(b"a"), Some(50)),
            ReadCheck {
                stale: true,
                missing: false
            }
        );
        // Not-found after an ack is both: missing ⊂ stale.
        assert_eq!(
            t.check_read(t.expected(b"a"), None),
            ReadCheck {
                stale: true,
                missing: true
            }
        );
        // Not-found on a never-written key is neither.
        assert_eq!(t.check_read(0, None), ReadCheck::default());
        assert_eq!(t.counts(), (2, 3));
        assert_eq!(t.missing(), 1);
    }

    #[test]
    fn unwritten_keys_never_stale() {
        let mut t = StalenessTracker::new();
        assert_eq!(t.expected(b"ghost"), 0);
        assert!(!t.check(0, None));
    }

    #[test]
    fn concurrent_write_does_not_count() {
        let mut t = StalenessTracker::new();
        t.write_acked(k("a"), 100);
        let snapshot = t.expected(b"a"); // read issued here
        t.write_acked(k("a"), 200); // concurrent write acks later
        assert!(!t.check(snapshot, Some(100)), "expected only ts>=100");
    }

    #[test]
    fn watermark_is_monotone() {
        let mut t = StalenessTracker::new();
        t.write_acked(k("a"), 100);
        t.write_acked(k("a"), 50); // late ack of an older write
        assert_eq!(t.expected(b"a"), 100);
        assert_eq!(t.tracked_keys(), 1);
    }
}
