//! Key encoding and value generation.
//!
//! YCSB's default `insertorder=hashed`: record id `i` becomes key
//! `"user" + hash(i)`, so sequential inserts scatter uniformly over the key
//! space instead of hammering the newest range — without this, a *read
//! latest* run on an ordered store degenerates to a single-server hotspot.
//! The hash is rendered as zero-padded decimal, so lexicographic byte order
//! equals hashed-value order and ordered partitioners/scans work over the
//! hashed space (exactly YCSB's behaviour on range-scan workloads).
//!
//! Values come from a small refcounted pool: the simulated stores account
//! I/O by *length*, so distinct contents would only waste memory at the
//! 10^5–10^6-record scale the experiments run at.

use bytes::Bytes;
use rand::Rng;

/// Width of the zero-padded numeric portion of a key (fits any `u64`).
pub const KEY_DIGITS: usize = 20;

/// FNV-1a with avalanche, YCSB's key-scrambling role.
#[inline]
pub fn fnv_scramble(id: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// Encode a raw 64-bit key-space position as an ordered key.
///
/// Digits are written directly into a stack buffer — this sits on the
/// driver's per-op issue path, where a `format!` round trip (its
/// formatting machinery plus an intermediate `String`) is measurable.
pub fn encode_point(raw: u64) -> Bytes {
    let mut buf = [0u8; 4 + KEY_DIGITS];
    buf[..4].copy_from_slice(b"user");
    let mut v = raw;
    for slot in buf[4..].iter_mut().rev() {
        *slot = b'0' + (v % 10) as u8;
        v /= 10;
    }
    Bytes::copy_from_slice(&buf)
}

/// Encode record id `id` as its (hashed, scattered) key.
pub fn encode_key(id: u64) -> Bytes {
    encode_point(fnv_scramble(id))
}

/// Decode a key back to its raw key-space position (not the record id —
/// the hash is one-way, as in YCSB).
pub fn decode_point(key: &[u8]) -> Option<u64> {
    let digits = key.strip_prefix(b"user")?;
    std::str::from_utf8(digits).ok()?.parse().ok()
}

/// Evenly spaced key-space boundary tokens for `n` partitions: token `j`
/// starts partition `j`'s range. Token 0 is the empty-prefix minimum so the
/// first partition owns everything below token 1.
pub fn balanced_tokens(n: usize) -> Vec<Bytes> {
    assert!(n > 0);
    let span = u64::MAX / n as u64;
    (0..n as u64).map(|j| encode_point(j * span)).collect()
}

/// Tracks the growing record-id space during a run: ids `0..count` exist.
#[derive(Debug, Clone)]
pub struct KeySpace {
    count: u64,
}

impl KeySpace {
    /// A key space preloaded with `initial` records.
    pub fn new(initial: u64) -> Self {
        Self { count: initial }
    }

    /// Number of records that exist.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Key of an existing record.
    pub fn key(&self, id: u64) -> Bytes {
        debug_assert!(id < self.count);
        encode_key(id)
    }

    /// Allocate the next record id (a transactional insert) and return its
    /// key.
    pub fn next_insert(&mut self) -> (u64, Bytes) {
        let id = self.count;
        self.count += 1;
        (id, encode_key(id))
    }
}

/// A per-run interner for generated keys: a direct-mapped cache from
/// record id to its encoded key.
///
/// The request distributions the experiments run (zipfian, latest,
/// hotspot) touch a small set of hot ids over and over; interning turns
/// every repeat encoding into a slot probe plus a `Bytes` refcount bump.
/// The cache is bounded (direct-mapped, power-of-two slots), so a
/// uniform distribution degrades to plain encoding plus one array write —
/// never to unbounded memory growth.
#[derive(Debug, Clone)]
pub struct KeyInterner {
    slots: Vec<Option<(u64, Bytes)>>,
    mask: usize,
    hits: u64,
    misses: u64,
}

impl KeyInterner {
    /// An interner with at least `capacity` slots (rounded up to a power
    /// of two).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Self {
            slots: vec![None; cap],
            mask: cap - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// The (hashed, scattered) key of record `id`, cached.
    pub fn key(&mut self, id: u64) -> Bytes {
        let slot = (id as usize) & self.mask;
        if let Some((cached, key)) = &self.slots[slot] {
            if *cached == id {
                self.hits += 1;
                return key.clone();
            }
        }
        self.misses += 1;
        let key = encode_key(id);
        self.slots[slot] = Some((id, key.clone()));
        key
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// A pool of a few shared value buffers of a fixed length. Cloning a
/// `Bytes` is a refcount bump, so a billion writes cost a few kilobytes.
#[derive(Debug, Clone)]
pub struct ValuePool {
    buffers: Vec<Bytes>,
    len: usize,
}

impl ValuePool {
    /// Build a pool of `variants` distinct buffers of `len` bytes each.
    pub fn new(len: usize, variants: usize) -> Self {
        let variants = variants.max(1);
        let buffers = (0..variants)
            .map(|v| {
                let mut buf = vec![0u8; len];
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = b'a' + ((i + v) % 26) as u8;
                }
                Bytes::from(buf)
            })
            .collect();
        Self { buffers, len }
    }

    /// The value length this pool produces.
    pub fn value_len(&self) -> usize {
        self.len
    }

    /// Draw a value (refcounted clone of a pooled buffer).
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> Bytes {
        let i = rng.gen_range(0..self.buffers.len());
        self.buffers[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimRng;

    #[test]
    fn keys_are_ordered_by_raw_position() {
        let a = encode_point(5);
        let b = encode_point(50);
        let c = encode_point(u64::MAX);
        assert!(a < b && b < c);
        assert_eq!(a.len(), 4 + KEY_DIGITS);
    }

    #[test]
    fn point_roundtrip() {
        for raw in [0u64, 1, 42, u64::MAX] {
            assert_eq!(decode_point(&encode_point(raw)), Some(raw));
        }
        assert_eq!(decode_point(b"bogus"), None);
    }

    #[test]
    fn sequential_ids_scatter_over_the_key_space() {
        // The hashed keys of consecutive ids must land in different
        // partitions — the anti-hotspot property.
        let tokens = balanced_tokens(10);
        let partition = |key: &Bytes| {
            tokens
                .iter()
                .rposition(|t| t <= key)
                .unwrap_or(tokens.len() - 1)
        };
        let mut seen = std::collections::HashSet::new();
        for id in 0..100u64 {
            seen.insert(partition(&encode_key(id)));
        }
        assert!(seen.len() >= 9, "inserts hotspotted: {seen:?}");
    }

    #[test]
    fn hashing_is_deterministic_and_collision_free_at_scale() {
        let mut set = std::collections::HashSet::new();
        for id in 0..500_000u64 {
            assert!(set.insert(fnv_scramble(id)), "collision at {id}");
        }
        assert_eq!(encode_key(7), encode_key(7));
    }

    #[test]
    fn balanced_tokens_are_sorted_and_cover() {
        let t = balanced_tokens(15);
        assert_eq!(t.len(), 15);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t[0], encode_point(0));
    }

    #[test]
    fn keyspace_grows_on_insert() {
        let mut ks = KeySpace::new(10);
        assert_eq!(ks.count(), 10);
        let (id, key) = ks.next_insert();
        assert_eq!(id, 10);
        assert_eq!(key, encode_key(10));
        assert_eq!(ks.count(), 11);
    }

    #[test]
    fn value_pool_produces_fixed_length_shared_buffers() {
        let pool = ValuePool::new(1000, 4);
        let mut rng = SimRng::new(3);
        let v1 = pool.next(&mut rng);
        assert_eq!(v1.len(), 1000);
        assert_eq!(pool.value_len(), 1000);
        let distinct: std::collections::HashSet<_> =
            (0..100).map(|_| pool.next(&mut rng).to_vec()).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn encode_point_matches_formatted_reference() {
        for raw in [0u64, 7, 999, 10u64.pow(19), u64::MAX] {
            assert_eq!(
                encode_point(raw).as_ref(),
                format!("user{raw:0KEY_DIGITS$}").as_bytes()
            );
        }
    }

    #[test]
    fn interner_returns_identical_keys_and_counts_hits() {
        let mut it = KeyInterner::new(16);
        let a1 = it.key(3);
        let a2 = it.key(3);
        assert_eq!(a1, a2);
        assert_eq!(a1, encode_key(3));
        assert_eq!(it.stats(), (1, 1));
        // Colliding slot (3 and 19 share slot 3 with 16 slots): both still
        // encode correctly, evicting each other.
        let b = it.key(19);
        assert_eq!(b, encode_key(19));
        assert_eq!(it.key(3), encode_key(3));
        assert_eq!(it.stats(), (1, 3));
    }

    #[test]
    fn interner_capacity_rounds_up() {
        let mut it = KeyInterner::new(0);
        assert_eq!(it.key(0), encode_key(0));
        let mut it = KeyInterner::new(1000);
        for id in 0..5000u64 {
            assert_eq!(it.key(id), encode_key(id));
        }
    }

    #[test]
    fn zero_length_values_supported() {
        let pool = ValuePool::new(0, 1);
        let mut rng = SimRng::new(3);
        assert_eq!(pool.next(&mut rng).len(), 0);
    }
}
