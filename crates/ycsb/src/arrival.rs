//! Open-loop arrival processes: Poisson traffic, diurnal rate curves,
//! flash-crowd bursts, and multi-tenant mixes.
//!
//! YCSB's closed loop ties the request rate to the server's completion rate:
//! when the store slows down the clients slow down with it, queues never
//! build, and the latency numbers suffer *coordinated omission* — the slow
//! periods are underrepresented exactly because they were slow. An open-loop
//! client instead draws arrival instants from an external stochastic process
//! (here: a non-homogeneous Poisson process) and issues at those instants
//! regardless of how the store is doing, which is how production traffic
//! behaves and what makes saturation visible.
//!
//! Because arrivals are *simulated events*, an op's issue time in the sim IS
//! its intended start time — there is no client-side stall that would push
//! issuance late, so open-loop percentiles measured from issue are
//! coordinated-omission-free by construction.
//!
//! Everything here is deterministic given an RNG: interarrivals are inverse
//! -CDF draws, tenant selection is a single uniform draw against cumulative
//! weights. The module is simulation-agnostic (plain `u64` microsecond
//! times, any `rand::Rng`), like the rest of the crate.
//!
//! The arrival process feeds every open-loop run's event stream, so unwraps
//! are banned (CI greps for the attribute below staying in place).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use rand::Rng;

use crate::workload::OpMix;

/// Microseconds per second (local copy; the crate is simkit-agnostic).
const MICROS_PER_SEC: f64 = 1_000_000.0;

/// One tenant in a multi-tenant open-loop mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Display name used in per-tenant report columns.
    pub name: &'static str,
    /// Share of total arrivals routed to this tenant (weights are
    /// normalised over the tenant list).
    pub weight: f64,
    /// Scheduling priority carried to the store's admission controller:
    /// `0` is highest (shed last).
    pub priority: u8,
    /// Per-tenant operation mix; `None` inherits the workload's mix.
    pub mix: Option<OpMix>,
}

impl Tenant {
    /// A single default tenant: full weight, top priority, workload mix.
    pub fn solo() -> Self {
        Self {
            name: "all",
            weight: 1.0,
            priority: 0,
            mix: None,
        }
    }
}

/// A flash-crowd event: for a window of virtual time, the arrival rate is
/// multiplied and a fraction of requests concentrates on a tiny hot key set
/// (a celebrity post, a viral item).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Window start (µs since the start of the measured run).
    pub start_us: u64,
    /// Window end (µs).
    pub end_us: u64,
    /// Arrival-rate multiplier inside the window.
    pub rate_multiplier: f64,
    /// Fraction of in-window requests redirected to the hot key set.
    pub hot_fraction: f64,
    /// Size of the hot key set (record ids `0..hot_keys`).
    pub hot_keys: u64,
}

impl FlashCrowd {
    /// True while `t` is inside the crowd window.
    pub fn active(&self, t: u64) -> bool {
        t >= self.start_us && t < self.end_us
    }
}

/// An open-loop (non-homogeneous Poisson) arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoop {
    /// Baseline offered load, arrivals per second of virtual time.
    pub ops_per_sec: f64,
    /// Diurnal modulation amplitude in `[0, 1)`: the instantaneous rate is
    /// `ops_per_sec * (1 + amplitude * sin(2π t / period))`. `0` keeps the
    /// rate flat.
    pub diurnal_amplitude: f64,
    /// Diurnal period, µs of virtual time (a compressed "day").
    pub diurnal_period_us: u64,
    /// Optional flash-crowd window.
    pub flash: Option<FlashCrowd>,
    /// Tenant mix; must be non-empty (use [`Tenant::solo`] for one tenant).
    pub tenants: Vec<Tenant>,
}

impl OpenLoop {
    /// A flat single-tenant Poisson process at `ops_per_sec`.
    pub fn poisson(ops_per_sec: f64) -> Self {
        Self {
            ops_per_sec,
            diurnal_amplitude: 0.0,
            diurnal_period_us: 0,
            flash: None,
            tenants: vec![Tenant::solo()],
        }
    }

    /// The instantaneous arrival rate (arrivals/sec) at virtual time `t` µs:
    /// baseline × diurnal modulation × flash-crowd multiplier.
    pub fn rate_at(&self, t: u64) -> f64 {
        let mut rate = self.ops_per_sec;
        if self.diurnal_amplitude > 0.0 && self.diurnal_period_us > 0 {
            let phase = (t % self.diurnal_period_us) as f64 / self.diurnal_period_us as f64;
            rate *= 1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        }
        if let Some(f) = &self.flash {
            if f.active(t) {
                rate *= f.rate_multiplier;
            }
        }
        rate.max(1e-9)
    }

    /// Draw the next interarrival gap, µs, for an arrival at time `t`:
    /// exponential with the instantaneous rate (thinning over one gap is
    /// unnecessary at our rate-change timescales), floored at 1 µs so the
    /// event queue always advances.
    pub fn next_interarrival_us<R: Rng + ?Sized>(&self, t: u64, rng: &mut R) -> u64 {
        let lambda_per_us = self.rate_at(t) / MICROS_PER_SEC;
        let u: f64 = rng.gen();
        // Inverse CDF of Exp(λ); `1 - u` keeps the argument in (0, 1].
        let gap = -(1.0 - u).ln() / lambda_per_us;
        (gap as u64).max(1)
    }

    /// Pick the issuing tenant for one arrival: a single uniform draw
    /// against cumulative weights. Returns the tenant index.
    pub fn pick_tenant<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.tenants.len() <= 1 {
            return 0;
        }
        let total: f64 = self.tenants.iter().map(|t| t.weight).sum();
        let mut u: f64 = rng.gen::<f64>() * total;
        for (i, t) in self.tenants.iter().enumerate() {
            u -= t.weight;
            if u <= 0.0 {
                return i;
            }
        }
        self.tenants.len() - 1
    }

    /// If a flash crowd is active at `t`, decide whether this request is
    /// redirected to the hot set and, if so, which hot record it hits.
    /// Draws exactly one `f64` when active (plus one index draw when hot),
    /// zero draws otherwise.
    pub fn flash_redirect<R: Rng + ?Sized>(&self, t: u64, rng: &mut R) -> Option<u64> {
        let f = self.flash.as_ref()?;
        if !f.active(t) {
            return None;
        }
        if rng.gen::<f64>() < f.hot_fraction {
            Some(rng.gen_range(0..f.hot_keys.max(1)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimRng;

    fn rng(seed: u64) -> SimRng {
        SimRng::new(seed)
    }

    #[test]
    fn flat_poisson_mean_matches_rate() {
        let ol = OpenLoop::poisson(1_000.0); // mean gap 1000 µs
        let mut r = rng(7);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| ol.next_interarrival_us(0, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1_000.0).abs() < 30.0,
            "mean interarrival {mean} µs, expected ~1000"
        );
    }

    #[test]
    fn diurnal_curve_modulates_rate() {
        let ol = OpenLoop {
            diurnal_amplitude: 0.5,
            diurnal_period_us: 1_000_000,
            ..OpenLoop::poisson(1_000.0)
        };
        // Peak at a quarter period, trough at three quarters.
        let peak = ol.rate_at(250_000);
        let trough = ol.rate_at(750_000);
        assert!((peak - 1_500.0).abs() < 1.0, "peak {peak}");
        assert!((trough - 500.0).abs() < 1.0, "trough {trough}");
        assert!((ol.rate_at(0) - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn flash_crowd_window_multiplies_rate_and_redirects() {
        let ol = OpenLoop {
            flash: Some(FlashCrowd {
                start_us: 100,
                end_us: 200,
                rate_multiplier: 4.0,
                hot_fraction: 1.0,
                hot_keys: 8,
            }),
            ..OpenLoop::poisson(500.0)
        };
        assert!((ol.rate_at(150) - 2_000.0).abs() < 1e-9);
        assert!((ol.rate_at(50) - 500.0).abs() < 1e-9);
        let mut r = rng(1);
        let hot = ol.flash_redirect(150, &mut r);
        assert!(hot.is_some_and(|k| k < 8));
        assert!(ol.flash_redirect(250, &mut r).is_none());
    }

    #[test]
    fn tenant_pick_follows_weights() {
        let ol = OpenLoop {
            tenants: vec![
                Tenant {
                    name: "hot",
                    weight: 0.75,
                    priority: 0,
                    mix: None,
                },
                Tenant {
                    name: "batch",
                    weight: 0.25,
                    priority: 2,
                    mix: None,
                },
            ],
            ..OpenLoop::poisson(100.0)
        };
        let mut r = rng(3);
        let n = 10_000;
        let hot = (0..n).filter(|_| ol.pick_tenant(&mut r) == 0).count();
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn interarrival_draws_are_seed_deterministic() {
        let ol = OpenLoop::poisson(2_000.0);
        let a: Vec<u64> = {
            let mut r = rng(42);
            (0..64)
                .map(|i| ol.next_interarrival_us(i * 100, &mut r))
                .collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(42);
            (0..64)
                .map(|i| ol.next_interarrival_us(i * 100, &mut r))
                .collect()
        };
        assert_eq!(a, b);
    }
}
