//! # ycsb — the workload generator and measurement kit (YCSB analog)
//!
//! A faithful reimplementation of the parts of the Yahoo! Cloud Serving
//! Benchmark the paper relies on:
//!
//! * [`generator`] — request-key distributions: uniform, zipfian (Gray et
//!   al.'s algorithm with YCSB's constants), scrambled zipfian, latest,
//!   hotspot, and exponential.
//! * [`keys`] — zero-padded ordered key encoding and a memory-thrifty value
//!   pool.
//! * [`workload`] — operation-mix specifications: the paper's five Table 1
//!   stress workloads, the YCSB core workloads A–F, and the micro-benchmark
//!   atomic-operation rounds.
//! * [`stats`] — HDR-style log-bucketed latency histograms and run metrics.
//! * [`client`] — closed-loop client-thread pacing with optional target
//!   throughput throttling (YCSB's `-target`), the mechanism behind the
//!   paper's runtime-vs-target throughput curves.
//! * [`arrival`] — open-loop arrival processes (Poisson interarrivals,
//!   diurnal rate curves, flash crowds, multi-tenant mixes) whose
//!   percentiles are coordinated-omission-free.
//! * [`validate`] — stale-read detection, used to *measure* consistency
//!   rather than assume it.
//!
//! The crate is simulation-agnostic: generators take any `rand::Rng`, and
//! time is plain `u64` microseconds supplied by the caller.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod client;
pub mod generator;
pub mod keys;
pub mod stats;
pub mod validate;
pub mod workload;

pub use arrival::{FlashCrowd, OpenLoop, Tenant};
pub use client::Throttle;
pub use generator::RequestDistribution;
pub use keys::{balanced_tokens, encode_key, encode_point, KeyInterner, KeySpace, ValuePool};
pub use stats::{Histogram, ResilienceCounters, RunMetrics, TenantStats, Timeline, TimelineWindow};
pub use validate::{ReadCheck, StalenessTracker};
pub use workload::{DistributionKind, OpMix, WorkloadSpec};
