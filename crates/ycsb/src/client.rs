//! Closed-loop client-thread pacing.
//!
//! YCSB clients are closed loops: a thread does not issue its next operation
//! until the previous response arrives — the paper leans on this to explain
//! why runtime throughput and latency are inversely related in the stress
//! tests. A target throughput (`-target` in YCSB) adds a lower bound on
//! inter-arrival spacing; the achieved ("runtime") throughput is then
//! `min(target, closed-loop capacity)`.

/// Pacing state for one client thread.
#[derive(Debug, Clone)]
pub struct Throttle {
    /// Minimum microseconds between issues; `0` = unthrottled.
    interval_us: u64,
    /// Next instant the schedule permits an issue.
    next_slot: u64,
}

impl Throttle {
    /// A throttle targeting `ops_per_sec` for this thread; `None` or zero
    /// means unthrottled.
    pub fn per_thread(ops_per_sec: f64) -> Self {
        let interval_us = if ops_per_sec > 0.0 {
            (1_000_000.0 / ops_per_sec).round() as u64
        } else {
            0
        };
        Self {
            interval_us,
            next_slot: 0,
        }
    }

    /// Split a cluster-wide target evenly over `threads` threads.
    pub fn for_target(total_ops_per_sec: f64, threads: usize) -> Self {
        if total_ops_per_sec <= 0.0 {
            Self::per_thread(0.0)
        } else {
            Self::per_thread(total_ops_per_sec / threads.max(1) as f64)
        }
    }

    /// The configured inter-arrival spacing (0 when unthrottled).
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Given that the previous operation completed at `completed_at`, return
    /// when this thread should issue its next operation, and advance the
    /// schedule.
    ///
    /// The schedule is absolute (slots every `interval_us`), matching YCSB's
    /// behaviour of *catching up* after a slow operation rather than
    /// permanently losing slots — but it never issues before the completion
    /// itself (closed loop).
    pub fn next_issue(&mut self, completed_at: u64) -> u64 {
        if self.interval_us == 0 {
            return completed_at;
        }
        let due = self.next_slot.max(completed_at);
        self.next_slot = due + self.interval_us;
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthrottled_issues_immediately() {
        let mut t = Throttle::per_thread(0.0);
        assert_eq!(t.next_issue(123), 123);
        assert_eq!(t.next_issue(456), 456);
        assert_eq!(t.interval_us(), 0);
    }

    #[test]
    fn throttled_spaces_issues() {
        // 1000 ops/s => 1000us interval.
        let mut t = Throttle::per_thread(1000.0);
        assert_eq!(t.interval_us(), 1000);
        let first = t.next_issue(0);
        assert_eq!(first, 0);
        // Fast completion at t=10: next slot is 1000.
        assert_eq!(t.next_issue(10), 1000);
        assert_eq!(t.next_issue(1010), 2000);
    }

    #[test]
    fn closed_loop_never_issues_before_completion() {
        let mut t = Throttle::per_thread(1000.0);
        t.next_issue(0);
        // A very slow op completing at t=10_000 pushes the issue time.
        let due = t.next_issue(10_000);
        assert_eq!(due, 10_000);
        // Schedule continues from there.
        assert_eq!(t.next_issue(10_000), 11_000);
    }

    #[test]
    fn target_split_across_threads() {
        let t = Throttle::for_target(10_000.0, 10);
        // 1000 ops/s/thread.
        assert_eq!(t.interval_us(), 1000);
        let unlimited = Throttle::for_target(0.0, 10);
        assert_eq!(unlimited.interval_us(), 0);
    }

    #[test]
    fn achieved_rate_tracks_target_when_capacity_allows() {
        // Simulate fast ops (100us) against a 1000us interval: one op per
        // slot, so over 1s we issue ~1000 ops.
        let mut t = Throttle::per_thread(1000.0);
        let mut now = 0;
        let mut issues = 0;
        while now < 1_000_000 {
            let due = t.next_issue(now);
            now = due + 100; // op latency
            issues += 1;
        }
        assert!((990..=1010).contains(&issues), "issues={issues}");
    }
}
