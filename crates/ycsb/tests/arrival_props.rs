//! Property tests for the open-loop arrival process: seed reproducibility
//! (the foundation of the driver's determinism contract) and basic rate
//! physics over the whole parameter space.

use proptest::prelude::*;
use simkit::SimRng;
use ycsb::{OpenLoop, Tenant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same seed → same interarrival sequence, for any rate and diurnal
    /// modulation. This is what makes open-loop runs replayable.
    #[test]
    fn poisson_draws_are_seed_reproducible(
        seed in any::<u64>(),
        rate in 1.0f64..1_000_000.0,
        amp in 0.0f64..0.9,
    ) {
        let ol = OpenLoop {
            diurnal_amplitude: amp,
            diurnal_period_us: 1_000_000,
            ..OpenLoop::poisson(rate)
        };
        let draw = |seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut t = 0u64;
            (0..256)
                .map(|_| {
                    let gap = ol.next_interarrival_us(t, &mut rng);
                    t += gap;
                    gap
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(draw(seed), draw(seed));
    }

    /// Gaps never stall the event queue (≥ 1 µs) and their empirical mean
    /// tracks 1/rate.
    #[test]
    fn gaps_are_positive_and_mean_tracks_rate(
        seed in any::<u64>(),
        rate in 100.0f64..100_000.0,
    ) {
        let ol = OpenLoop::poisson(rate);
        let mut rng = SimRng::new(seed);
        let n = 4_096u64;
        let mut total = 0u64;
        for _ in 0..n {
            let gap = ol.next_interarrival_us(0, &mut rng);
            prop_assert!(gap >= 1);
            total += gap;
        }
        let mean = total as f64 / n as f64;
        let expect = 1e6 / rate;
        // Wide bounds: ±25% absorbs sampling noise and the 1 µs floor's
        // truncation bias at high rates.
        prop_assert!(
            mean > expect * 0.75 && mean < expect * 1.25 + 1.0,
            "mean gap {} µs, expected ~{}", mean, expect
        );
    }

    /// Tenant selection is reproducible per seed and always in range.
    #[test]
    fn tenant_picks_are_seed_reproducible(
        seed in any::<u64>(),
        w0 in 0.1f64..10.0,
        w1 in 0.1f64..10.0,
    ) {
        let ol = OpenLoop {
            tenants: vec![
                Tenant { name: "a", weight: w0, priority: 0, mix: None },
                Tenant { name: "b", weight: w1, priority: 2, mix: None },
            ],
            ..OpenLoop::poisson(1_000.0)
        };
        let picks = |seed: u64| {
            let mut rng = SimRng::new(seed);
            (0..256).map(|_| ol.pick_tenant(&mut rng)).collect::<Vec<_>>()
        };
        let a = picks(seed);
        prop_assert!(a.iter().all(|&i| i < 2));
        prop_assert_eq!(a, picks(seed));
    }
}
