//! Property-based tests for generators, histograms, and pacing.

use proptest::prelude::*;
use simkit::SimRng;
use ycsb::generator::{RequestDistribution, Zipfian};
use ycsb::{encode_key, Histogram, OpMix, Throttle};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every distribution stays within [0, items) for any seed and size.
    #[test]
    fn distributions_respect_bounds(items in 1u64..100_000, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for dist in [
            RequestDistribution::Uniform { items },
            RequestDistribution::Zipfian(Zipfian::new(items)),
            RequestDistribution::ScrambledZipfian(Zipfian::new(items)),
            RequestDistribution::Latest(Zipfian::new(items)),
        ] {
            for _ in 0..200 {
                prop_assert!(dist.next(&mut rng) < items);
            }
        }
    }

    /// Incremental zeta extension equals a fresh computation.
    #[test]
    fn zipfian_incremental_zeta(start in 1u64..5_000, grow in 1u64..5_000) {
        let mut grown = Zipfian::new(start);
        grown.set_items(start + grow);
        let fresh = Zipfian::new(start + grow);
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            prop_assert_eq!(grown.next(&mut a), fresh.next(&mut b));
        }
    }

    /// Histogram quantiles are monotone, bounded by min/max, and count
    /// exactly what was recorded.
    #[test]
    fn histogram_quantile_invariants(values in prop::collection::vec(0u64..10_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prop_assert!(v <= max);
            prev = v;
        }
        // Bucketed quantile is within the histogram's relative error of the
        // exact value (exact below 128, ~1.6% above).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact_p50 = sorted[(values.len() - 1) / 2];
        let approx = h.quantile(0.5) as f64;
        let tolerance = (exact_p50 as f64 * 0.02).max(1.0);
        prop_assert!(
            (approx - exact_p50 as f64).abs() <= tolerance + 1.0,
            "p50 {} vs exact {}", approx, exact_p50
        );
    }

    /// Histogram merge equals recording the union.
    #[test]
    fn histogram_merge_is_union(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    /// Op-mix draws converge to the configured fractions.
    #[test]
    fn op_mix_frequencies(read in 0u32..100) {
        let read_frac = f64::from(read) / 100.0;
        let mix = OpMix {
            read: read_frac,
            update: 1.0 - read_frac,
            insert: 0.0,
            scan: 0.0,
            rmw: 0.0,
        };
        prop_assume!(mix.is_valid());
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let reads = (0..n)
            .filter(|_| mix.choose(&mut rng) == storage::OpKind::Read)
            .count();
        let observed = reads as f64 / f64::from(n);
        prop_assert!((observed - read_frac).abs() < 0.02);
    }

    /// Throttled issue times never precede completion and keep the long-run
    /// rate at or below target.
    #[test]
    fn throttle_rate_bound(rate in 10.0f64..10_000.0, latency in 1u64..5_000) {
        let mut t = Throttle::per_thread(rate);
        let mut now = 0u64;
        let mut issues = 0u64;
        let horizon = 3_000_000; // 3 virtual seconds
        loop {
            let due = t.next_issue(now);
            prop_assert!(due >= now);
            if due > horizon {
                break;
            }
            now = due + latency;
            issues += 1;
        }
        let achieved = issues as f64 / 3.0;
        prop_assert!(achieved <= rate * 1.05 + 1.0, "rate {} > target {}", achieved, rate);
    }

    /// Key encoding is injective over the id space.
    #[test]
    fn key_encoding_injective(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(encode_key(a), encode_key(b));
    }
}
