//! Property-based tests for the storage engine's core invariants.

use bytes::Bytes;
use proptest::prelude::*;

use storage::compaction::SizeTieredPolicy;
use storage::merge::{merge_entries, merge_runs};
use storage::{Cell, Key, LsmConfig, LsmTree, Memtable, SsTable, TableId};

fn key(id: u64) -> Bytes {
    Bytes::from(format!("user{id:08}").into_bytes())
}

/// The pre-streaming merge implementation, preserved verbatim as the
/// differential oracle for [`merge_runs`]: pop the smallest `(key, source)`
/// pair off a heap of owned entries, reconcile duplicates with
/// [`Cell::reconcile`], collect the winners. Same tie-break contract the
/// streaming borrow-based merge must reproduce byte for byte.
mod legacy {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    use storage::{Cell, Key};

    struct HeapItem {
        key: Key,
        cell: Cell,
        source: usize,
    }

    impl PartialEq for HeapItem {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key && self.source == other.source
        }
    }
    impl Eq for HeapItem {}
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .key
                .cmp(&self.key)
                .then_with(|| other.source.cmp(&self.source))
        }
    }

    pub fn merge_collect(
        sources: Vec<Vec<(Key, Cell)>>,
        drop_tombstones: bool,
    ) -> Vec<(Key, Cell)> {
        let mut iters: Vec<_> = sources.into_iter().map(|v| v.into_iter()).collect();
        let mut heap = BinaryHeap::new();
        for (source, it) in iters.iter_mut().enumerate() {
            if let Some((key, cell)) = it.next() {
                heap.push(HeapItem { key, cell, source });
            }
        }
        let mut out = Vec::new();
        while let Some(first) = heap.pop() {
            if let Some((key, cell)) = iters[first.source].next() {
                heap.push(HeapItem {
                    key,
                    cell,
                    source: first.source,
                });
            }
            let mut key = first.key;
            let mut cell = first.cell;
            while let Some(top) = heap.peek() {
                if top.key != key {
                    break;
                }
                let dup = heap.pop().expect("peeked");
                if let Some((k, c)) = iters[dup.source].next() {
                    heap.push(HeapItem {
                        key: k,
                        cell: c,
                        source: dup.source,
                    });
                }
                cell = Cell::reconcile(cell, dup.cell);
                key = dup.key;
            }
            if !(drop_tombstones && cell.is_tombstone()) {
                out.push((key, cell));
            }
        }
        out
    }
}

/// Sorted/unique runs with duplicate keys across runs and a tombstone mix:
/// the full input space of a compaction merge.
fn arb_sorted_runs() -> impl Strategy<Value = Vec<Vec<(Key, Cell)>>> {
    prop::collection::vec(
        prop::collection::vec(
            (
                0u64..60,
                0u64..1_000,
                prop::bool::ANY,
                prop::collection::vec(any::<u8>(), 0..12),
            ),
            0..50,
        ),
        0..6,
    )
    .prop_map(|runs| {
        runs.into_iter()
            .map(|mut run| {
                // Sorted + unique per key, as the merge contract requires.
                run.sort_by_key(|(id, ..)| *id);
                run.dedup_by_key(|(id, ..)| *id);
                run.into_iter()
                    .map(|(id, ts, dead, value)| {
                        let cell = if dead {
                            Cell::tombstone(ts)
                        } else {
                            Cell::live(Bytes::from(value), ts)
                        };
                        (key(id), cell)
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    })
}

fn arb_entries(max_keys: u64) -> impl Strategy<Value = Vec<(u64, Vec<u8>, u64)>> {
    // (key id, value, timestamp)
    prop::collection::vec(
        (
            0..max_keys,
            prop::collection::vec(any::<u8>(), 0..24),
            0u64..1_000,
        ),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The memtable agrees with a BTreeMap oracle under LWW reconciliation.
    #[test]
    fn memtable_matches_lww_oracle(entries in arb_entries(50)) {
        let mut mem = Memtable::new();
        let mut oracle: std::collections::BTreeMap<Key, Cell> = Default::default();
        for (id, value, ts) in entries {
            let cell = Cell::live(Bytes::from(value), ts);
            mem.insert(key(id), cell.clone());
            oracle
                .entry(key(id))
                .and_modify(|c| *c = Cell::reconcile(c.clone(), cell.clone()))
                .or_insert(cell);
        }
        prop_assert_eq!(mem.len(), oracle.len());
        for (k, expected) in &oracle {
            prop_assert_eq!(mem.get(k), Some(expected));
        }
        // Drained entries come out sorted and complete.
        let drained = mem.drain_sorted();
        prop_assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert_eq!(drained.len(), oracle.len());
    }

    /// Cell reconciliation is commutative and associative.
    #[test]
    fn reconcile_is_commutative_associative(
        a in (0u64..50, prop::collection::vec(any::<u8>(), 0..8)),
        b in (0u64..50, prop::collection::vec(any::<u8>(), 0..8)),
        c in (0u64..50, prop::collection::vec(any::<u8>(), 0..8)),
    ) {
        let mk = |(ts, v): (u64, Vec<u8>)| Cell::live(Bytes::from(v), ts);
        let (a, b, c) = (mk(a), mk(b), mk(c));
        prop_assert_eq!(
            Cell::reconcile(a.clone(), b.clone()),
            Cell::reconcile(b.clone(), a.clone())
        );
        prop_assert_eq!(
            Cell::reconcile(Cell::reconcile(a.clone(), b.clone()), c.clone()),
            Cell::reconcile(a.clone(), Cell::reconcile(b.clone(), c.clone()))
        );
    }

    /// A k-way merge equals a BTreeMap oracle built from the same sources.
    #[test]
    fn merge_matches_oracle(
        sources in prop::collection::vec(arb_entries(40), 0..5)
    ) {
        // Make each source sorted/unique (as the merge contract requires).
        let mut oracle: std::collections::BTreeMap<Key, Cell> = Default::default();
        let mut merged_sources = Vec::new();
        for src in sources {
            let mut per: std::collections::BTreeMap<Key, Cell> = Default::default();
            for (id, value, ts) in src {
                let cell = Cell::live(Bytes::from(value), ts);
                per.entry(key(id))
                    .and_modify(|c| *c = Cell::reconcile(c.clone(), cell.clone()))
                    .or_insert(cell);
            }
            for (k, c) in &per {
                oracle
                    .entry(k.clone())
                    .and_modify(|o| *o = Cell::reconcile(o.clone(), c.clone()))
                    .or_insert_with(|| c.clone());
            }
            merged_sources.push(per.into_iter().collect::<Vec<_>>());
        }
        let merged = merge_entries(merged_sources, false);
        prop_assert_eq!(merged, oracle.into_iter().collect::<Vec<_>>());
    }

    /// Differential: the streaming borrow-based merge produces exactly what
    /// the old collect-then-merge implementation produced — same winners,
    /// same order, same tombstone handling — for both minor merges (keep
    /// tombstones) and major ones (drop them).
    #[test]
    fn streaming_merge_matches_legacy_collect_merge(
        runs in arb_sorted_runs(),
        drop_tombstones in prop::bool::ANY,
    ) {
        let views: Vec<&[(Key, Cell)]> = runs.iter().map(Vec::as_slice).collect();
        let streamed = merge_runs(&views, drop_tombstones);
        let legacy = legacy::merge_collect(runs.clone(), drop_tombstones);
        prop_assert_eq!(&streamed, &legacy);
        // The owned-entry wrapper keeps the same contract as the old entry
        // point.
        let wrapped = merge_entries(runs, drop_tombstones);
        prop_assert_eq!(wrapped, streamed);
    }

    /// Every key written into an SSTable is found; absent keys are not.
    #[test]
    fn sstable_point_lookups(ids in prop::collection::btree_set(0u64..10_000, 1..300)) {
        let entries: Vec<(Key, Cell)> = ids
            .iter()
            .map(|&i| (key(i), Cell::live(key(i), i)))
            .collect();
        let table = SsTable::build(TableId(1), entries, 256);
        for &i in &ids {
            let got = table.get(&key(i));
            prop_assert!(got.is_some(), "lost key {i}");
            prop_assert_eq!(got.unwrap().ts, i);
        }
        // A definitely-absent key (outside the id space).
        prop_assert!(table.get(b"zzzz").is_none());
        // Block structure partitions the byte count.
        let total: u64 = (0..table.block_count()).map(|b| table.block_len(b)).sum();
        prop_assert_eq!(total, table.total_bytes());
    }

    /// The LSM tree serves the newest acknowledged value for every key, no
    /// matter how writes interleave with flushes and compactions.
    #[test]
    fn lsm_read_your_writes_through_flushes(
        ops in prop::collection::vec((0u64..30, 0u64..1000u64, prop::bool::ANY), 1..150)
    ) {
        let mut tree = LsmTree::new(LsmConfig {
            block_size: 128,
            memtable_flush_bytes: 512,
            cache_bytes: 1024,
            compaction: SizeTieredPolicy { min_threshold: 2, ..Default::default() },
        });
        let mut oracle: std::collections::HashMap<u64, Cell> = Default::default();
        for (id, ts, flush) in ops {
            let cell = Cell::live(key(ts), ts);
            tree.put(key(id), cell.clone());
            oracle
                .entry(id)
                .and_modify(|c| *c = Cell::reconcile(c.clone(), cell.clone()))
                .or_insert(cell);
            if flush {
                tree.flush();
                tree.maybe_compact();
            }
        }
        for (id, expected) in &oracle {
            let got = tree.get(&key(*id)).cell;
            prop_assert_eq!(got.as_ref(), Some(expected), "key {}", id);
        }
    }

    /// WAL replay after a crash restores exactly the unflushed state.
    #[test]
    fn wal_replay_restores_memtable(
        ops in prop::collection::vec((0u64..20, 0u64..100), 1..60),
        flush_at in 0usize..60,
    ) {
        let mut tree = LsmTree::new(LsmConfig {
            memtable_flush_bytes: u64::MAX, // manual flushes only
            ..LsmConfig::default()
        });
        for (i, (id, ts)) in ops.iter().enumerate() {
            tree.put(key(*id), Cell::live(key(*ts), *ts));
            if i == flush_at {
                tree.flush();
            }
        }
        let before: Vec<_> = (0..20u64).map(|id| tree.get(&key(id)).cell).collect();
        tree.recover();
        let after: Vec<_> = (0..20u64).map(|id| tree.get(&key(id)).cell).collect();
        prop_assert_eq!(before, after);
    }

    /// Scans return sorted, deduplicated, live rows consistent with gets.
    #[test]
    fn scan_agrees_with_gets(
        ids in prop::collection::btree_set(0u64..200, 1..80),
        start in 0u64..200,
        limit in 1usize..40,
    ) {
        let mut tree = LsmTree::new(LsmConfig::default());
        for &i in &ids {
            tree.put(key(i), Cell::live(key(i), 1));
        }
        tree.flush();
        let rows = tree.scan(&key(start), limit).rows;
        prop_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "unsorted");
        prop_assert!(rows.len() <= limit);
        let expected: Vec<u64> = ids.iter().copied().filter(|&i| i >= start).take(limit).collect();
        let got: Vec<Key> = rows.iter().map(|(k, _)| k.clone()).collect();
        let want: Vec<Key> = expected.iter().map(|&i| key(i)).collect();
        prop_assert_eq!(got, want);
    }
}
