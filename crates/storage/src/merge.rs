//! K-way merge of sorted runs with last-write-wins reconciliation.
//!
//! Used by range scans (merge memtable + every SSTable) and by compaction
//! (merge input tables into one output). Sources must each be sorted by key
//! and unique per key; across sources, duplicate keys are reconciled with
//! [`Cell::reconcile`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::types::{Cell, Key};

struct HeapItem {
    key: Key,
    cell: Cell,
    source: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.source == other.source
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by key (reverse for BinaryHeap); source index only breaks
        // ties for determinism, reconciliation handles the semantics.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.source.cmp(&self.source))
    }
}

/// Merges multiple sorted `(Key, Cell)` iterators, reconciling duplicate
/// keys by last-write-wins and emitting each key exactly once, in order.
pub struct MergeIter<I: Iterator<Item = (Key, Cell)>> {
    sources: Vec<I>,
    heap: BinaryHeap<HeapItem>,
}

impl<I: Iterator<Item = (Key, Cell)>> MergeIter<I> {
    /// Build a merge over `sources`; each must yield strictly increasing keys.
    pub fn new(sources: Vec<I>) -> Self {
        let mut merged = Self {
            sources,
            heap: BinaryHeap::new(),
        };
        for i in 0..merged.sources.len() {
            merged.advance(i);
        }
        merged
    }

    fn advance(&mut self, source: usize) {
        if let Some((key, cell)) = self.sources[source].next() {
            self.heap.push(HeapItem { key, cell, source });
        }
    }
}

impl<I: Iterator<Item = (Key, Cell)>> Iterator for MergeIter<I> {
    type Item = (Key, Cell);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.heap.pop()?;
        self.advance(first.source);
        let mut key = first.key;
        let mut cell = first.cell;
        // Fold in every other source's version of the same key.
        while let Some(top) = self.heap.peek() {
            if top.key != key {
                break;
            }
            let dup = self.heap.pop().expect("peeked");
            self.advance(dup.source);
            cell = Cell::reconcile(cell, dup.cell);
            key = dup.key; // same bytes; keeps borrowck simple
        }
        Some((key, cell))
    }
}

/// Convenience: merge vectors of entries (consumed) into one reconciled,
/// sorted vector. `drop_tombstones` removes deletion markers from the output
/// (valid only for a full/major merge where no older data survives).
pub fn merge_entries(sources: Vec<Vec<(Key, Cell)>>, drop_tombstones: bool) -> Vec<(Key, Cell)> {
    let iters: Vec<_> = sources.into_iter().map(|v| v.into_iter()).collect();
    MergeIter::new(iters)
        .filter(|(_, c)| !(drop_tombstones && c.is_tombstone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn e(key: &str, val: &str, ts: u64) -> (Key, Cell) {
        (k(key), Cell::live(k(val), ts))
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let out = merge_entries(
            vec![vec![e("a", "1", 1), e("c", "3", 1)], vec![e("b", "2", 1)]],
            false,
        );
        let keys: Vec<_> = out.iter().map(|(key, _)| key.clone()).collect();
        assert_eq!(keys, vec![k("a"), k("b"), k("c")]);
    }

    #[test]
    fn duplicate_keys_reconcile_to_newest() {
        let out = merge_entries(
            vec![
                vec![e("a", "old", 1)],
                vec![e("a", "new", 2)],
                vec![e("a", "mid", 1)],
            ],
            false,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn tombstones_survive_minor_merge() {
        let out = merge_entries(
            vec![vec![e("a", "v", 1)], vec![(k("a"), Cell::tombstone(2))]],
            false,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].1.is_tombstone());
    }

    #[test]
    fn tombstones_dropped_in_major_merge() {
        let out = merge_entries(
            vec![
                vec![e("a", "v", 1), e("b", "w", 1)],
                vec![(k("a"), Cell::tombstone(2))],
            ],
            true,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, k("b"));
    }

    #[test]
    fn empty_sources_are_fine() {
        let out = merge_entries(vec![vec![], vec![e("a", "1", 1)], vec![]], false);
        assert_eq!(out.len(), 1);
        assert_eq!(merge_entries(Vec::new(), false).len(), 0);
    }

    #[test]
    fn matches_btreemap_oracle_on_fixed_case() {
        use std::collections::BTreeMap;
        let sources = vec![
            vec![e("a", "a1", 3), e("b", "b1", 1), e("d", "d1", 5)],
            vec![e("a", "a2", 1), e("c", "c2", 2), e("d", "d2", 9)],
            vec![e("b", "b3", 7), e("e", "e3", 1)],
        ];
        let mut oracle: BTreeMap<Key, Cell> = BTreeMap::new();
        for src in &sources {
            for (key, cell) in src {
                oracle
                    .entry(key.clone())
                    .and_modify(|c| *c = Cell::reconcile(c.clone(), cell.clone()))
                    .or_insert_with(|| cell.clone());
            }
        }
        let merged = merge_entries(sources, false);
        let oracle_vec: Vec<_> = oracle.into_iter().collect();
        assert_eq!(merged, oracle_vec);
    }
}
