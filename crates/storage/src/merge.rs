//! K-way merge of sorted runs with last-write-wins reconciliation.
//!
//! Used by range scans (merge memtable + every SSTable) and by compaction
//! (merge input tables into one output). Sources must each be sorted by key
//! and unique per key; across sources, duplicate keys are reconciled with
//! [`Cell::newer`].
//!
//! The merge is *streaming over borrows*: [`MergeRef`] yields `(&Key, &Cell)`
//! straight out of the source runs, so neither compaction nor a range scan
//! ever materialises owned copies of its inputs. Only the winner of each key
//! is cloned — and with `Bytes`-backed keys/values a clone is a refcount
//! bump, never a byte copy. Losing duplicate versions are skipped without
//! touching their payloads at all.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::types::{Cell, Key};

struct RefItem<'a> {
    key: &'a Key,
    cell: &'a Cell,
    source: usize,
}

impl PartialEq for RefItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.source == other.source
    }
}
impl Eq for RefItem<'_> {}
impl PartialOrd for RefItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by key (reverse for BinaryHeap); source index only breaks
        // ties for determinism, reconciliation handles the semantics.
        other
            .key
            .cmp(self.key)
            .then_with(|| other.source.cmp(&self.source))
    }
}

/// Merges multiple sorted iterators of borrowed `(&Key, &Cell)` entries,
/// reconciling duplicate keys by last-write-wins and yielding each key
/// exactly once, in order, still by reference.
pub struct MergeRef<'a, I: Iterator<Item = (&'a Key, &'a Cell)>> {
    sources: Vec<I>,
    heap: BinaryHeap<RefItem<'a>>,
}

impl<'a, I: Iterator<Item = (&'a Key, &'a Cell)>> MergeRef<'a, I> {
    /// Build a merge over `sources`; each must yield strictly increasing keys.
    pub fn new(sources: Vec<I>) -> Self {
        let mut merged = Self {
            heap: BinaryHeap::with_capacity(sources.len()),
            sources,
        };
        for i in 0..merged.sources.len() {
            merged.advance(i);
        }
        merged
    }

    fn advance(&mut self, source: usize) {
        if let Some((key, cell)) = self.sources[source].next() {
            self.heap.push(RefItem { key, cell, source });
        }
    }
}

impl<'a, I: Iterator<Item = (&'a Key, &'a Cell)>> Iterator for MergeRef<'a, I> {
    type Item = (&'a Key, &'a Cell);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.heap.pop()?;
        self.advance(first.source);
        let key = first.key;
        let mut cell = first.cell;
        // Fold in every other source's version of the same key; losers are
        // dropped by reference without ever being cloned.
        while let Some(top) = self.heap.peek() {
            if top.key != key {
                break;
            }
            let Some(dup) = self.heap.pop() else { break };
            self.advance(dup.source);
            cell = Cell::newer(cell, dup.cell);
        }
        Some((key, cell))
    }
}

fn pair_refs(entry: &(Key, Cell)) -> (&Key, &Cell) {
    (&entry.0, &entry.1)
}

/// Streaming merge of borrowed sorted runs into one reconciled, sorted
/// vector. Clones (refcount-bumps) only the surviving winner of each key;
/// the input runs are left untouched. `drop_tombstones` removes deletion
/// markers from the output (valid only for a full/major merge where no older
/// data survives).
pub fn merge_runs(runs: &[&[(Key, Cell)]], drop_tombstones: bool) -> Vec<(Key, Cell)> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let sources: Vec<_> = runs.iter().map(|r| r.iter().map(pair_refs)).collect();
    let mut out = Vec::with_capacity(total);
    for (key, cell) in MergeRef::new(sources) {
        if drop_tombstones && cell.is_tombstone() {
            continue;
        }
        out.push((key.clone(), cell.clone()));
    }
    out
}

/// Convenience: merge vectors of entries into one reconciled, sorted vector.
/// Thin wrapper over [`merge_runs`]; kept for callers that already own their
/// runs (read repair reconciling replica result sets).
pub fn merge_entries(sources: Vec<Vec<(Key, Cell)>>, drop_tombstones: bool) -> Vec<(Key, Cell)> {
    let views: Vec<&[(Key, Cell)]> = sources.iter().map(Vec::as_slice).collect();
    merge_runs(&views, drop_tombstones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn e(key: &str, val: &str, ts: u64) -> (Key, Cell) {
        (k(key), Cell::live(k(val), ts))
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let out = merge_entries(
            vec![vec![e("a", "1", 1), e("c", "3", 1)], vec![e("b", "2", 1)]],
            false,
        );
        let keys: Vec<_> = out.iter().map(|(key, _)| key.clone()).collect();
        assert_eq!(keys, vec![k("a"), k("b"), k("c")]);
    }

    #[test]
    fn duplicate_keys_reconcile_to_newest() {
        let out = merge_entries(
            vec![
                vec![e("a", "old", 1)],
                vec![e("a", "new", 2)],
                vec![e("a", "mid", 1)],
            ],
            false,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn tombstones_survive_minor_merge() {
        let out = merge_entries(
            vec![vec![e("a", "v", 1)], vec![(k("a"), Cell::tombstone(2))]],
            false,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].1.is_tombstone());
    }

    #[test]
    fn tombstones_dropped_in_major_merge() {
        let out = merge_entries(
            vec![
                vec![e("a", "v", 1), e("b", "w", 1)],
                vec![(k("a"), Cell::tombstone(2))],
            ],
            true,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, k("b"));
    }

    #[test]
    fn empty_sources_are_fine() {
        let out = merge_entries(vec![vec![], vec![e("a", "1", 1)], vec![]], false);
        assert_eq!(out.len(), 1);
        assert_eq!(merge_entries(Vec::new(), false).len(), 0);
        assert_eq!(merge_runs(&[], false).len(), 0);
    }

    #[test]
    fn merge_runs_output_shares_input_storage() {
        // The streaming merge must not deep-copy payloads: the winner in the
        // output is the *same* allocation as the winning input entry.
        let runs = [vec![e("a", "old", 1)], vec![e("a", "new", 2)]];
        let views: Vec<&[(Key, Cell)]> = runs.iter().map(Vec::as_slice).collect();
        let out = merge_runs(&views, false);
        assert_eq!(out.len(), 1);
        let winner = runs[1][0].1.value.as_ref().map(|v| v.as_ref().as_ptr());
        let got = out[0].1.value.as_ref().map(|v| v.as_ref().as_ptr());
        assert_eq!(winner, got, "winner value should be refcount-shared");
        // The emitted key is the first-popped source's copy (same bytes).
        assert_eq!(out[0].0.as_ref().as_ptr(), runs[0][0].0.as_ref().as_ptr());
    }

    #[test]
    fn merge_ref_yields_borrowed_winners_in_order() {
        let runs = [
            vec![e("a", "a1", 3), e("c", "c1", 1)],
            vec![e("a", "a2", 1), e("b", "b2", 2)],
        ];
        let sources: Vec<_> = runs.iter().map(|r| r.iter().map(pair_refs)).collect();
        let got: Vec<_> = MergeRef::new(sources)
            .map(|(key, cell)| (key.clone(), cell.clone()))
            .collect();
        assert_eq!(got, vec![e("a", "a1", 3), e("b", "b2", 2), e("c", "c1", 1)]);
    }

    #[test]
    fn matches_btreemap_oracle_on_fixed_case() {
        use std::collections::BTreeMap;
        let sources = vec![
            vec![e("a", "a1", 3), e("b", "b1", 1), e("d", "d1", 5)],
            vec![e("a", "a2", 1), e("c", "c2", 2), e("d", "d2", 9)],
            vec![e("b", "b3", 7), e("e", "e3", 1)],
        ];
        let mut oracle: BTreeMap<Key, Cell> = BTreeMap::new();
        for src in &sources {
            for (key, cell) in src {
                oracle
                    .entry(key.clone())
                    .and_modify(|c| *c = Cell::reconcile(c.clone(), cell.clone()))
                    .or_insert_with(|| cell.clone());
            }
        }
        let merged = merge_entries(sources, false);
        let oracle_vec: Vec<_> = oracle.into_iter().collect();
        assert_eq!(merged, oracle_vec);
    }
}
