//! The I/O-plan contract between the storage engine and the simulator.
//!
//! Storage operations are computed functionally and report what they *would*
//! have done to a disk. The database layers translate each [`IoPlan`] into
//! simulated disk/CPU time on the owning node. Keeping this a plain data
//! structure keeps `storage` free of any simulation dependency and makes the
//! plans directly assertable in tests.

/// One unit of I/O performed by a storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Served from the memtable; no device access.
    MemtableHit,
    /// Served from the block cache; no device access.
    CacheHit {
        /// Bytes read from cache (for CPU-cost accounting).
        bytes: u64,
    },
    /// A random disk read: one positioning cost plus a transfer.
    DiskRead {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A sequential disk read (follow-on blocks of a scan or compaction).
    DiskSeqRead {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A sequential disk write (flush, compaction output, log segment).
    DiskSeqWrite {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A bloom-filter check that skipped a table (CPU only; recorded so
    /// tests can assert bloom effectiveness).
    BloomSkip,
}

/// An ordered record of the I/O a storage operation performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoPlan {
    ops: Vec<IoOp>,
}

impl IoPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one I/O op.
    pub fn push(&mut self, op: IoOp) {
        self.ops.push(op);
    }

    /// Append all ops from another plan.
    pub fn extend(&mut self, other: IoPlan) {
        self.ops.extend(other.ops);
    }

    /// The recorded ops in execution order.
    pub fn ops(&self) -> &[IoOp] {
        &self.ops
    }

    /// Number of random disk reads (each pays a positioning cost).
    pub fn random_reads(&self) -> u32 {
        self.ops
            .iter()
            .filter(|o| matches!(o, IoOp::DiskRead { .. }))
            .count() as u32
    }

    /// Total bytes that must come off the disk (random + sequential reads).
    pub fn disk_read_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                IoOp::DiskRead { bytes } | IoOp::DiskSeqRead { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes written to disk.
    pub fn disk_write_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                IoOp::DiskSeqWrite { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Bytes served from the block cache.
    pub fn cache_hit_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                IoOp::CacheHit { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Count of bloom-filter skips.
    pub fn bloom_skips(&self) -> u32 {
        self.ops
            .iter()
            .filter(|o| matches!(o, IoOp::BloomSkip))
            .count() as u32
    }

    /// True when the operation never left memory.
    pub fn is_memory_only(&self) -> bool {
        self.disk_read_bytes() == 0 && self.disk_write_bytes() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_kind() {
        let mut p = IoPlan::new();
        p.push(IoOp::MemtableHit);
        p.push(IoOp::CacheHit { bytes: 100 });
        p.push(IoOp::DiskRead { bytes: 4096 });
        p.push(IoOp::DiskSeqRead { bytes: 8192 });
        p.push(IoOp::DiskSeqWrite { bytes: 1000 });
        p.push(IoOp::BloomSkip);
        assert_eq!(p.random_reads(), 1);
        assert_eq!(p.disk_read_bytes(), 4096 + 8192);
        assert_eq!(p.disk_write_bytes(), 1000);
        assert_eq!(p.cache_hit_bytes(), 100);
        assert_eq!(p.bloom_skips(), 1);
        assert!(!p.is_memory_only());
    }

    #[test]
    fn memory_only_detection() {
        let mut p = IoPlan::new();
        p.push(IoOp::MemtableHit);
        p.push(IoOp::CacheHit { bytes: 64 });
        assert!(p.is_memory_only());
    }

    #[test]
    fn extend_concatenates_in_order() {
        let mut a = IoPlan::new();
        a.push(IoOp::MemtableHit);
        let mut b = IoPlan::new();
        b.push(IoOp::BloomSkip);
        a.extend(b);
        assert_eq!(a.ops(), &[IoOp::MemtableHit, IoOp::BloomSkip]);
    }
}
