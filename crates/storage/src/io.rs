//! The I/O-plan contract between the storage engine and the simulator.
//!
//! Storage operations are computed functionally and report what they *would*
//! have done to a disk. The database layers translate each [`IoPlan`] into
//! simulated disk/CPU time on the owning node. Keeping this a plain data
//! structure keeps `storage` free of any simulation dependency and makes the
//! plans directly assertable in tests.

/// One unit of I/O performed by a storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoOp {
    /// Served from the memtable; no device access. Also the default — the
    /// zero-cost filler for [`IoPlan`]'s unused inline slots.
    #[default]
    MemtableHit,
    /// Served from the block cache; no device access.
    CacheHit {
        /// Bytes read from cache (for CPU-cost accounting).
        bytes: u64,
    },
    /// A random disk read: one positioning cost plus a transfer.
    DiskRead {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A sequential disk read (follow-on blocks of a scan or compaction).
    DiskSeqRead {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A sequential disk write (flush, compaction output, log segment).
    DiskSeqWrite {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A bloom-filter check that skipped a table (CPU only; recorded so
    /// tests can assert bloom effectiveness).
    BloomSkip,
}

/// Ops recorded inline before spilling to the heap. A point read touches at
/// most one op per run plus the memtable, and steady-state run counts sit
/// below the size-tiered `min_threshold` bucket width, so plans of hot
/// operations never allocate.
const INLINE_OPS: usize = 12;

/// An ordered record of the I/O a storage operation performed.
///
/// Storage is on the per-event hot path of both cluster models and a plan is
/// built for *every* replica read, so the op list is a small inline buffer
/// that spills to a `Vec` only for long scans and compactions — the common
/// point read records its ops without touching the allocator.
#[derive(Debug, Clone, Default)]
pub struct IoPlan {
    inline: [IoOp; INLINE_OPS],
    len: usize,
    spill: Vec<IoOp>,
}

impl PartialEq for IoPlan {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}
impl Eq for IoPlan {}

impl IoPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one I/O op.
    pub fn push(&mut self, op: IoOp) {
        if self.len < INLINE_OPS {
            self.inline[self.len] = op;
        } else {
            self.spill.push(op);
        }
        self.len += 1;
    }

    /// Append all ops from another plan.
    pub fn extend(&mut self, other: IoPlan) {
        for op in other.iter() {
            self.push(*op);
        }
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The recorded ops in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &IoOp> {
        self.inline[..self.len.min(INLINE_OPS)]
            .iter()
            .chain(self.spill.iter())
    }

    /// Number of random disk reads (each pays a positioning cost).
    pub fn random_reads(&self) -> u32 {
        self.iter()
            .filter(|o| matches!(o, IoOp::DiskRead { .. }))
            .count() as u32
    }

    /// Total bytes that must come off the disk (random + sequential reads).
    pub fn disk_read_bytes(&self) -> u64 {
        self.iter()
            .map(|o| match o {
                IoOp::DiskRead { bytes } | IoOp::DiskSeqRead { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes written to disk.
    pub fn disk_write_bytes(&self) -> u64 {
        self.iter()
            .map(|o| match o {
                IoOp::DiskSeqWrite { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Bytes served from the block cache.
    pub fn cache_hit_bytes(&self) -> u64 {
        self.iter()
            .map(|o| match o {
                IoOp::CacheHit { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Count of bloom-filter skips.
    pub fn bloom_skips(&self) -> u32 {
        self.iter().filter(|o| matches!(o, IoOp::BloomSkip)).count() as u32
    }

    /// True when the operation never left memory.
    pub fn is_memory_only(&self) -> bool {
        self.disk_read_bytes() == 0 && self.disk_write_bytes() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_kind() {
        let mut p = IoPlan::new();
        p.push(IoOp::MemtableHit);
        p.push(IoOp::CacheHit { bytes: 100 });
        p.push(IoOp::DiskRead { bytes: 4096 });
        p.push(IoOp::DiskSeqRead { bytes: 8192 });
        p.push(IoOp::DiskSeqWrite { bytes: 1000 });
        p.push(IoOp::BloomSkip);
        assert_eq!(p.random_reads(), 1);
        assert_eq!(p.disk_read_bytes(), 4096 + 8192);
        assert_eq!(p.disk_write_bytes(), 1000);
        assert_eq!(p.cache_hit_bytes(), 100);
        assert_eq!(p.bloom_skips(), 1);
        assert!(!p.is_memory_only());
    }

    #[test]
    fn memory_only_detection() {
        let mut p = IoPlan::new();
        p.push(IoOp::MemtableHit);
        p.push(IoOp::CacheHit { bytes: 64 });
        assert!(p.is_memory_only());
    }

    #[test]
    fn extend_concatenates_in_order() {
        let mut a = IoPlan::new();
        a.push(IoOp::MemtableHit);
        let mut b = IoPlan::new();
        b.push(IoOp::BloomSkip);
        a.extend(b);
        let ops: Vec<IoOp> = a.iter().copied().collect();
        assert_eq!(ops, vec![IoOp::MemtableHit, IoOp::BloomSkip]);
    }

    #[test]
    fn spills_past_inline_capacity() {
        let mut p = IoPlan::new();
        for i in 0..40u64 {
            p.push(IoOp::DiskSeqRead { bytes: i });
        }
        assert_eq!(p.len(), 40);
        let ops: Vec<IoOp> = p.iter().copied().collect();
        assert_eq!(ops.len(), 40);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(*op, IoOp::DiskSeqRead { bytes: i as u64 });
        }
        assert_eq!(p.disk_read_bytes(), (0..40).sum::<u64>());

        // Equality compares logical op sequences, not representation.
        let mut q = IoPlan::new();
        for i in 0..40u64 {
            q.push(IoOp::DiskSeqRead { bytes: i });
        }
        assert_eq!(p, q);
        q.push(IoOp::BloomSkip);
        assert_ne!(p, q);
    }
}
