//! The write-ahead / commit log.
//!
//! Every mutation is appended here before it touches the memtable, and the
//! log is replayed after a crash to rebuild memtable state. Both databases in
//! the paper acknowledge writes after the log *append* (group/periodic sync),
//! not after the sync itself — the mechanism behind the paper's flat write
//! latencies — so the log tracks synced vs unsynced bytes separately and the
//! simulation layer charges disk bandwidth for syncs in the background.

use std::collections::VecDeque;

use crate::types::{entry_encoded_len, Cell, Key};

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Sequence number, monotonically increasing from 1.
    pub seq: u64,
    /// The mutated key.
    pub key: Key,
    /// The new cell (live or tombstone).
    pub cell: Cell,
}

/// An append-only mutation log with replay and truncation.
///
/// Entries live in a `VecDeque`: appends push to the back and truncation
/// after a flush pops the covered prefix off the front in O(removed),
/// instead of the `retain` scan that walked every surviving entry on each
/// flush.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    entries: VecDeque<WalEntry>,
    next_seq: u64,
    bytes: u64,
    unsynced_bytes: u64,
    truncated_through: u64,
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        Self {
            entries: VecDeque::new(),
            next_seq: 1,
            bytes: 0,
            unsynced_bytes: 0,
            truncated_through: 0,
        }
    }

    /// Append a mutation; returns the assigned sequence number and the
    /// encoded size of the record (for bandwidth accounting). Takes the key
    /// and cell by reference: the log's copy is a refcount bump on the
    /// `Bytes` payloads, and the caller keeps its originals for the memtable
    /// insert without a second clone at the call site.
    pub fn append(&mut self, key: &Key, cell: &Cell) -> (u64, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let len = entry_encoded_len(key, cell) + 8;
        self.bytes += len;
        self.unsynced_bytes += len;
        self.entries.push_back(WalEntry {
            seq,
            key: key.clone(),
            cell: cell.clone(),
        });
        (seq, len)
    }

    /// Mark all appended bytes as durably synced; returns how many bytes the
    /// sync had to push (what a periodic-fsync thread would write).
    pub fn sync(&mut self) -> u64 {
        std::mem::take(&mut self.unsynced_bytes)
    }

    /// Bytes appended but not yet synced.
    pub fn unsynced_bytes(&self) -> u64 {
        self.unsynced_bytes
    }

    /// Total bytes ever appended.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of live (non-truncated) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest sequence number assigned so far (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Drop entries with `seq <= through` — called after the covering
    /// memtable flush makes them redundant. Sequence numbers are assigned in
    /// append order, so the covered entries are exactly a front prefix.
    pub fn truncate_through(&mut self, through: u64) {
        while self.entries.front().is_some_and(|e| e.seq <= through) {
            self.entries.pop_front();
        }
        self.truncated_through = self.truncated_through.max(through);
    }

    /// Replay all live entries in sequence order (crash recovery).
    pub fn replay(&self) -> impl Iterator<Item = &WalEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::Memtable;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn append_assigns_increasing_seqs() {
        let mut w = WriteAheadLog::new();
        let (s1, len1) = w.append(&k("a"), &Cell::live(k("1"), 1));
        let (s2, _) = w.append(&k("b"), &Cell::live(k("2"), 2));
        assert_eq!((s1, s2), (1, 2));
        assert!(len1 > 0);
        assert_eq!(w.last_seq(), 2);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn sync_drains_unsynced_bytes() {
        let mut w = WriteAheadLog::new();
        w.append(&k("a"), &Cell::live(k("1"), 1));
        let pending = w.unsynced_bytes();
        assert!(pending > 0);
        assert_eq!(w.sync(), pending);
        assert_eq!(w.unsynced_bytes(), 0);
        assert_eq!(w.sync(), 0);
        // Total bytes unaffected by sync.
        assert_eq!(w.bytes(), pending);
    }

    #[test]
    fn truncate_drops_flushed_prefix() {
        let mut w = WriteAheadLog::new();
        for i in 0..5u64 {
            w.append(&k(&format!("k{i}")), &Cell::live(k("v"), i));
        }
        w.truncate_through(3);
        let seqs: Vec<_> = w.replay().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn replay_rebuilds_memtable_state() {
        let mut w = WriteAheadLog::new();
        let mut m = Memtable::new();
        for (key, val, ts) in [("a", "1", 1u64), ("b", "2", 2), ("a", "3", 3)] {
            let cell = Cell::live(k(val), ts);
            w.append(&k(key), &cell);
            m.insert(k(key), cell);
        }
        // Crash: rebuild a fresh memtable from the log.
        let mut rebuilt = Memtable::new();
        for e in w.replay() {
            rebuilt.insert(e.key.clone(), e.cell.clone());
        }
        assert_eq!(rebuilt.get(b"a"), m.get(b"a"));
        assert_eq!(rebuilt.get(b"b"), m.get(b"b"));
        assert_eq!(rebuilt.len(), m.len());
    }

    #[test]
    fn replay_is_idempotent() {
        let mut w = WriteAheadLog::new();
        w.append(&k("a"), &Cell::live(k("1"), 1));
        w.append(&k("a"), &Cell::live(k("2"), 2));
        let mut m = Memtable::new();
        for _ in 0..3 {
            for e in w.replay() {
                m.insert(e.key.clone(), e.cell.clone());
            }
        }
        assert_eq!(m.get(b"a").unwrap().value.as_deref(), Some(&b"2"[..]));
        assert_eq!(m.len(), 1);
    }
}
