//! Core data types shared by every storage component.

use bytes::Bytes;

/// A row key. Lexicographic byte order is the storage order everywhere,
/// which is what both HBase and an order-preserving-partitioned Cassandra
/// give the paper's scan workloads.
pub type Key = Bytes;

/// A row value (YCSB writes a single opaque blob per record).
pub type Value = Bytes;

/// A write timestamp in microseconds. Both stores use last-write-wins
/// reconciliation keyed on this.
pub type Timestamp = u64;

/// A timestamped cell: either a live value or a tombstone. The newest
/// timestamp wins during reconciliation; ties break toward the tombstone and
/// then the lexicographically larger value, matching Cassandra's rule so
/// reconciliation is commutative and deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The value, or `None` for a tombstone (deletion marker).
    pub value: Option<Value>,
    /// Write timestamp used for last-write-wins.
    pub ts: Timestamp,
}

impl Cell {
    /// A live cell.
    pub fn live(value: Value, ts: Timestamp) -> Self {
        Self {
            value: Some(value),
            ts,
        }
    }

    /// A tombstone.
    pub fn tombstone(ts: Timestamp) -> Self {
        Self { value: None, ts }
    }

    /// True when this cell is a deletion marker.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Approximate on-disk footprint of the cell in bytes: the value plus a
    /// fixed per-cell overhead (timestamp + flags).
    pub fn encoded_len(&self) -> u64 {
        self.value.as_ref().map_or(0, |v| v.len() as u64) + 9
    }

    /// Last-write-wins reconciliation without taking ownership: returns a
    /// reference to the winner of two versions of the same key. The hot
    /// read/merge paths fold candidates with this and clone only the final
    /// winner, so losers never cost a refcount touch.
    pub fn newer<'c>(a: &'c Cell, b: &'c Cell) -> &'c Cell {
        match a.ts.cmp(&b.ts) {
            std::cmp::Ordering::Greater => a,
            std::cmp::Ordering::Less => b,
            std::cmp::Ordering::Equal => {
                // Deterministic tie-break: tombstone beats value; otherwise
                // the larger value wins.
                match (&a.value, &b.value) {
                    (None, _) => a,
                    (_, None) => b,
                    (Some(va), Some(vb)) => {
                        if va >= vb {
                            a
                        } else {
                            b
                        }
                    }
                }
            }
        }
    }

    /// Last-write-wins reconciliation. Returns the winner of two versions of
    /// the same key. Commutative: `reconcile(a, b) == reconcile(b, a)`.
    pub fn reconcile(a: Cell, b: Cell) -> Cell {
        if std::ptr::eq(Cell::newer(&a, &b), &a) {
            a
        } else {
            b
        }
    }
}

/// Approximate encoded size of one key/cell entry (key + cell + length
/// prefixes), used for memtable thresholds and block layout.
pub fn entry_encoded_len(key: &Key, cell: &Cell) -> u64 {
    key.len() as u64 + cell.encoded_len() + 8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn newest_timestamp_wins() {
        let old = Cell::live(k("old"), 10);
        let new = Cell::live(k("new"), 20);
        assert_eq!(Cell::reconcile(old.clone(), new.clone()), new);
        assert_eq!(Cell::reconcile(new.clone(), old), new);
    }

    #[test]
    fn tombstone_beats_value_on_tie() {
        let v = Cell::live(k("v"), 10);
        let t = Cell::tombstone(10);
        assert_eq!(Cell::reconcile(v.clone(), t.clone()), t);
        assert_eq!(Cell::reconcile(t.clone(), v), t);
    }

    #[test]
    fn value_tie_breaks_deterministically() {
        let a = Cell::live(k("aaa"), 5);
        let b = Cell::live(k("zzz"), 5);
        assert_eq!(Cell::reconcile(a.clone(), b.clone()), b);
        assert_eq!(Cell::reconcile(b.clone(), a), b);
    }

    #[test]
    fn reconcile_is_idempotent() {
        let a = Cell::live(k("x"), 3);
        assert_eq!(Cell::reconcile(a.clone(), a.clone()), a);
    }

    #[test]
    fn newer_agrees_with_reconcile() {
        let cases = [
            (Cell::live(k("old"), 10), Cell::live(k("new"), 20)),
            (Cell::live(k("v"), 10), Cell::tombstone(10)),
            (Cell::live(k("aaa"), 5), Cell::live(k("zzz"), 5)),
            (Cell::tombstone(3), Cell::tombstone(3)),
        ];
        for (a, b) in cases {
            assert_eq!(
                Cell::newer(&a, &b).clone(),
                Cell::reconcile(a.clone(), b.clone())
            );
            assert_eq!(
                Cell::newer(&b, &a).clone(),
                Cell::reconcile(b.clone(), a.clone())
            );
        }
    }

    #[test]
    fn tombstone_flags() {
        assert!(Cell::tombstone(1).is_tombstone());
        assert!(!Cell::live(k("x"), 1).is_tombstone());
    }

    #[test]
    fn encoded_lengths_scale_with_payload() {
        let small = Cell::live(k("x"), 1);
        let big = Cell::live(Bytes::from(vec![0u8; 1000]), 1);
        assert!(big.encoded_len() > small.encoded_len());
        assert_eq!(big.encoded_len(), 1009);
        assert_eq!(Cell::tombstone(1).encoded_len(), 9);
        assert_eq!(entry_encoded_len(&k("key"), &small), 3 + 10 + 8);
    }
}
