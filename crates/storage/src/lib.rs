//! # storage — shared LSM storage-engine components
//!
//! Both databases in the reproduced paper (HBase and Cassandra) are
//! log-structured merge stores: updates land in a durable log and an
//! in-memory table, immutable sorted runs are flushed to disk, and background
//! compaction merges runs. This crate implements those shared components
//! once, functionally for real:
//!
//! * [`types`] — keys, values, timestamped cells, tombstones.
//! * [`memtable`] — the in-memory sorted write buffer.
//! * [`wal`] — the write-ahead/commit log with replay.
//! * [`bloom`] — a bloom filter to skip sorted runs on reads.
//! * [`sstable`] — immutable sorted runs with block structure and an index.
//! * [`cache`] — an O(1) LRU block cache with hit/miss accounting.
//! * [`merge`] — k-way merge with last-write-wins reconciliation.
//! * [`compaction`] — size-tiered compaction policy.
//! * [`lsm`] — the assembled LSM tree.
//!
//! ## The I/O-plan contract
//!
//! This crate knows nothing about simulated time. Every operation that could
//! touch a disk returns an [`io::IoPlan`] describing the cache hits, random
//! reads, and sequential transfers it performed. The database crates
//! (`hstore`, `cstore`) charge those plans against their nodes' simulated
//! disks, so performance *emerges* from real data layout (how many runs a
//! read touches, how effective the bloom filters and cache are) rather than
//! from hard-coded latency constants.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod bloom;
pub mod cache;
pub mod compaction;
pub mod io;
pub mod lsm;
pub mod memtable;
pub mod merge;
pub mod sstable;
pub mod types;
pub mod wal;

pub use api::{Completion, OpError, OpKind, OpResult, StoreOp};
pub use cache::BlockCache;
pub use io::{IoOp, IoPlan};
pub use lsm::{LsmConfig, LsmTree};
pub use memtable::Memtable;
pub use sstable::{SsTable, TableId};
pub use types::{Cell, Key, Timestamp, Value};
pub use wal::WriteAheadLog;
