//! The client-facing operation API shared by both database analogs.
//!
//! The YCSB driver speaks this vocabulary to either store; the stores
//! complete operations asynchronously (in virtual time) by emitting
//! [`Completion`]s keyed by the driver's token.

use crate::types::{Cell, Key, Value};

/// A client operation submitted to a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp {
    /// Insert a new record.
    Insert {
        /// Record key.
        key: Key,
        /// Record value.
        value: Value,
    },
    /// Overwrite an existing record.
    Update {
        /// Record key.
        key: Key,
        /// New value.
        value: Value,
    },
    /// Point read.
    Read {
        /// Record key.
        key: Key,
    },
    /// Range scan of up to `limit` rows starting at `start`.
    Scan {
        /// First key of the range.
        start: Key,
        /// Maximum rows to return.
        limit: usize,
    },
    /// Delete a record.
    Delete {
        /// Record key.
        key: Key,
    },
}

impl StoreOp {
    /// The operation's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            StoreOp::Insert { .. } => OpKind::Insert,
            StoreOp::Update { .. } => OpKind::Update,
            StoreOp::Read { .. } => OpKind::Read,
            StoreOp::Scan { .. } => OpKind::Scan,
            StoreOp::Delete { .. } => OpKind::Delete,
        }
    }

    /// The key the operation targets (scan: its start key).
    pub fn key(&self) -> &Key {
        match self {
            StoreOp::Insert { key, .. }
            | StoreOp::Update { key, .. }
            | StoreOp::Read { key }
            | StoreOp::Delete { key } => key,
            StoreOp::Scan { start, .. } => start,
        }
    }
}

/// Operation kinds, including the client-composed read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Insert a new record.
    Insert,
    /// Overwrite an existing record.
    Update,
    /// Point read.
    Read,
    /// Range scan.
    Scan,
    /// Delete.
    Delete,
    /// Read-modify-write (a read followed by an update, measured together).
    ReadModifyWrite,
}

impl OpKind {
    /// All kinds, in display order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Insert,
        OpKind::Update,
        OpKind::Read,
        OpKind::Scan,
        OpKind::Delete,
        OpKind::ReadModifyWrite,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Insert => "INSERT",
            OpKind::Update => "UPDATE",
            OpKind::Read => "READ",
            OpKind::Scan => "SCAN",
            OpKind::Delete => "DELETE",
            OpKind::ReadModifyWrite => "RMW",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why an operation failed.
///
/// The taxonomy is what a retrying client needs: the first three variants
/// are *transient* server-side conditions (a later attempt may land on a
/// recovered node, a failed-over region, or a restored quorum), while
/// [`OpError::Deadline`] is the *terminal* client-side verdict a resilience
/// layer reports once an operation's time budget is exhausted — retrying it
/// would be retrying the deadline itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// Not enough live replicas to satisfy the consistency level.
    Unavailable,
    /// The responsible server is down and nothing has taken over.
    ServerDown,
    /// The request stayed incomplete past the store's RPC timeout (the
    /// replica or server it was routed to stopped answering mid-flight).
    Timeout,
    /// The client-side per-operation deadline budget was exhausted across
    /// all attempts. Emitted by the driver's resilience layer, never by a
    /// store.
    Deadline,
    /// The store's admission controller shed the request before queuing it:
    /// the server is saturated and chose a fast-fail over an unbounded
    /// queue. Retryable — backing off and re-attempting may land in a less
    /// loaded interval.
    Overloaded,
}

impl OpError {
    /// True when a client may reasonably re-attempt the operation: the
    /// failure is a transient server-side condition rather than a verdict.
    pub fn is_retryable(self) -> bool {
        match self {
            OpError::Unavailable | OpError::ServerDown | OpError::Timeout | OpError::Overloaded => {
                true
            }
            OpError::Deadline => false,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpError::Unavailable => "unavailable",
            OpError::ServerDown => "server-down",
            OpError::Timeout => "timeout",
            OpError::Deadline => "deadline",
            OpError::Overloaded => "overloaded",
        }
    }
}

/// The outcome a store reports for one operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    /// A write (insert/update/delete) was acknowledged; carries the version
    /// timestamp the store assigned (Cassandra clients know their write
    /// timestamps; the driver uses it for staleness measurement).
    Written {
        /// Version timestamp assigned to the write.
        ts: crate::types::Timestamp,
    },
    /// A point read completed; `None` means not found (or tombstoned).
    Value(Option<Cell>),
    /// A scan completed with these rows.
    Rows(Vec<(Key, Cell)>),
    /// The operation failed.
    Error(OpError),
}

impl OpResult {
    /// True unless the outcome is an error.
    pub fn is_ok(&self) -> bool {
        !matches!(self, OpResult::Error(_))
    }
}

/// A finished operation, delivered back to the driver.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The driver's token from `submit`.
    pub token: u64,
    /// What happened.
    pub result: OpResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn kind_mapping() {
        assert_eq!(StoreOp::Read { key: k("a") }.kind(), OpKind::Read);
        assert_eq!(
            StoreOp::Insert {
                key: k("a"),
                value: k("v")
            }
            .kind(),
            OpKind::Insert
        );
        assert_eq!(
            StoreOp::Scan {
                start: k("a"),
                limit: 10
            }
            .kind(),
            OpKind::Scan
        );
    }

    #[test]
    fn key_accessor_covers_all_variants() {
        for op in [
            StoreOp::Insert {
                key: k("x"),
                value: k("v"),
            },
            StoreOp::Update {
                key: k("x"),
                value: k("v"),
            },
            StoreOp::Read { key: k("x") },
            StoreOp::Scan {
                start: k("x"),
                limit: 1,
            },
            StoreOp::Delete { key: k("x") },
        ] {
            assert_eq!(op.key(), &k("x"));
        }
    }

    #[test]
    fn result_ok_flag() {
        assert!(OpResult::Written { ts: 1 }.is_ok());
        assert!(OpResult::Value(None).is_ok());
        assert!(!OpResult::Error(OpError::Unavailable).is_ok());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OpKind::ReadModifyWrite.label(), "RMW");
        assert_eq!(OpKind::Read.to_string(), "READ");
        assert_eq!(OpKind::ALL.len(), 6);
    }

    #[test]
    fn transient_errors_are_retryable_and_deadline_is_terminal() {
        assert!(OpError::Unavailable.is_retryable());
        assert!(OpError::ServerDown.is_retryable());
        assert!(OpError::Timeout.is_retryable());
        assert!(OpError::Overloaded.is_retryable());
        assert!(!OpError::Deadline.is_retryable());
        assert_eq!(OpError::Timeout.label(), "timeout");
        assert_eq!(OpError::Deadline.label(), "deadline");
        assert_eq!(OpError::Overloaded.label(), "overloaded");
    }
}
