//! The assembled LSM tree: WAL + memtable + SSTables + block cache +
//! compaction, with I/O-plan accounting on every operation.
//!
//! One `LsmTree` is the storage engine of one replica on one node (a region
//! in `hstore`, a node's keyspace shard set in `cstore`).

use crate::bloom;
use crate::cache::{BlockCache, BlockKey, CacheStats};
use crate::compaction::SizeTieredPolicy;
use crate::io::{IoOp, IoPlan};
use crate::memtable::Memtable;
use crate::merge::{merge_runs, MergeRef};
use crate::sstable::{SsTable, TableId};
use crate::types::{Cell, Key};
use crate::wal::WriteAheadLog;

/// Tuning knobs for one LSM tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsmConfig {
    /// Target encoded block size (the disk-I/O and cache unit).
    pub block_size: u64,
    /// Memtable size that triggers a flush.
    pub memtable_flush_bytes: u64,
    /// Block-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Compaction policy.
    pub compaction: SizeTieredPolicy,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            block_size: 8 * 1024,
            memtable_flush_bytes: 2 * 1024 * 1024,
            cache_bytes: 8 * 1024 * 1024,
            compaction: SizeTieredPolicy::default(),
        }
    }
}

/// Outcome of a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Encoded bytes appended to the WAL (for log-bandwidth accounting).
    pub wal_bytes: u64,
    /// True when the memtable crossed its flush threshold.
    pub flush_due: bool,
}

/// Outcome of a point read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadResult {
    /// The newest cell across memtable and all runs, if any.
    pub cell: Option<Cell>,
    /// The I/O performed.
    pub io: IoPlan,
}

/// Outcome of a range scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// Up to `limit` live rows starting at the scan key.
    pub rows: Vec<(Key, Cell)>,
    /// The I/O performed.
    pub io: IoPlan,
}

/// Outcome of a memtable flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReceipt {
    /// The new table.
    pub table: TableId,
    /// Bytes written sequentially to disk.
    pub bytes: u64,
    /// True when the flush made a compaction bucket ripe.
    pub compaction_due: bool,
}

/// Outcome of a compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReceipt {
    /// Tables consumed.
    pub inputs: Vec<TableId>,
    /// The replacement table.
    pub output: TableId,
    /// Bytes read sequentially from disk.
    pub read_bytes: u64,
    /// Bytes written sequentially to disk.
    pub write_bytes: u64,
}

/// One merge source of a range scan: the memtable's B-tree range or an
/// SSTable run's entry slice, unified so the streaming merge can hold all
/// sources in one unboxed `Vec`.
enum ScanSource<'a> {
    Mem(std::collections::btree_map::Range<'a, Key, Cell>),
    Run(std::slice::Iter<'a, (Key, Cell)>),
}

impl<'a> Iterator for ScanSource<'a> {
    type Item = (&'a Key, &'a Cell);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            ScanSource::Mem(it) => it.next(),
            ScanSource::Run(it) => it.next().map(|(key, cell)| (key, cell)),
        }
    }
}

/// A single replica's LSM storage engine.
#[derive(Debug, Clone)]
pub struct LsmTree {
    config: LsmConfig,
    wal: WriteAheadLog,
    memtable: Memtable,
    /// Oldest first; reads reconcile across all runs.
    tables: Vec<SsTable>,
    /// `(id, total_bytes)` mirror of `tables`, maintained on flush and
    /// compaction so policy checks don't rebuild a `Vec` per call.
    sizes: Vec<(TableId, u64)>,
    cache: BlockCache,
    next_table_id: u64,
}

impl LsmTree {
    /// Create an empty tree.
    pub fn new(config: LsmConfig) -> Self {
        Self {
            config,
            wal: WriteAheadLog::new(),
            memtable: Memtable::new(),
            tables: Vec::new(),
            sizes: Vec::new(),
            cache: BlockCache::new(config.cache_bytes),
            next_table_id: 1,
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Apply a write: WAL append then memtable insert. The WAL copy of the
    /// payload is a refcount bump; the caller's key/cell move straight into
    /// the memtable.
    pub fn put(&mut self, key: Key, cell: Cell) -> WriteReceipt {
        let (_seq, wal_bytes) = self.wal.append(&key, &cell);
        self.memtable.insert(key, cell);
        WriteReceipt {
            wal_bytes,
            flush_due: self.memtable.bytes() >= self.config.memtable_flush_bytes,
        }
    }

    /// Point read reconciling memtable and every run the bloom filters admit.
    ///
    /// Zero-copy until the very end: candidates stay borrowed out of the
    /// memtable and runs, last-write-wins folds by reference via
    /// [`Cell::newer`], and only the final winner is cloned (a refcount
    /// bump). The key is bloom-hashed once for all runs, and every run
    /// records into one shared inline [`IoPlan`].
    pub fn get(&mut self, key: &[u8]) -> ReadResult {
        let Self {
            cache,
            tables,
            memtable,
            ..
        } = self;
        let mut io = IoPlan::new();
        let mut newest: Option<&Cell> = None;
        if let Some(cell) = memtable.get(key) {
            io.push(IoOp::MemtableHit);
            newest = Some(cell);
        }
        let hashes = bloom::hash_pair(key);
        // Check every run; last-write-wins decides, so order is irrelevant.
        for table in tables.iter() {
            if let Some(cell) = Self::get_from_table(cache, table, key, hashes, &mut io) {
                newest = Some(match newest {
                    Some(prev) => Cell::newer(prev, cell),
                    None => cell,
                });
            }
        }
        ReadResult {
            cell: newest.cloned(),
            io,
        }
    }

    fn get_from_table<'t>(
        cache: &mut BlockCache,
        table: &'t SsTable,
        key: &[u8],
        hashes: (u64, u64),
        io: &mut IoPlan,
    ) -> Option<&'t Cell> {
        // Search first, bloom only on a miss. A present key always passes
        // the bloom filter, so probing it up front spends k scattered bit
        // reads to learn nothing on the common read-mostly path; the index
        // and block searches run over the table's flat prefix arrays. The
        // observable effects — io plan, cache state, returned cell — are
        // identical to bloom-first order: the simulated block read happens
        // exactly when the bloom filter would have admitted the key.
        let Some(block) = table.block_for(key) else {
            // Key sorts before the table: bloom-first order also ends in a
            // skip here, whatever the filter says.
            io.push(IoOp::BloomSkip);
            return None;
        };
        let hit = table.get_in_block(block, key);
        if hit.is_none() && !table.may_contain_hashed(hashes) {
            io.push(IoOp::BloomSkip);
            return None;
        }
        // Present key, or an absent one the filter false-positives on:
        // either way the block is (simulated-)read and charged.
        let bkey = BlockKey {
            table: table.id(),
            block: block as u32,
        };
        let bytes = table.block_len(block);
        if cache.get(bkey).is_some() {
            io.push(IoOp::CacheHit { bytes });
        } else {
            io.push(IoOp::DiskRead { bytes });
            cache.insert(bkey, bytes);
        }
        hit
    }

    /// Range scan: merge memtable and all runs from `start`, return up to
    /// `limit` live rows (tombstoned rows are skipped but still cost I/O).
    pub fn scan(&mut self, start: &[u8], limit: usize) -> ScanResult {
        // Streaming pass: k-way merge over borrowed entries; nothing is
        // collected per source and only returned rows are cloned (refcount
        // bumps). Each source only needs its first `limit` entries ≥ start:
        // the k-th smallest key of the union is no larger than the k-th
        // smallest key of any single source, so a per-source prefix of
        // `limit` covers the first `limit` merged keys. (A small slack
        // absorbs tombstoned rows, which are consumed but not returned;
        // workloads that mass-delete may see short scans.)
        let take = limit.saturating_add(16);
        let Self {
            cache,
            tables,
            memtable,
            ..
        } = self;
        let mut sources = Vec::with_capacity(1 + tables.len());
        sources.push(ScanSource::Mem(memtable.range_from(start)).take(take));
        for t in tables.iter() {
            sources.push(ScanSource::Run(t.entries_from(start)).take(take));
        }
        let mut rows = Vec::with_capacity(limit);
        let mut last_key: Option<&Key> = None;
        for (key, cell) in MergeRef::new(sources) {
            if rows.len() >= limit {
                break;
            }
            last_key = Some(key);
            if !cell.is_tombstone() {
                rows.push((key.clone(), cell.clone()));
            }
        }
        // I/O pass: every block in [start, last_key] of every run was read.
        let mut io = IoPlan::new();
        if let Some(end) = last_key {
            for t in tables.iter() {
                Self::scan_io_for_table(cache, t, start, end, &mut io);
            }
        }
        ScanResult { rows, io }
    }

    fn scan_io_for_table(
        cache: &mut BlockCache,
        table: &SsTable,
        start: &[u8],
        end: &Key,
        io: &mut IoPlan,
    ) {
        if table.is_empty() {
            return;
        }
        let lo = table.lower_bound(start);
        if lo >= table.len() {
            return;
        }
        // Index of the last entry <= end.
        let hi = table.lower_bound(end.as_ref());
        let hi_idx = if hi < table.len() && table.entries()[hi].0 == *end {
            hi
        } else if hi == 0 {
            return; // whole range sorts before this table
        } else {
            hi - 1
        };
        if hi_idx < lo {
            return;
        }
        let first_block = table.block_of_entry(lo);
        let last_block = table.block_of_entry(hi_idx);
        for (i, block) in (first_block..=last_block).enumerate() {
            let bkey = BlockKey {
                table: table.id(),
                block: block as u32,
            };
            let bytes = table.block_len(block);
            if cache.get(bkey).is_some() {
                io.push(IoOp::CacheHit { bytes });
            } else {
                if i == 0 {
                    io.push(IoOp::DiskRead { bytes });
                } else {
                    io.push(IoOp::DiskSeqRead { bytes });
                }
                cache.insert(bkey, bytes);
            }
        }
    }

    /// Flush the memtable into a new SSTable. Returns `None` when there is
    /// nothing to flush. The memtable's entries move into the new run —
    /// frozen in place, never copied.
    pub fn flush(&mut self) -> Option<FlushReceipt> {
        if self.memtable.is_empty() {
            return None;
        }
        let watermark = self.wal.last_seq();
        let entries = self.memtable.drain_sorted();
        let id = TableId(self.next_table_id);
        self.next_table_id += 1;
        let table = SsTable::build(id, entries, self.config.block_size);
        let bytes = table.total_bytes();
        self.tables.push(table);
        self.sizes.push((id, bytes));
        self.wal.truncate_through(watermark);
        let compaction_due = self.config.compaction.pick(&self.sizes).is_some();
        Some(FlushReceipt {
            table: id,
            bytes,
            compaction_due,
        })
    }

    fn rebuild_sizes(&mut self) {
        self.sizes.clear();
        self.sizes
            .extend(self.tables.iter().map(|t| (t.id(), t.total_bytes())));
    }

    /// Run one compaction if the policy finds a ripe bucket.
    pub fn maybe_compact(&mut self) -> Option<CompactionReceipt> {
        let inputs = self.config.compaction.pick(&self.sizes)?;
        let major = inputs.len() == self.tables.len();
        let mut consumed = Vec::new();
        let mut read_bytes = 0;
        let mut kept = Vec::new();
        for table in self.tables.drain(..) {
            if inputs.contains(&table.id()) {
                read_bytes += table.total_bytes();
                consumed.push(table);
            } else {
                kept.push(table);
            }
        }
        // Streaming merge straight over the consumed runs' entry slices;
        // only surviving winners are cloned (refcount bumps). Tombstones can
        // only be dropped when no older run might still hold a shadowed
        // value.
        let merged = {
            let runs: Vec<&[(Key, Cell)]> = consumed.iter().map(|t| t.entries()).collect();
            merge_runs(&runs, major)
        };
        let id = TableId(self.next_table_id);
        self.next_table_id += 1;
        let output = SsTable::build(id, merged, self.config.block_size);
        let write_bytes = output.total_bytes();
        for t in &consumed {
            self.cache.invalidate_table(t.id());
        }
        kept.push(output);
        self.tables = kept;
        self.rebuild_sizes();
        Some(CompactionReceipt {
            inputs,
            output: id,
            read_bytes,
            write_bytes,
        })
    }

    /// Force a major compaction: merge every run into one, purging
    /// tombstones (`nodetool compact` after a bulk load). Returns `None`
    /// when there is at most one run.
    pub fn compact_all(&mut self) -> Option<CompactionReceipt> {
        if self.tables.len() <= 1 {
            return None;
        }
        let inputs: Vec<TableId> = self.tables.iter().map(|t| t.id()).collect();
        let read_bytes: u64 = self.tables.iter().map(|t| t.total_bytes()).sum();
        let merged = {
            let runs: Vec<&[(Key, Cell)]> = self.tables.iter().map(|t| t.entries()).collect();
            merge_runs(&runs, true)
        };
        let id = TableId(self.next_table_id);
        self.next_table_id += 1;
        let output = SsTable::build(id, merged, self.config.block_size);
        let write_bytes = output.total_bytes();
        for t in &self.tables {
            self.cache.invalidate_table(t.id());
        }
        self.tables.clear();
        self.tables.push(output);
        self.rebuild_sizes();
        Some(CompactionReceipt {
            inputs,
            output: id,
            read_bytes,
            write_bytes,
        })
    }

    /// Mark WAL bytes synced; returns bytes a background fsync would write.
    pub fn sync_wal(&mut self) -> u64 {
        self.wal.sync()
    }

    /// Simulate a crash-restart: the memtable is lost and rebuilt from the
    /// WAL; SSTables and cache contents survive (the cache is cold in a real
    /// restart, but residency is a performance matter handled by callers).
    pub fn recover(&mut self) {
        self.memtable = Memtable::new();
        let Self { wal, memtable, .. } = self;
        for e in wal.replay() {
            memtable.insert(e.key.clone(), e.cell.clone());
        }
    }

    /// Number of live SSTables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total bytes across all live SSTables.
    pub fn table_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.total_bytes()).sum()
    }

    /// Bytes currently buffered in the memtable.
    pub fn memtable_bytes(&self) -> u64 {
        self.memtable.bytes()
    }

    /// Rows currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Unsynced WAL bytes.
    pub fn wal_unsynced_bytes(&self) -> u64 {
        self.wal.unsynced_bytes()
    }

    /// Block-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Reset cache counters (warm-up boundary).
    pub fn reset_cache_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Empty the block cache (a restart or a region move: cold cache).
    pub fn drop_cache(&mut self) {
        self.cache.clear();
    }

    /// Populate the cache as a long-running warmed process would have it:
    /// every block of every run inserted in order, LRU keeping whatever
    /// fits. Models the paper's "run the tests for a long time to overcome
    /// cold start" without burning wall-clock on warm-up operations.
    pub fn warm_cache(&mut self) {
        for t in &self.tables {
            for block in 0..t.block_count() {
                self.cache.insert(
                    crate::cache::BlockKey {
                        table: t.id(),
                        block: block as u32,
                    },
                    t.block_len(block),
                );
            }
        }
        self.cache.reset_stats();
    }

    /// Ids and sizes of all live SSTables (oldest first).
    pub fn tables(&self) -> &[(TableId, u64)] {
        &self.sizes
    }

    /// True when every run of `self` shares its allocation with the
    /// corresponding run of `other` — i.e. both trees are copy-on-write
    /// snapshots of one loaded state. Trees that have since compacted or
    /// flushed diverge and stop sharing the replaced runs.
    pub fn shares_tables_with(&self, other: &LsmTree) -> bool {
        self.tables.len() == other.tables.len()
            && self
                .tables
                .iter()
                .zip(&other.tables)
                .all(|(a, b)| a.shares_storage_with(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn small_config() -> LsmConfig {
        LsmConfig {
            block_size: 256,
            memtable_flush_bytes: 4 * 1024,
            cache_bytes: 8 * 1024,
            compaction: SizeTieredPolicy {
                min_threshold: 3,
                ..Default::default()
            },
        }
    }

    fn fill(tree: &mut LsmTree, range: std::ops::Range<usize>, ts: u64) {
        for i in range {
            tree.put(
                k(&format!("user{i:06}")),
                Cell::live(k(&format!("v{ts}-{i}")), ts),
            );
        }
    }

    #[test]
    fn read_your_write_from_memtable() {
        let mut tree = LsmTree::new(small_config());
        tree.put(k("a"), Cell::live(k("1"), 10));
        let r = tree.get(b"a");
        assert_eq!(r.cell.unwrap().value.as_deref(), Some(&b"1"[..]));
        assert!(r.io.is_memory_only());
    }

    #[test]
    fn flush_then_read_costs_disk_then_cache() {
        let mut tree = LsmTree::new(small_config());
        fill(&mut tree, 0..100, 1);
        tree.flush().expect("flushes");
        assert_eq!(tree.memtable_len(), 0);
        let first = tree.get(b"user000050");
        assert!(first.cell.is_some());
        assert_eq!(first.io.random_reads(), 1);
        // Same block now cached.
        let second = tree.get(b"user000050");
        assert!(second.io.is_memory_only());
        assert!(second.io.cache_hit_bytes() > 0);
    }

    #[test]
    fn newest_value_wins_across_runs() {
        let mut tree = LsmTree::new(small_config());
        tree.put(k("a"), Cell::live(k("old"), 1));
        tree.flush();
        tree.put(k("a"), Cell::live(k("new"), 2));
        tree.flush();
        let r = tree.get(b"a");
        assert_eq!(r.cell.unwrap().value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn out_of_order_arrival_still_reads_newest() {
        // A newer write can land in an *older* run when replication delivers
        // out of order; reconciliation across all runs must still win.
        let mut tree = LsmTree::new(small_config());
        tree.put(k("a"), Cell::live(k("newest"), 100));
        tree.flush();
        tree.put(k("a"), Cell::live(k("late-stale"), 50));
        tree.flush();
        let r = tree.get(b"a");
        assert_eq!(r.cell.unwrap().value.as_deref(), Some(&b"newest"[..]));
    }

    #[test]
    fn tombstone_hides_older_value() {
        let mut tree = LsmTree::new(small_config());
        tree.put(k("a"), Cell::live(k("v"), 1));
        tree.flush();
        tree.put(k("a"), Cell::tombstone(2));
        let r = tree.get(b"a");
        assert!(r.cell.unwrap().is_tombstone());
        // Scans skip it.
        let s = tree.scan(b"a", 10);
        assert!(s.rows.is_empty());
    }

    #[test]
    fn flush_due_signal_fires() {
        let mut tree = LsmTree::new(small_config());
        let mut due = false;
        for i in 0..1000 {
            let r = tree.put(
                k(&format!("user{i:06}")),
                Cell::live(Bytes::from(vec![7u8; 64]), 1),
            );
            if r.flush_due {
                due = true;
                break;
            }
        }
        assert!(due, "4KiB of 64B values should trip the flush threshold");
    }

    #[test]
    fn scan_merges_memtable_and_runs_in_order() {
        let mut tree = LsmTree::new(small_config());
        fill(&mut tree, 0..50, 1);
        tree.flush();
        fill(&mut tree, 25..75, 2); // overlap: 25..50 updated
        let s = tree.scan(b"user000020", 10);
        assert_eq!(s.rows.len(), 10);
        assert!(
            s.rows.windows(2).all(|w| w[0].0 < w[1].0),
            "scan rows out of order"
        );
        // Row 25 must be the ts=2 version.
        let row25 = s
            .rows
            .iter()
            .find(|(key, _)| key == &k("user000025"))
            .unwrap();
        assert_eq!(row25.1.ts, 2);
    }

    #[test]
    fn scan_io_counts_blocks() {
        let mut tree = LsmTree::new(LsmConfig {
            cache_bytes: 0, // force every block to disk
            ..small_config()
        });
        fill(&mut tree, 0..200, 1);
        tree.flush();
        let s = tree.scan(b"user000000", 100);
        assert_eq!(s.rows.len(), 100);
        assert!(s.io.random_reads() >= 1);
        assert!(s.io.disk_read_bytes() > 0);
    }

    #[test]
    fn compaction_reduces_table_count_and_preserves_data() {
        let mut tree = LsmTree::new(small_config());
        for round in 0..4 {
            fill(&mut tree, 0..60, round + 1);
            tree.flush();
        }
        assert_eq!(tree.table_count(), 4);
        let receipt = tree.maybe_compact().expect("ripe");
        assert!(receipt.read_bytes > 0);
        assert!(receipt.write_bytes > 0);
        assert_eq!(tree.table_count(), 1);
        // Every key readable at the newest version.
        for i in 0..60 {
            let r = tree.get(format!("user{i:06}").as_bytes());
            assert_eq!(r.cell.unwrap().ts, 4);
        }
    }

    #[test]
    fn major_compaction_purges_tombstones() {
        let mut tree = LsmTree::new(LsmConfig {
            compaction: SizeTieredPolicy {
                min_threshold: 2,
                bucket_low: 0.0,
                bucket_high: f64::MAX,
                ..Default::default()
            },
            ..small_config()
        });
        fill(&mut tree, 0..20, 1);
        tree.flush();
        for i in 0..20 {
            tree.put(k(&format!("user{i:06}")), Cell::tombstone(2));
        }
        tree.flush();
        tree.maybe_compact().expect("compacts everything");
        assert_eq!(tree.table_count(), 1);
        assert_eq!(tree.table_bytes(), 0, "all rows were deleted");
    }

    #[test]
    fn bloom_skips_irrelevant_tables() {
        let mut tree = LsmTree::new(small_config());
        fill(&mut tree, 0..100, 1);
        tree.flush();
        let r = tree.get(b"zebra");
        assert!(r.cell.is_none());
        assert_eq!(r.io.bloom_skips(), 1);
        assert_eq!(r.io.random_reads(), 0);
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        let mut tree = LsmTree::new(small_config());
        fill(&mut tree, 0..30, 1);
        tree.flush();
        fill(&mut tree, 30..40, 2); // unflushed
        tree.recover();
        for i in 0..40 {
            assert!(
                tree.get(format!("user{i:06}").as_bytes()).cell.is_some(),
                "key {i} lost in recovery"
            );
        }
    }

    #[test]
    fn wal_sync_drains() {
        let mut tree = LsmTree::new(small_config());
        tree.put(k("a"), Cell::live(k("1"), 1));
        assert!(tree.wal_unsynced_bytes() > 0);
        let n = tree.sync_wal();
        assert!(n > 0);
        assert_eq!(tree.wal_unsynced_bytes(), 0);
    }

    #[test]
    fn snapshot_clone_shares_runs_until_divergence() {
        let mut tree = LsmTree::new(small_config());
        fill(&mut tree, 0..100, 1);
        tree.flush();
        let mut snap = tree.clone();
        assert!(tree.shares_tables_with(&snap));
        // Writes into the snapshot never leak into the base...
        snap.put(k("user000001"), Cell::live(k("mutated"), 9));
        assert_eq!(
            tree.get(b"user000001").cell.unwrap().value.as_deref(),
            Some(&b"v1-1"[..])
        );
        // ...and a flush in the snapshot leaves the base's runs untouched.
        snap.flush();
        assert!(!tree.shares_tables_with(&snap));
        assert_eq!(tree.table_count(), 1);
        assert_eq!(snap.table_count(), 2);
    }

    #[test]
    fn cache_stats_observe_hits() {
        let mut tree = LsmTree::new(small_config());
        fill(&mut tree, 0..50, 1);
        tree.flush();
        tree.get(b"user000010");
        tree.get(b"user000010");
        let stats = tree.cache_stats();
        assert!(stats.hits >= 1);
        assert!(stats.misses >= 1);
    }
}
