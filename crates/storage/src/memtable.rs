//! The in-memory sorted write buffer.
//!
//! HBase calls this the memstore, Cassandra the memtable. Writes are
//! absorbed here (after the log append) and served back at memory speed; when
//! the buffer exceeds its flush threshold it is frozen into an immutable
//! SSTable.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::types::{entry_encoded_len, Cell, Key};

/// A sorted, size-tracked in-memory table of the newest cell per key.
#[derive(Debug, Clone, Default)]
pub struct Memtable {
    entries: BTreeMap<Key, Cell>,
    bytes: u64,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a cell, reconciling with any existing version of the key by
    /// last-write-wins. Returns the change in approximate byte footprint.
    pub fn insert(&mut self, key: Key, cell: Cell) -> i64 {
        let new_len = entry_encoded_len(&key, &cell) as i64;
        match self.entries.entry(key) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(cell);
                self.bytes = (self.bytes as i64 + new_len) as u64;
                new_len
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let old_len = entry_encoded_len(o.key(), o.get()) as i64;
                let winner = Cell::reconcile(o.get().clone(), cell);
                let winner_len = entry_encoded_len(o.key(), &winner) as i64;
                o.insert(winner);
                let delta = winner_len - old_len;
                self.bytes = (self.bytes as i64 + delta) as u64;
                delta
            }
        }
    }

    /// Look up the newest cell for `key`, if buffered here.
    pub fn get(&self, key: &[u8]) -> Option<&Cell> {
        self.entries.get(key)
    }

    /// Iterate entries with key >= `start`, in key order. The concrete
    /// `Range` type lets the LSM scan path store this iterator alongside
    /// SSTable iterators in one merge source without boxing.
    pub fn range_from<'a>(
        &'a self,
        start: &[u8],
    ) -> std::collections::btree_map::Range<'a, Key, Cell> {
        self.entries
            .range::<[u8], _>((Bound::Included(start), Bound::Unbounded))
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Cell)> {
        self.entries.iter()
    }

    /// Number of distinct keys buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate byte footprint (drives flush decisions).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Freeze and drain the table, returning its entries in key order.
    /// The memtable is empty afterwards.
    pub fn drain_sorted(&mut self) -> Vec<(Key, Cell)> {
        self.bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn live(s: &str, ts: u64) -> Cell {
        Cell::live(k(s), ts)
    }

    #[test]
    fn insert_then_get() {
        let mut m = Memtable::new();
        m.insert(k("a"), live("1", 10));
        assert_eq!(m.get(b"a"), Some(&live("1", 10)));
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn newer_write_replaces_older() {
        let mut m = Memtable::new();
        m.insert(k("a"), live("old", 10));
        m.insert(k("a"), live("new", 20));
        assert_eq!(m.get(b"a").unwrap().value.as_deref(), Some(&b"new"[..]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn stale_write_does_not_regress() {
        let mut m = Memtable::new();
        m.insert(k("a"), live("new", 20));
        m.insert(k("a"), live("old", 10));
        assert_eq!(m.get(b"a").unwrap().value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn byte_tracking_grows_and_updates() {
        let mut m = Memtable::new();
        assert_eq!(m.bytes(), 0);
        m.insert(k("a"), live("xx", 1));
        let after_one = m.bytes();
        assert!(after_one > 0);
        // Overwrite with a longer value grows footprint.
        m.insert(k("a"), live("xxxxxxxx", 2));
        assert!(m.bytes() > after_one);
        // Distinct key adds more.
        m.insert(k("b"), live("y", 1));
        assert!(m.bytes() > after_one);
    }

    #[test]
    fn tombstones_are_stored() {
        let mut m = Memtable::new();
        m.insert(k("a"), live("v", 1));
        m.insert(k("a"), Cell::tombstone(2));
        assert!(m.get(b"a").unwrap().is_tombstone());
    }

    #[test]
    fn range_iteration_is_ordered() {
        let mut m = Memtable::new();
        for s in ["d", "a", "c", "b"] {
            m.insert(k(s), live(s, 1));
        }
        let keys: Vec<_> = m.range_from(b"b").map(|(key, _)| key.clone()).collect();
        assert_eq!(keys, vec![k("b"), k("c"), k("d")]);
    }

    #[test]
    fn drain_empties_and_sorts() {
        let mut m = Memtable::new();
        m.insert(k("b"), live("2", 1));
        m.insert(k("a"), live("1", 1));
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, k("a"));
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }
}
