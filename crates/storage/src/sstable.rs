//! Immutable sorted runs (HBase HFiles / Cassandra SSTables).
//!
//! A run stores its entries in key order, grouped into fixed-size blocks.
//! Point reads consult the bloom filter, then the block index, then read one
//! block; scans read consecutive blocks. The block is the unit of disk I/O
//! and of block-cache residency.

use std::sync::Arc;

use crate::bloom::BloomFilter;
use crate::types::{entry_encoded_len, Cell, Key};

/// Identity of an SSTable within one node's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u64);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sst{}", self.0)
    }
}

/// First 16 bytes of a key, zero-padded. Stored in flat arrays so the
/// binary searches of the point-read path compare contiguous memory
/// instead of chasing each `Bytes` key onto the heap.
type KeyPrefix = [u8; 16];

/// Blocks per top-level index chunk. 64 keeps the top level of a large
/// run's index at a few cache lines per thousand blocks while the
/// second-level window spans a single kilobyte of prefixes.
const CHUNK: usize = 64;

fn key_prefix(key: &[u8]) -> KeyPrefix {
    let mut p = [0u8; 16];
    let n = key.len().min(16);
    p[..n].copy_from_slice(&key[..n]);
    p
}

/// Compare two keys through their padded prefixes: when the prefixes
/// differ, their byte order equals the full lexicographic order (zero
/// padding preserves "shorter is smaller" because the pad byte sorts below
/// any byte the longer key continues with, and equal pads defer); only a
/// prefix tie needs the full keys.
#[inline]
fn cmp_via_prefix(
    prefix: &KeyPrefix,
    full: &[u8],
    target_prefix: &KeyPrefix,
    target: &[u8],
) -> std::cmp::Ordering {
    match prefix.cmp(target_prefix) {
        std::cmp::Ordering::Equal => full.cmp(target),
        ord => ord,
    }
}

/// The immutable payload of a run: entries, block structure, index, bloom.
/// Built once, never mutated, shared between clones of the owning table.
#[derive(Debug)]
struct SsTableCore {
    entries: Vec<(Key, Cell)>,
    /// Index into `entries` where each block begins; always starts with 0.
    block_starts: Vec<u32>,
    /// Padded prefix of every entry key, parallel to `entries` — the
    /// in-block search runs over this flat array.
    entry_prefixes: Vec<KeyPrefix>,
    /// Padded prefix of every block's first key, parallel to
    /// `block_starts` — the block index search runs over this; the full
    /// key of block `i` (needed only on a prefix tie) is
    /// `entries[block_starts[i]]`.
    block_prefixes: Vec<KeyPrefix>,
    /// Prefix of every `CHUNK`-th block's first key: the top level of the
    /// block index. Small enough to stay cache-hot, it narrows the search
    /// to one `CHUNK`-block window before `block_prefixes` is touched.
    chunk_prefixes: Vec<KeyPrefix>,
    /// Encoded bytes per block.
    block_bytes: Vec<u64>,
    bloom: BloomFilter,
    total_bytes: u64,
}

/// An immutable sorted run with block structure, index, and bloom filter.
///
/// Cloning is O(1): the run's data lives behind an [`Arc`], so clones of a
/// loaded store (snapshots for parallel experiment cells) share every run
/// rather than copying it. Compaction replaces whole tables instead of
/// mutating them, so sharing is never observable.
#[derive(Debug, Clone)]
pub struct SsTable {
    id: TableId,
    core: Arc<SsTableCore>,
}

impl SsTable {
    /// Build a table from entries that are already sorted by key, unique per
    /// key. `block_size` is the target encoded block size in bytes.
    ///
    /// # Panics
    /// In debug builds, panics if entries are not strictly sorted.
    pub fn build(id: TableId, entries: Vec<(Key, Cell)>, block_size: u64) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly sorted by key"
        );
        let mut bloom = BloomFilter::with_capacity(entries.len(), 10);
        let mut block_starts = Vec::new();
        let mut entry_prefixes = Vec::with_capacity(entries.len());
        let mut block_prefixes = Vec::new();
        let mut chunk_prefixes = Vec::new();
        let mut block_bytes = Vec::new();
        let mut total_bytes = 0u64;
        let mut cur_bytes = 0u64;
        for (i, (key, cell)) in entries.iter().enumerate() {
            bloom.insert(key);
            entry_prefixes.push(key_prefix(key));
            let len = entry_encoded_len(key, cell);
            if cur_bytes == 0 {
                if block_starts.len() % CHUNK == 0 {
                    chunk_prefixes.push(key_prefix(key));
                }
                block_starts.push(i as u32);
                block_prefixes.push(key_prefix(key));
                block_bytes.push(0);
            }
            cur_bytes += len;
            total_bytes += len;
            *block_bytes.last_mut().expect("block exists") += len;
            if cur_bytes >= block_size {
                cur_bytes = 0;
            }
        }
        Self {
            id,
            core: Arc::new(SsTableCore {
                entries,
                block_starts,
                entry_prefixes,
                block_prefixes,
                chunk_prefixes,
                block_bytes,
                bloom,
                total_bytes,
            }),
        }
    }

    /// True when `self` and `other` share one underlying allocation (they
    /// are clones of the same built run). Snapshot tests use this to prove
    /// store clones are copy-on-write rather than deep copies.
    pub fn shares_storage_with(&self, other: &SsTable) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// The table's identity.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.core.entries.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.core.entries.is_empty()
    }

    /// Total encoded bytes.
    pub fn total_bytes(&self) -> u64 {
        self.core.total_bytes
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.core.block_starts.len()
    }

    /// Encoded bytes of one block.
    pub fn block_len(&self, block: usize) -> u64 {
        self.core.block_bytes[block]
    }

    /// Smallest key, if non-empty.
    pub fn min_key(&self) -> Option<&Key> {
        self.core.entries.first().map(|(k, _)| k)
    }

    /// Largest key, if non-empty.
    pub fn max_key(&self) -> Option<&Key> {
        self.core.entries.last().map(|(k, _)| k)
    }

    /// Bloom-filter check: false means the key is definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.core.bloom.may_contain(key)
    }

    /// [`SsTable::may_contain`] with the key's [`crate::bloom::hash_pair`]
    /// precomputed once by the caller — a point read probing many runs hashes
    /// the key a single time instead of twice per run.
    pub fn may_contain_hashed(&self, hashes: (u64, u64)) -> bool {
        self.core.bloom.may_contain_hashed(hashes)
    }

    /// Which block could contain `key`, or `None` when the key sorts before
    /// the first block or the table is empty.
    ///
    /// The search runs over the flat prefix array (one contiguous compare
    /// per probe, full keys only on prefix ties) — the sparse index of a
    /// large run no longer costs a pointer chase per probe.
    pub fn block_for(&self, key: &[u8]) -> Option<usize> {
        let prefixes = &self.core.block_prefixes;
        if prefixes.is_empty() {
            return None;
        }
        let target = key_prefix(key);
        // `le(i)`: does block i's first key sort <= `key`?
        let le = |i: usize| {
            cmp_via_prefix(
                &prefixes[i],
                self.core.entries[self.core.block_starts[i] as usize]
                    .0
                    .as_ref(),
                &target,
                key,
            ) != std::cmp::Ordering::Greater
        };
        // Top level: rightmost chunk whose first block is <= key.
        let chunks = &self.core.chunk_prefixes;
        let mut clo = 0usize;
        let mut chi = chunks.len();
        while clo < chi {
            let mid = clo + (chi - clo) / 2;
            if le(mid * CHUNK) {
                clo = mid + 1;
            } else {
                chi = mid;
            }
        }
        if clo == 0 {
            return None; // key sorts before the first block
        }
        // Second level: rightmost block <= key inside that chunk's window.
        let mut lo = (clo - 1) * CHUNK;
        let mut hi = (clo * CHUNK).min(prefixes.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if le(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Some(lo - 1)
    }

    /// Entry range `[start, end)` of a block within the table.
    fn block_range(&self, block: usize) -> (usize, usize) {
        let start = self.core.block_starts[block] as usize;
        let end = self
            .core
            .block_starts
            .get(block + 1)
            .map_or(self.core.entries.len(), |&s| s as usize);
        (start, end)
    }

    /// Point lookup confined to one block (the caller already paid for
    /// reading that block). Searches the block's slice of the flat prefix
    /// array; the heap-allocated key is touched only on a prefix tie.
    pub fn get_in_block(&self, block: usize, key: &[u8]) -> Option<&Cell> {
        let (start, end) = self.block_range(block);
        let prefixes = &self.core.entry_prefixes[start..end];
        let entries = &self.core.entries[start..end];
        let target = key_prefix(key);
        let mut lo = 0usize;
        let mut hi = prefixes.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match cmp_via_prefix(&prefixes[mid], entries[mid].0.as_ref(), &target, key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(&entries[mid].1),
            }
        }
        None
    }

    /// Full point lookup (bloom + index + block search); for tests and
    /// compaction, where I/O accounting is handled elsewhere.
    pub fn get(&self, key: &[u8]) -> Option<&Cell> {
        if !self.may_contain(key) {
            return None;
        }
        let block = self.block_for(key)?;
        self.get_in_block(block, key)
    }

    /// Index of the first entry with key >= `start`.
    pub fn lower_bound(&self, start: &[u8]) -> usize {
        self.core
            .entries
            .partition_point(|(k, _)| k.as_ref() < start)
    }

    /// Iterate entries from the first key >= `start`. The concrete slice
    /// iterator type lets scan merge sources hold it unboxed.
    pub fn entries_from(&self, start: &[u8]) -> std::slice::Iter<'_, (Key, Cell)> {
        self.core.entries[self.lower_bound(start)..].iter()
    }

    /// All entries in key order.
    pub fn entries(&self) -> &[(Key, Cell)] {
        &self.core.entries
    }

    /// The block containing entry index `idx`.
    pub fn block_of_entry(&self, idx: usize) -> usize {
        debug_assert!(idx < self.core.entries.len());
        match self.core.block_starts.binary_search(&(idx as u32)) {
            Ok(b) => b,
            Err(b) => b - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn table(n: usize, block_size: u64) -> SsTable {
        let entries: Vec<_> = (0..n)
            .map(|i| {
                (
                    k(&format!("user{i:06}")),
                    Cell::live(k(&format!("v{i}")), i as u64),
                )
            })
            .collect();
        SsTable::build(TableId(1), entries, block_size)
    }

    #[test]
    fn point_lookup_finds_every_key() {
        let t = table(500, 256);
        for i in 0..500 {
            let got = t.get(format!("user{i:06}").as_bytes()).expect("present");
            assert_eq!(got.value.as_deref(), Some(format!("v{i}").as_bytes()));
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let t = table(100, 256);
        assert_eq!(t.get(b"user999999"), None);
        assert_eq!(t.get(b"aaaa"), None);
    }

    #[test]
    fn blocks_partition_the_entries() {
        let t = table(500, 256);
        assert!(t.block_count() > 1, "expected multiple blocks");
        let total: u64 = (0..t.block_count()).map(|b| t.block_len(b)).sum();
        assert_eq!(total, t.total_bytes());
    }

    #[test]
    fn block_for_respects_boundaries() {
        let t = table(100, 128);
        // Key before the first entry has no block.
        assert_eq!(t.block_for(b"a"), None);
        // Every present key maps to the block that contains it.
        for i in 0..100 {
            let key = format!("user{i:06}");
            let b = t.block_for(key.as_bytes()).expect("block");
            assert!(t.get_in_block(b, key.as_bytes()).is_some());
        }
    }

    #[test]
    fn min_max_keys() {
        let t = table(10, 1024);
        assert_eq!(t.min_key(), Some(&k("user000000")));
        assert_eq!(t.max_key(), Some(&k("user000009")));
    }

    #[test]
    fn entries_from_starts_at_lower_bound() {
        let t = table(10, 1024);
        let from: Vec<_> = t
            .entries_from(b"user000007")
            .map(|(key, _)| key.clone())
            .collect();
        assert_eq!(
            from,
            vec![k("user000007"), k("user000008"), k("user000009")]
        );
        // A start between keys lands on the next one.
        let from: Vec<_> = t
            .entries_from(b"user0000071")
            .map(|(key, _)| key.clone())
            .collect();
        assert_eq!(from[0], k("user000008"));
    }

    #[test]
    fn block_of_entry_roundtrips() {
        let t = table(300, 200);
        for idx in [0usize, 1, 150, 299] {
            let b = t.block_of_entry(idx);
            let (start, end) = (t.core.block_starts[b] as usize, {
                t.core
                    .block_starts
                    .get(b + 1)
                    .map_or(t.core.entries.len(), |&s| s as usize)
            });
            assert!((start..end).contains(&idx));
        }
    }

    #[test]
    fn empty_table_is_harmless() {
        let t = SsTable::build(TableId(0), Vec::new(), 1024);
        assert!(t.is_empty());
        assert_eq!(t.block_count(), 0);
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.block_for(b"x"), None);
        assert_eq!(t.min_key(), None);
    }

    #[test]
    fn clones_share_one_allocation() {
        let t = table(500, 256);
        let c = t.clone();
        assert!(t.shares_storage_with(&c));
        // Distinct builds never share, even with identical contents.
        let rebuilt = table(500, 256);
        assert!(!t.shares_storage_with(&rebuilt));
        // Shared data reads identically through either handle.
        assert_eq!(t.get(b"user000123"), c.get(b"user000123"));
    }

    #[test]
    fn bloom_filters_skip_most_absent_lookups() {
        let t = table(1000, 512);
        let fps = (0..1000)
            .filter(|i| t.may_contain(format!("ghost{i}").as_bytes()))
            .count();
        assert!(fps < 50, "bloom ineffective: {fps} false positives");
    }
}
