//! The block cache.
//!
//! Tracks which SSTable blocks are resident in a node's RAM, with byte-exact
//! capacity accounting and O(1) LRU eviction (hash map + intrusive doubly
//! linked list over a slab). Whether a read is a cache hit or a disk seek is
//! *the* determinant of latency on the paper's HDD testbed, so this is a real
//! cache, not a hit-rate dial.

use simkit::FastHashMap;

use crate::sstable::TableId;

/// Identity of one cacheable block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Owning table.
    pub table: TableId,
    /// Block index within the table.
    pub block: u32,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: BlockKey,
    bytes: u64,
    prev: u32,
    next: u32,
}

/// Hit/miss counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A byte-bounded LRU cache of SSTable blocks.
#[derive(Debug, Clone)]
pub struct BlockCache {
    // Seeded fast-hash map: block keys are two small integers looked up on
    // every cached read, where SipHash was pure overhead.
    map: FastHashMap<BlockKey, u32>,
    slab: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: u64,
    used: u64,
    stats: CacheStats,
}

impl BlockCache {
    /// Create a cache bounded at `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            map: FastHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            used: 0,
            stats: CacheStats::default(),
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset the counters (not the contents); used at the warm-up boundary.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.slab[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slab[idx as usize].prev = NIL;
        self.slab[idx as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up a block, marking it most-recently-used on a hit. Returns the
    /// block's cached size, or `None` on a miss.
    pub fn get(&mut self, key: BlockKey) -> Option<u64> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                Some(self.slab[idx as usize].bytes)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek residency without touching LRU order or stats.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Insert (or refresh) a block of `bytes`, evicting LRU blocks as needed.
    /// Blocks larger than the whole cache are ignored.
    pub fn insert(&mut self, key: BlockKey, bytes: u64) {
        if bytes > self.capacity {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Refresh: update size and recency.
            let old = self.slab[idx as usize].bytes;
            self.used = self.used - old + bytes;
            self.slab[idx as usize].bytes = bytes;
            self.detach(idx);
            self.push_front(idx);
        } else {
            while self.used + bytes > self.capacity {
                self.evict_lru();
            }
            let node = Node {
                key,
                bytes,
                prev: NIL,
                next: NIL,
            };
            let idx = if let Some(free) = self.free.pop() {
                self.slab[free as usize] = node;
                free
            } else {
                self.slab.push(node);
                (self.slab.len() - 1) as u32
            };
            self.map.insert(key, idx);
            self.used += bytes;
            self.push_front(idx);
        }
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert!(idx != NIL, "evicting from an empty cache");
        self.detach(idx);
        let node = &self.slab[idx as usize];
        self.used -= node.bytes;
        self.map.remove(&node.key);
        self.free.push(idx);
        self.stats.evictions += 1;
    }

    /// Drop everything (a process restart: caches come back cold).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
    }

    /// Drop every block belonging to `table` (called when compaction deletes
    /// the table).
    pub fn invalidate_table(&mut self, table: TableId) {
        let victims: Vec<BlockKey> = self
            .map
            .keys()
            .filter(|k| k.table == table)
            .copied()
            .collect();
        for key in victims {
            let idx = self.map.remove(&key).expect("present");
            self.detach(idx);
            self.used -= self.slab[idx as usize].bytes;
            self.free.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bk(t: u64, b: u32) -> BlockKey {
        BlockKey {
            table: TableId(t),
            block: b,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = BlockCache::new(1000);
        c.insert(bk(1, 0), 100);
        assert_eq!(c.get(bk(1, 0)), Some(100));
        assert_eq!(c.get(bk(1, 1)), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = BlockCache::new(300);
        c.insert(bk(1, 0), 100);
        c.insert(bk(1, 1), 100);
        c.insert(bk(1, 2), 100);
        // Touch block 0 so block 1 becomes LRU.
        c.get(bk(1, 0));
        c.insert(bk(1, 3), 100);
        assert!(c.contains(bk(1, 0)));
        assert!(!c.contains(bk(1, 1)), "LRU block should be evicted");
        assert!(c.contains(bk(1, 2)));
        assert!(c.contains(bk(1, 3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_byte_exact() {
        let mut c = BlockCache::new(250);
        c.insert(bk(1, 0), 100);
        c.insert(bk(1, 1), 100);
        assert_eq!(c.used(), 200);
        // 100 more would exceed 250: one eviction needed.
        c.insert(bk(1, 2), 100);
        assert_eq!(c.used(), 200);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn oversized_blocks_are_rejected() {
        let mut c = BlockCache::new(50);
        c.insert(bk(1, 0), 100);
        assert!(c.is_empty());
    }

    #[test]
    fn refresh_updates_size_and_recency() {
        let mut c = BlockCache::new(300);
        c.insert(bk(1, 0), 100);
        c.insert(bk(1, 1), 100);
        c.insert(bk(1, 0), 150); // refresh, now MRU and bigger
        assert_eq!(c.used(), 250);
        c.insert(bk(1, 2), 50);
        // Adding 50 exceeds 300 by 0? used=250+50=300 == capacity, fits.
        assert_eq!(c.used(), 300);
        c.insert(bk(1, 3), 10);
        // block 1 was LRU.
        assert!(!c.contains(bk(1, 1)));
        assert!(c.contains(bk(1, 0)));
    }

    #[test]
    fn invalidate_table_removes_only_that_table() {
        let mut c = BlockCache::new(1000);
        c.insert(bk(1, 0), 100);
        c.insert(bk(1, 1), 100);
        c.insert(bk(2, 0), 100);
        c.invalidate_table(TableId(1));
        assert!(!c.contains(bk(1, 0)));
        assert!(!c.contains(bk(1, 1)));
        assert!(c.contains(bk(2, 0)));
        assert_eq!(c.used(), 100);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut c = BlockCache::new(100);
        for i in 0..1000u32 {
            c.insert(bk(1, i), 100);
        }
        // One slot live at a time; slab should stay tiny.
        assert!(c.slab.len() <= 2, "slab grew to {}", c.slab.len());
    }

    #[test]
    fn hit_rate_math() {
        let mut c = BlockCache::new(1000);
        c.insert(bk(1, 0), 10);
        c.get(bk(1, 0));
        c.get(bk(1, 0));
        c.get(bk(9, 9));
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn heavy_churn_keeps_invariants() {
        let mut c = BlockCache::new(10_000);
        for i in 0..10_000u32 {
            c.insert(bk((i % 7) as u64, i % 501), 64 + (i as u64 % 200));
            if i % 3 == 0 {
                c.get(bk((i % 5) as u64, i % 97));
            }
            assert!(c.used() <= c.capacity());
        }
        // Map and list agree on membership count.
        let mut count = 0;
        let mut idx = c.head;
        while idx != NIL {
            count += 1;
            idx = c.slab[idx as usize].next;
        }
        assert_eq!(count, c.len());
    }
}
