//! Size-tiered compaction policy (Cassandra's STCS; HBase's default is the
//! same idea under a different name).
//!
//! Tables of similar size are grouped into buckets; when a bucket collects
//! `min_threshold` tables they are merged into one. This bounds the number
//! of runs a point read must consult.

use crate::sstable::TableId;

/// Size-tiered compaction configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeTieredPolicy {
    /// Minimum tables in a bucket before compacting it (Cassandra: 4).
    pub min_threshold: usize,
    /// Maximum tables merged at once (Cassandra: 32).
    pub max_threshold: usize,
    /// A table joins a bucket when its size is within
    /// `[bucket_low, bucket_high] ×` the bucket's average size.
    pub bucket_low: f64,
    /// See `bucket_low`.
    pub bucket_high: f64,
}

impl Default for SizeTieredPolicy {
    fn default() -> Self {
        Self {
            min_threshold: 4,
            max_threshold: 32,
            bucket_low: 0.5,
            bucket_high: 1.5,
        }
    }
}

impl SizeTieredPolicy {
    /// Choose tables to merge, or `None` if no bucket is ripe. Input is
    /// `(table, bytes)` for every live table; output lists the chosen ids.
    pub fn pick(&self, tables: &[(TableId, u64)]) -> Option<Vec<TableId>> {
        if tables.len() < self.min_threshold {
            return None;
        }
        // Sort by size, then greedily bucket neighbours of similar size.
        let mut sorted: Vec<_> = tables.to_vec();
        sorted.sort_by_key(|&(_, bytes)| bytes);
        let mut buckets: Vec<(f64, Vec<TableId>)> = Vec::new(); // (avg, members)
        for (id, bytes) in sorted {
            // Floor at one byte so empty tables bucket together instead of
            // each forming a singleton (0 is outside any multiplicative band).
            let b = (bytes as f64).max(1.0);
            match buckets.last_mut() {
                Some((avg, members))
                    if b >= *avg * self.bucket_low && b <= *avg * self.bucket_high =>
                {
                    let n = members.len() as f64;
                    *avg = (*avg * n + b) / (n + 1.0);
                    members.push(id);
                }
                _ => buckets.push((b, vec![id])),
            }
        }
        buckets
            .into_iter()
            .map(|(_, members)| members)
            .filter(|m| m.len() >= self.min_threshold)
            .max_by_key(|m| m.len())
            .map(|mut m| {
                m.truncate(self.max_threshold);
                m
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, bytes: u64) -> (TableId, u64) {
        (TableId(id), bytes)
    }

    #[test]
    fn too_few_tables_is_none() {
        let p = SizeTieredPolicy::default();
        assert_eq!(p.pick(&[t(1, 100), t(2, 100), t(3, 100)]), None);
    }

    #[test]
    fn similar_sizes_form_a_bucket() {
        let p = SizeTieredPolicy::default();
        let picked = p
            .pick(&[t(1, 100), t(2, 110), t(3, 95), t(4, 105)])
            .expect("ripe bucket");
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn dissimilar_sizes_do_not_mix() {
        let p = SizeTieredPolicy::default();
        // Three small and three huge: no bucket reaches four members.
        let tables = [
            t(1, 100),
            t(2, 100),
            t(3, 100),
            t(4, 1_000_000),
            t(5, 1_000_000),
            t(6, 1_000_000),
        ];
        assert_eq!(p.pick(&tables), None);
    }

    #[test]
    fn picks_fullest_bucket() {
        let p = SizeTieredPolicy {
            min_threshold: 2,
            ..Default::default()
        };
        let tables = [
            t(1, 100),
            t(2, 100),
            t(3, 1_000_000),
            t(4, 1_000_000),
            t(5, 1_000_000),
        ];
        let picked = p.pick(&tables).expect("bucket");
        assert_eq!(picked.len(), 3);
        assert!(picked.contains(&TableId(3)));
    }

    #[test]
    fn respects_max_threshold() {
        let p = SizeTieredPolicy {
            min_threshold: 2,
            max_threshold: 3,
            ..Default::default()
        };
        let tables: Vec<_> = (0..10).map(|i| t(i, 100)).collect();
        assert_eq!(p.pick(&tables).expect("bucket").len(), 3);
    }

    #[test]
    fn zero_byte_tables_do_not_divide_by_zero() {
        let p = SizeTieredPolicy {
            min_threshold: 2,
            ..Default::default()
        };
        let picked = p.pick(&[t(1, 0), t(2, 0), t(3, 0), t(4, 0)]);
        assert!(picked.is_some());
    }
}
