//! Bloom filters over SSTable keys.
//!
//! A read only touches a sorted run if the run's bloom filter says the key
//! might be there, which is the main reason LSM point reads don't degrade
//! linearly with run count. Uses the standard double-hashing scheme
//! (Kirsch–Mitzenmacher) over two FNV-style 64-bit hashes.

/// A fixed-size bloom filter.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
}

/// The two Kirsch–Mitzenmacher base hashes of `key`, independent of any
/// particular filter's size. A point read that consults many runs computes
/// this once and probes every filter with
/// [`BloomFilter::may_contain_hashed`]; the probe *positions* (and therefore
/// every filter's bit pattern and false-positive set) are byte-identical to
/// hashing per filter.
#[inline]
pub fn hash_pair(key: &[u8]) -> (u64, u64) {
    let h1 = hash64(key, 0x51ed);
    let h2 = hash64(key, 0xc0de) | 1; // odd => full-period stepping
    (h1, h2)
}

#[inline]
fn hash64(data: &[u8], seed: u64) -> u64 {
    // FNV-1a with a seeded basis, finalized with a splitmix-style mixer to
    // decorrelate the two streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

impl BloomFilter {
    /// Build a filter sized for `expected_items` at roughly
    /// `bits_per_key` bits each (10 bits/key ≈ 1% false positives).
    pub fn with_capacity(expected_items: usize, bits_per_key: u32) -> Self {
        let nbits = ((expected_items.max(1) as u64) * bits_per_key as u64).max(64);
        // Optimal k = ln2 * bits/key, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 12);
        Self {
            bits: vec![0u64; nbits.div_ceil(64) as usize],
            nbits,
            k,
        }
    }

    #[inline]
    fn positions(&self, (h1, h2): (u64, u64)) -> impl Iterator<Item = u64> + '_ {
        let nbits = self.nbits;
        (0..self.k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % nbits)
    }

    /// Record a key.
    pub fn insert(&mut self, key: &[u8]) {
        // Open-coded positions: borrowing `self` for the position iterator
        // while mutating `bits` would not check, and the old collect-to-Vec
        // workaround cost an allocation per inserted key (hot during every
        // flush and compaction).
        let (h1, h2) = hash_pair(key);
        for i in 0..self.k as u64 {
            let pos = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
    }

    /// True if the key *might* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_hashed(hash_pair(key))
    }

    /// [`BloomFilter::may_contain`] with the key's [`hash_pair`] precomputed
    /// by the caller — the form the LSM read path uses so one key hashed
    /// once can probe every run's filter.
    pub fn may_contain_hashed(&self, hashes: (u64, u64)) -> bool {
        self.positions(hashes)
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Size of the filter in bytes.
    pub fn byte_len(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    /// Number of hash probes per operation.
    pub fn hashes(&self) -> u32 {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000 {
            f.insert(format!("user{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(f.may_contain(format!("user{i}").as_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::with_capacity(10_000, 10);
        for i in 0..10_000 {
            f.insert(format!("user{i}").as_bytes());
        }
        let fps = (0..10_000)
            .filter(|i| f.may_contain(format!("absent{i}").as_bytes()))
            .count();
        let rate = fps as f64 / 10_000.0;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn hashed_probe_matches_keyed_probe() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000 {
            f.insert(format!("user{i}").as_bytes());
        }
        for i in 0..2000 {
            let key = format!("user{i}");
            assert_eq!(
                f.may_contain(key.as_bytes()),
                f.may_contain_hashed(hash_pair(key.as_bytes()))
            );
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::with_capacity(100, 10);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn sizing_scales_with_capacity() {
        let small = BloomFilter::with_capacity(100, 10);
        let large = BloomFilter::with_capacity(100_000, 10);
        assert!(large.byte_len() > small.byte_len());
        assert!(small.hashes() >= 1);
    }

    #[test]
    fn tiny_capacity_still_works() {
        let mut f = BloomFilter::with_capacity(0, 10);
        f.insert(b"x");
        assert!(f.may_contain(b"x"));
    }
}
