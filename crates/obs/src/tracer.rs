//! The tracer handle stores embed, and the sampling configuration the
//! driver uses to decide which ops to watch.

use crate::span::{StageSpan, BG_OP};
use crate::stage::Stage;
use simkit::SimTime;
use std::collections::HashSet;

/// Per-run span sink. Owned by each cluster; the driver enables it,
/// registers the attempt tokens it wants traced, and collects the spans at
/// the end of the run.
///
/// Determinism contract: every method is pure bookkeeping. No randomness,
/// no event scheduling, no simulated-resource access — so a run with
/// tracing enabled is bit-identical (metrics, counters, event order) to
/// the same run with tracing disabled.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    watched: HashSet<u64>,
    spans: Vec<StageSpan>,
}

impl Tracer {
    /// A disabled tracer (the store default). Recording is a no-op until
    /// [`Tracer::enable`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn span recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// True once [`Tracer::enable`] has been called. Instrumentation sites
    /// with non-trivial span bookkeeping gate on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Register an attempt token as traced. Spans for unwatched tokens are
    /// dropped at the recording site.
    pub fn watch(&mut self, token: u64) {
        if token != BG_OP {
            self.watched.insert(token);
        }
    }

    /// True when `token` is registered for tracing (and tracing is on).
    #[inline]
    pub fn watching(&self, token: u64) -> bool {
        self.enabled && self.watched.contains(&token)
    }

    /// Record that `op` spent `[start, end)` in `stage` on `node`.
    /// No-op unless the tracer is enabled, the token is watched, and the
    /// interval is non-empty — so the common (disabled) case is one branch.
    #[inline]
    pub fn record(&mut self, op: u64, stage: Stage, node: u32, start: SimTime, end: SimTime) {
        if !self.enabled || end <= start || !self.watched.contains(&op) {
            return;
        }
        self.spans.push(StageSpan {
            op,
            stage,
            node,
            start,
            end,
        });
    }

    /// Record a background span (GC pause, fire-and-forget repair write)
    /// that belongs to no client op. Gated only on the enable bit.
    #[inline]
    pub fn record_bg(&mut self, stage: Stage, node: u32, start: SimTime, end: SimTime) {
        if !self.enabled || end <= start {
            return;
        }
        self.spans.push(StageSpan {
            op: BG_OP,
            stage,
            node,
            start,
            end,
        });
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Drain all recorded spans (recording order — deterministic, since the
    /// event loop is).
    pub fn take_spans(&mut self) -> Vec<StageSpan> {
        std::mem::take(&mut self.spans)
    }
}

/// Driver-side trace sampling configuration: trace every Nth logical op,
/// with a seed-derived phase offset so different seeds sample different
/// ops but the same seed always samples the same ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sample period: trace one in every `sample_every` logical ops.
    /// `0` disables tracing entirely (the default).
    pub sample_every: u64,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        Self { sample_every: 0 }
    }

    /// Trace one in every `n` logical ops (`0` = off).
    pub fn every(n: u64) -> Self {
        Self { sample_every: n }
    }

    /// Trace every logical op.
    pub fn all() -> Self {
        Self::every(1)
    }

    /// True when any sampling is configured.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Should the logical op with 0-based issue index `index` be traced
    /// under `seed`? Deterministic in `(self, index, seed)`.
    pub fn samples(&self, index: u64, seed: u64) -> bool {
        match self.sample_every {
            0 => false,
            n => index % n == splitmix64(seed) % n,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// splitmix64 finalizer (same mixer the sweep engine uses for cell seeds):
/// decorrelates the sampling phase from the raw seed value.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.watch(7);
        t.record(7, Stage::ServerCpu, 0, 10, 20);
        t.record_bg(Stage::GcPause, 1, 0, 100);
        assert_eq!(t.span_count(), 0);
        assert!(!t.watching(7));
    }

    #[test]
    fn enabled_tracer_filters_on_watch_set_and_interval() {
        let mut t = Tracer::new();
        t.enable();
        t.watch(7);
        t.record(7, Stage::ServerCpu, 0, 10, 20); // kept
        t.record(8, Stage::ServerCpu, 0, 10, 20); // unwatched
        t.record(7, Stage::ServerCpu, 0, 20, 20); // empty
        t.record(7, Stage::ServerCpu, 0, 20, 10); // inverted
        t.record_bg(Stage::GcPause, 1, 0, 100); // background, unconditional
        assert!(t.watching(7));
        assert!(!t.watching(8));
        let spans = t.take_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].op, 7);
        assert_eq!(spans[1].op, BG_OP);
        assert_eq!(t.span_count(), 0);
    }

    #[test]
    fn bg_token_is_never_watched() {
        let mut t = Tracer::new();
        t.enable();
        t.watch(BG_OP);
        t.record(BG_OP, Stage::ServerCpu, 0, 0, 5);
        assert_eq!(t.span_count(), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_periodic() {
        let cfg = TraceConfig::every(8);
        let hits: Vec<u64> = (0..64).filter(|&i| cfg.samples(i, 42)).collect();
        assert_eq!(hits.len(), 8);
        for w in hits.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
        let again: Vec<u64> = (0..64).filter(|&i| cfg.samples(i, 42)).collect();
        assert_eq!(hits, again);
        assert!(!TraceConfig::off().samples(0, 42));
        assert!(TraceConfig::all().samples(5, 9));
        assert!(!TraceConfig::off().enabled());
        assert!(TraceConfig::all().enabled());
    }
}
