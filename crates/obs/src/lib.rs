//! Deterministic per-op span tracing for the simulated stores.
//!
//! Every client operation a store executes passes through a sequence of
//! *stages* — client/coordinator hops, CPU service, WAL group commit,
//! replica RPC fan-out, quorum waits, read-repair blocks. This crate
//! records those stages as virtual-time intervals ([`StageSpan`]) keyed by
//! the driver's attempt token, then reconstructs per-op [`SpanTree`]s,
//! extracts the [critical path](critical_path) (whose segment lengths sum
//! *exactly* to the op's measured latency), aggregates time-in-stage per
//! [`OpKind`](storage::OpKind) ([`StageAgg`]), and exports sampled traces
//! as JSONL/CSV ([`RunTrace`]).
//!
//! Determinism is the design constraint: the [`Tracer`] is pure
//! bookkeeping. It never draws randomness, never schedules events, and
//! never touches simulated resources, so enabling or disabling tracing
//! cannot perturb a run — metrics are bit-identical either way. Sampling
//! ([`TraceConfig`]) is seed-derived (every-Nth op with a splitmix64
//! offset), so the same seed always traces the same ops.
//!
//! Span recording happens on store hot paths where a panic would take down
//! a whole sweep worker; unwraps are banned outright (CI greps for the
//! attribute below staying in place).
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod agg;
mod critical;
mod export;
mod span;
mod stage;
mod tracer;

pub use agg::{StageAgg, StageCell};
pub use critical::{critical_path, Segment};
pub use export::{OpTrace, RunTrace};
pub use span::{SpanNode, SpanTree, StageSpan, BG_OP, CLIENT_NODE};
pub use stage::Stage;
pub use tracer::{TraceConfig, Tracer};
