//! Stage-attribution aggregation: time-in-stage totals per op kind,
//! accumulated from critical paths.

use crate::critical::Segment;
use crate::stage::Stage;
use std::collections::BTreeMap;
use storage::OpKind;

/// Accumulated statistics for one `(OpKind, Stage)` cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCell {
    /// Total virtual µs spent in this stage across all recorded paths.
    pub total_us: u64,
    /// Number of path segments that contributed.
    pub segments: u64,
    /// Longest single segment, µs.
    pub max_us: u64,
}

/// Per-`OpKind` critical-path time-in-stage aggregation.
///
/// Because each recorded path tiles its op's latency exactly, for every
/// kind `sum over stages of total_us == sum of op latencies`; stage
/// *shares* therefore partition measured latency with nothing missing and
/// nothing double-counted.
#[derive(Debug, Clone, Default)]
pub struct StageAgg {
    cells: BTreeMap<(OpKind, Stage), StageCell>,
    ops: BTreeMap<OpKind, u64>,
}

impl StageAgg {
    /// An empty aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one op's critical path into the aggregation.
    pub fn record_path(&mut self, kind: OpKind, path: &[Segment]) {
        *self.ops.entry(kind).or_insert(0) += 1;
        for seg in path {
            let len = seg.len();
            if len == 0 {
                continue;
            }
            let cell = self.cells.entry((kind, seg.stage)).or_default();
            cell.total_us += len;
            cell.segments += 1;
            cell.max_us = cell.max_us.max(len);
        }
    }

    /// Number of ops recorded for `kind`.
    pub fn ops(&self, kind: OpKind) -> u64 {
        self.ops.get(&kind).copied().unwrap_or(0)
    }

    /// Op kinds present, in `OpKind` order.
    pub fn kinds(&self) -> Vec<OpKind> {
        self.ops.keys().copied().collect()
    }

    /// The cell for `(kind, stage)`, if any segment landed there.
    pub fn cell(&self, kind: OpKind, stage: Stage) -> Option<StageCell> {
        self.cells.get(&(kind, stage)).copied()
    }

    /// Total critical-path µs for `kind` (== the sum of its op latencies).
    pub fn total_us(&self, kind: OpKind) -> u64 {
        self.cells
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, c)| c.total_us)
            .sum()
    }

    /// Mean µs per op spent in `stage` for `kind` (0 when no ops).
    pub fn mean_us(&self, kind: OpKind, stage: Stage) -> f64 {
        let ops = self.ops(kind);
        if ops == 0 {
            return 0.0;
        }
        self.cell(kind, stage).map_or(0.0, |c| c.total_us as f64) / ops as f64
    }

    /// Fraction of `kind`'s total latency attributed to `stage` (0..=1).
    pub fn share(&self, kind: OpKind, stage: Stage) -> f64 {
        let total = self.total_us(kind);
        if total == 0 {
            return 0.0;
        }
        self.cell(kind, stage).map_or(0.0, |c| c.total_us as f64) / total as f64
    }

    /// Iterate all non-empty cells in deterministic `(OpKind, Stage)` order.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, Stage, StageCell)> + '_ {
        self.cells.iter().map(|(&(k, s), &c)| (k, s, c))
    }

    /// Merge another aggregation into this one.
    pub fn merge(&mut self, other: &StageAgg) {
        for (&kind, &n) in &other.ops {
            *self.ops.entry(kind).or_insert(0) += n;
        }
        for (&key, &c) in &other.cells {
            let cell = self.cells.entry(key).or_default();
            cell.total_us += c.total_us;
            cell.segments += c.segments;
            cell.max_us = cell.max_us.max(c.max_us);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::span::CLIENT_NODE;

    fn seg(stage: Stage, start: u64, end: u64) -> Segment {
        Segment {
            stage,
            node: CLIENT_NODE,
            start,
            end,
        }
    }

    #[test]
    fn shares_partition_total_latency() {
        let mut agg = StageAgg::new();
        agg.record_path(
            OpKind::Update,
            &[seg(Stage::ClientSend, 0, 10), seg(Stage::WalCommit, 10, 90)],
        );
        agg.record_path(
            OpKind::Update,
            &[
                seg(Stage::ClientSend, 100, 105),
                seg(Stage::WalCommit, 105, 200),
            ],
        );
        assert_eq!(agg.ops(OpKind::Update), 2);
        assert_eq!(agg.total_us(OpKind::Update), 90 + 100);
        let share_sum: f64 = Stage::ALL
            .iter()
            .map(|&s| agg.share(OpKind::Update, s))
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        assert_eq!(agg.mean_us(OpKind::Update, Stage::ClientSend), 7.5);
        let cell = agg.cell(OpKind::Update, Stage::WalCommit).unwrap();
        assert_eq!(cell.segments, 2);
        assert_eq!(cell.max_us, 95);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageAgg::new();
        a.record_path(OpKind::Read, &[seg(Stage::QuorumWait, 0, 40)]);
        let mut b = StageAgg::new();
        b.record_path(OpKind::Read, &[seg(Stage::QuorumWait, 0, 60)]);
        a.merge(&b);
        assert_eq!(a.ops(OpKind::Read), 2);
        assert_eq!(a.total_us(OpKind::Read), 100);
        assert_eq!(a.cell(OpKind::Read, Stage::QuorumWait).unwrap().max_us, 60);
        assert_eq!(a.kinds(), vec![OpKind::Read]);
    }

    #[test]
    fn empty_agg_is_all_zero() {
        let agg = StageAgg::new();
        assert_eq!(agg.ops(OpKind::Scan), 0);
        assert_eq!(agg.mean_us(OpKind::Scan, Stage::DiskIo), 0.0);
        assert_eq!(agg.share(OpKind::Scan, Stage::DiskIo), 0.0);
        assert_eq!(agg.iter().count(), 0);
    }
}
