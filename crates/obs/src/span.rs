//! Raw spans and the per-op containment tree.

use crate::stage::Stage;
use simkit::SimTime;

/// Node id used for client-side spans (the driver is not a cluster node).
pub const CLIENT_NODE: u32 = u32::MAX;

/// Op id used for background spans (GC pauses, repair writes) that belong
/// to no client operation. Store-internal ops already use token `0` for
/// fire-and-forget work, so the tracer routes it to the background lane.
pub const BG_OP: u64 = 0;

/// One recorded virtual-time interval: operation `op` spent
/// `[start, end)` in `stage` on `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// The attempt token the span was recorded under (the driver maps
    /// attempt tokens back to logical ops at export time).
    pub op: u64,
    /// The lifecycle stage.
    pub stage: Stage,
    /// Cluster node id, or [`CLIENT_NODE`] for driver-side spans.
    pub node: u32,
    /// Interval start, virtual µs.
    pub start: SimTime,
    /// Interval end, virtual µs (exclusive; always `> start`).
    pub end: SimTime,
}

impl StageSpan {
    /// Interval length in µs.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True for degenerate zero-length spans (the tracer never records
    /// these, but synthetic spans may be constructed elsewhere).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Deterministic sort key: start ascending, then wider-first, then
    /// stage, then node. Parents sort before the children they contain.
    pub fn sort_key(&self) -> (SimTime, std::cmp::Reverse<SimTime>, Stage, u32) {
        (
            self.start,
            std::cmp::Reverse(self.end),
            self.stage,
            self.node,
        )
    }
}

/// One node of a [`SpanTree`]: a span plus the spans nested inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The interval itself.
    pub span: StageSpan,
    /// Spans wholly contained in `span`, in start order.
    pub children: Vec<SpanNode>,
}

/// Per-op span tree built by interval containment: span B is a child of A
/// when `A.start <= B.start && B.end <= A.end` and A is the tightest such
/// enclosure. Concurrent (overlapping but not nested) spans become
/// siblings under the nearest common container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level spans (contained by nothing), in start order.
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// Build the containment tree from an arbitrary span set. Ordering is
    /// deterministic: spans are sorted by [`StageSpan::sort_key`] first.
    pub fn build(mut spans: Vec<StageSpan>) -> Self {
        spans.retain(|s| !s.is_empty());
        spans.sort_by_key(StageSpan::sort_key);
        let mut roots: Vec<SpanNode> = Vec::new();
        // Stack of not-yet-closed ancestors, outermost first.
        let mut stack: Vec<SpanNode> = Vec::new();
        for span in spans {
            while let Some(top) = stack.last() {
                let contains = top.span.start <= span.start && span.end <= top.span.end;
                if contains {
                    break;
                }
                let done = match stack.pop() {
                    Some(n) => n,
                    None => break,
                };
                Self::attach(&mut stack, &mut roots, done);
            }
            stack.push(SpanNode {
                span,
                children: Vec::new(),
            });
        }
        while let Some(done) = stack.pop() {
            Self::attach(&mut stack, &mut roots, done);
        }
        SpanTree { roots }
    }

    fn attach(stack: &mut [SpanNode], roots: &mut Vec<SpanNode>, node: SpanNode) {
        match stack.last_mut() {
            Some(top) => top.children.push(node),
            None => roots.push(node),
        }
    }

    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        fn count(nodes: &[SpanNode]) -> usize {
            nodes.iter().map(|n| 1 + count(&n.children)).sum()
        }
        count(&self.roots)
    }

    /// Maximum nesting depth (0 for an empty tree).
    pub fn depth(&self) -> usize {
        fn depth(nodes: &[SpanNode]) -> usize {
            nodes
                .iter()
                .map(|n| 1 + depth(&n.children))
                .max()
                .unwrap_or(0)
        }
        depth(&self.roots)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn span(stage: Stage, start: u64, end: u64) -> StageSpan {
        StageSpan {
            op: 1,
            stage,
            node: 0,
            start,
            end,
        }
    }

    #[test]
    fn nesting_follows_containment() {
        // QuorumWait [10,50] contains two replica hops; Reconcile [50,60]
        // is a sibling root.
        let tree = SpanTree::build(vec![
            span(Stage::Reconcile, 50, 60),
            span(Stage::QuorumWait, 10, 50),
            span(Stage::ReplicaRpc, 10, 20),
            span(Stage::ReplicaRpc, 30, 45),
        ]);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.roots[0].span.stage, Stage::QuorumWait);
        assert_eq!(tree.roots[0].children.len(), 2);
        assert_eq!(tree.roots[1].span.stage, Stage::Reconcile);
        assert_eq!(tree.span_count(), 4);
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn overlapping_spans_become_siblings() {
        let tree = SpanTree::build(vec![
            span(Stage::ServerCpu, 0, 30),
            span(Stage::DiskIo, 20, 50), // overlaps, not nested
        ]);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn zero_length_spans_are_dropped_and_build_is_deterministic() {
        let spans = vec![
            span(Stage::ServerCpu, 5, 5),
            span(Stage::ClientSend, 0, 10),
            span(Stage::ServerCpu, 2, 8),
        ];
        let a = SpanTree::build(spans.clone());
        let mut rev = spans;
        rev.reverse();
        let b = SpanTree::build(rev);
        assert_eq!(a, b);
        assert_eq!(a.span_count(), 2);
    }
}
