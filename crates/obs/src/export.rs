//! Trace assembly and deterministic JSONL/CSV export.
//!
//! Serialization is hand-rolled (the build is offline; no serde): every
//! emitted value is an integer, a bool, or a known-safe label, so the
//! JSON subset needed is trivial. Output ordering is fully deterministic —
//! ops ascending by logical id, spans by [`StageSpan::sort_key`] — so the
//! same run always produces byte-identical exports.

use crate::span::StageSpan;
use simkit::SimTime;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use storage::OpKind;

/// The assembled trace of one sampled logical operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Logical op id (the settled attempt's token).
    pub op: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Virtual time the driver issued the first attempt.
    pub issued: SimTime,
    /// Virtual time the op settled back at the client.
    pub settled: SimTime,
    /// Whether the op settled successfully.
    pub ok: bool,
    /// All spans recorded for the op (any attempt), sorted by
    /// [`StageSpan::sort_key`].
    pub spans: Vec<StageSpan>,
}

impl OpTrace {
    /// Measured client latency, µs.
    pub fn latency_us(&self) -> u64 {
        self.settled.saturating_sub(self.issued)
    }
}

/// A full run's sampled traces plus background activity spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunTrace {
    /// Sampled ops, ascending by logical id.
    pub ops: Vec<OpTrace>,
    /// Background spans (GC pauses, fire-and-forget repair writes).
    pub background: Vec<StageSpan>,
}

impl RunTrace {
    /// Render as JSON Lines: one object per sampled op, then one trailing
    /// object holding the background spans.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let _ = write!(
                out,
                "{{\"op\":{},\"kind\":\"{}\",\"issued\":{},\"settled\":{},\"latency_us\":{},\"ok\":{},\"spans\":[",
                op.op,
                op.kind.label(),
                op.issued,
                op.settled,
                op.latency_us(),
                op.ok
            );
            for (i, s) in op.spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_span_json(&mut out, s);
            }
            out.push_str("]}\n");
        }
        out.push_str("{\"background\":[");
        for (i, s) in self.background.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_span_json(&mut out, s);
        }
        out.push_str("]}\n");
        out
    }

    /// Render as CSV: one row per span, preceded by a header. Background
    /// spans carry an empty `kind` and op id 0.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("op,kind,ok,issued,settled,stage,node,start,end,len_us\n");
        for op in &self.ops {
            for s in &op.spans {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{}",
                    op.op,
                    op.kind.label(),
                    op.ok,
                    op.issued,
                    op.settled,
                    s.stage,
                    s.node,
                    s.start,
                    s.end,
                    s.len()
                );
            }
        }
        for s in &self.background {
            let _ = writeln!(
                out,
                "0,,,,,{},{},{},{},{}",
                s.stage,
                s.node,
                s.start,
                s.end,
                s.len()
            );
        }
        out
    }

    /// Write the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Write the CSV rendering to `path`.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Total spans across ops and background.
    pub fn span_count(&self) -> usize {
        self.ops.iter().map(|o| o.spans.len()).sum::<usize>() + self.background.len()
    }
}

fn write_span_json(out: &mut String, s: &StageSpan) {
    let _ = write!(
        out,
        "{{\"stage\":\"{}\",\"node\":{},\"start\":{},\"end\":{}}}",
        s.stage, s.node, s.start, s.end
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::span::CLIENT_NODE;
    use crate::stage::Stage;

    fn sample() -> RunTrace {
        RunTrace {
            ops: vec![OpTrace {
                op: 12,
                kind: OpKind::Read,
                issued: 100,
                settled: 160,
                ok: true,
                spans: vec![
                    StageSpan {
                        op: 12,
                        stage: Stage::ClientSend,
                        node: CLIENT_NODE,
                        start: 100,
                        end: 110,
                    },
                    StageSpan {
                        op: 12,
                        stage: Stage::QuorumWait,
                        node: 3,
                        start: 115,
                        end: 150,
                    },
                ],
            }],
            background: vec![StageSpan {
                op: 0,
                stage: Stage::GcPause,
                node: 1,
                start: 0,
                end: 40,
            }],
        }
    }

    #[test]
    fn jsonl_shape_is_stable() {
        let t = sample();
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"op\":12,\"kind\":\"READ\","));
        assert!(lines[0].contains("\"latency_us\":60"));
        assert!(
            lines[0].contains("{\"stage\":\"quorum_wait\",\"node\":3,\"start\":115,\"end\":150}")
        );
        assert!(lines[1].starts_with("{\"background\":["));
        assert!(lines[1].contains("gc_pause"));
        // Deterministic: same value renders identically.
        assert_eq!(jsonl, sample().to_jsonl());
    }

    #[test]
    fn csv_has_one_row_per_span() {
        let t = sample();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + t.span_count());
        assert_eq!(
            lines[0],
            "op,kind,ok,issued,settled,stage,node,start,end,len_us"
        );
        assert_eq!(
            lines[1],
            "12,READ,true,100,160,client_send,4294967295,100,110,10"
        );
        assert_eq!(lines[3], "0,,,,,gc_pause,1,0,40,40");
    }
}
