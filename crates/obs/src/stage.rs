//! The stage taxonomy: every instrumented interval is tagged with one of
//! these. The set is deliberately store-agnostic — both analogs map their
//! lifecycle onto it so fig6 can compare breakdowns side by side.

/// A lifecycle stage of a client operation (or background activity).
///
/// The discriminant order is the tie-break order for critical-path
/// extraction and the column order in exports, so it is part of the
/// deterministic output contract: append new stages at the end (before
/// [`Stage::Wait`]) rather than reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client → coordinator/regionserver request transfer (NIC + propagation).
    ClientSend,
    /// Coordinator / regionserver CPU service for the request itself.
    ServerCpu,
    /// Coordinator ↔ replica RPC hop (one direction).
    ReplicaRpc,
    /// Replica-side CPU work applying or serving the op.
    ReplicaWork,
    /// Waiting in the WAL group-commit queue for the current group to drain.
    WalQueue,
    /// WAL group commit: sync/pipeline flush until the entry is durable-acked.
    WalCommit,
    /// One DFS pipeline hop inside a WAL group commit.
    PipelineHop,
    /// Disk service (reads: block fetches; writes: commitlog sync).
    DiskIo,
    /// Coordinator waiting for the consistency level's replica quota.
    QuorumWait,
    /// Coordinator CPU reconciling replica responses (digest compare, merge).
    Reconcile,
    /// Read blocked on synchronous read-repair completing.
    RepairBlock,
    /// Memstore apply after WAL commit (HBase-side post-durability work).
    Apply,
    /// Per-row scan iteration CPU.
    ScanRows,
    /// Server → client response transfer.
    RespSend,
    /// Client-side retry backoff between attempts.
    RetryBackoff,
    /// A stop-the-world GC pause (background span; shows up on the critical
    /// path only indirectly, via inflated CPU waits).
    GcPause,
    /// A cross-region (WAN) network hop: replica RPC or WAL shipment whose
    /// endpoints sit in different datacenters.
    WanHop,
    /// Admission-control decision point: a zero-width span marks an op shed
    /// at the door (rejected/early-dropped before entering the server).
    AdmissionQueue,
    /// Synthetic filler for critical-path gaps no recorded span covers
    /// (e.g. event-queue ordering slack). Keeps stage sums exact.
    Wait,
}

impl Stage {
    /// All stages, in discriminant (= export column) order.
    pub const ALL: [Stage; 19] = [
        Stage::ClientSend,
        Stage::ServerCpu,
        Stage::ReplicaRpc,
        Stage::ReplicaWork,
        Stage::WalQueue,
        Stage::WalCommit,
        Stage::PipelineHop,
        Stage::DiskIo,
        Stage::QuorumWait,
        Stage::Reconcile,
        Stage::RepairBlock,
        Stage::Apply,
        Stage::ScanRows,
        Stage::RespSend,
        Stage::RetryBackoff,
        Stage::GcPause,
        Stage::WanHop,
        Stage::AdmissionQueue,
        Stage::Wait,
    ];

    /// Stable snake_case label used in exports and report columns.
    pub fn label(self) -> &'static str {
        match self {
            Stage::ClientSend => "client_send",
            Stage::ServerCpu => "server_cpu",
            Stage::ReplicaRpc => "replica_rpc",
            Stage::ReplicaWork => "replica_work",
            Stage::WalQueue => "wal_queue",
            Stage::WalCommit => "wal_commit",
            Stage::PipelineHop => "pipeline_hop",
            Stage::DiskIo => "disk_io",
            Stage::QuorumWait => "quorum_wait",
            Stage::Reconcile => "reconcile",
            Stage::RepairBlock => "repair_block",
            Stage::Apply => "apply",
            Stage::ScanRows => "scan_rows",
            Stage::RespSend => "resp_send",
            Stage::RetryBackoff => "retry_backoff",
            Stage::GcPause => "gc_pause",
            Stage::WanHop => "wan_hop",
            Stage::AdmissionQueue => "admission_queue",
            Stage::Wait => "wait",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_ordered() {
        let labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        // ALL is in discriminant order.
        for w in Stage::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(Stage::Wait.to_string(), "wait");
    }
}
