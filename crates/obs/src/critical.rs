//! Critical-path extraction: decompose an op's measured latency into a
//! gap-free sequence of stage segments.

use crate::span::{StageSpan, CLIENT_NODE};
use crate::stage::Stage;
use simkit::SimTime;

/// One critical-path segment. Segments tile `[issued, settled)` exactly:
/// each starts where the previous ends, so segment lengths sum to the
/// op's measured latency by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The stage the op was in during this segment.
    pub stage: Stage,
    /// The node the stage ran on ([`CLIENT_NODE`] for driver-side and
    /// synthetic segments).
    pub node: u32,
    /// Segment start, virtual µs.
    pub start: SimTime,
    /// Segment end, virtual µs.
    pub end: SimTime,
}

impl Segment {
    /// Segment length in µs.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True for degenerate segments (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Extract the critical path of an op that was issued at `issued` and
/// settled at `settled`, from its recorded spans.
///
/// The walk runs backwards from `settled`: at each cursor it picks the
/// span that *finished last* at or before the cursor (the stage whose
/// completion let the op progress), emits it, and jumps the cursor to that
/// span's start. Ties on end time prefer the **widest** span (smallest
/// start) — an enclosing wait like [`Stage::QuorumWait`] subsumes the
/// per-replica spans nested inside it — then lowest stage discriminant,
/// then lowest node id, so extraction is fully deterministic. Cursor gaps
/// no span covers become synthetic [`Stage::Wait`] segments, which keeps
/// the invariant exact:
///
/// `sum(segment.len()) == settled - issued`, in virtual time, always.
pub fn critical_path(issued: SimTime, settled: SimTime, spans: &[StageSpan]) -> Vec<Segment> {
    let mut path: Vec<Segment> = Vec::new();
    let mut cursor = settled;
    while cursor > issued {
        // The span finishing last at or before the cursor, with some of its
        // extent inside (issued, cursor]. Preference order: latest end,
        // then widest (earliest start), then lowest stage, then lowest node.
        let key = |s: &StageSpan| (std::cmp::Reverse(s.end), s.start, s.stage, s.node);
        let mut best: Option<&StageSpan> = None;
        for s in spans {
            if s.end > cursor || s.end <= issued || s.end <= s.start {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => key(s) < key(b),
            };
            if better {
                best = Some(s);
            }
        }
        match best {
            None => {
                // Nothing recorded before the cursor: the remainder is
                // uninstrumented driver/queue time.
                path.push(Segment {
                    stage: Stage::Wait,
                    node: CLIENT_NODE,
                    start: issued,
                    end: cursor,
                });
                cursor = issued;
            }
            Some(s) => {
                if s.end < cursor {
                    path.push(Segment {
                        stage: Stage::Wait,
                        node: CLIENT_NODE,
                        start: s.end,
                        end: cursor,
                    });
                }
                let start = s.start.max(issued);
                path.push(Segment {
                    stage: s.stage,
                    node: s.node,
                    start,
                    end: s.end,
                });
                cursor = start;
            }
        }
    }
    path.reverse();
    path
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn span(stage: Stage, node: u32, start: u64, end: u64) -> StageSpan {
        StageSpan {
            op: 1,
            stage,
            node,
            start,
            end,
        }
    }

    fn total(path: &[Segment]) -> u64 {
        path.iter().map(Segment::len).sum()
    }

    fn assert_tiles(path: &[Segment], issued: u64, settled: u64) {
        assert_eq!(total(path), settled - issued);
        assert_eq!(path.first().map(|s| s.start), Some(issued));
        assert_eq!(path.last().map(|s| s.end), Some(settled));
        for w in path.windows(2) {
            assert_eq!(w[0].end, w[1].start, "path has a gap or overlap");
        }
    }

    #[test]
    fn empty_spans_yield_one_wait_segment() {
        let path = critical_path(100, 250, &[]);
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].stage, Stage::Wait);
        assert_tiles(&path, 100, 250);
    }

    #[test]
    fn sequential_stages_chain_exactly() {
        let spans = vec![
            span(Stage::ClientSend, CLIENT_NODE, 0, 10),
            span(Stage::ServerCpu, 2, 10, 25),
            span(Stage::WalCommit, 2, 25, 80),
            span(Stage::RespSend, 2, 80, 95),
        ];
        let path = critical_path(0, 95, &spans);
        assert_eq!(
            path.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![
                Stage::ClientSend,
                Stage::ServerCpu,
                Stage::WalCommit,
                Stage::RespSend
            ]
        );
        assert_tiles(&path, 0, 95);
    }

    #[test]
    fn quorum_wait_subsumes_nested_replica_spans() {
        // Two replica ack hops nested in a QuorumWait that ends with the
        // second ack arriving: the tie on end=50 must resolve to the wider
        // QuorumWait, not the inner ReplicaRpc return hop.
        let spans = vec![
            span(Stage::QuorumWait, 1, 10, 50),
            span(Stage::ReplicaRpc, 2, 10, 30),
            span(Stage::ReplicaRpc, 3, 35, 50),
            span(Stage::Reconcile, 1, 50, 55),
        ];
        let path = critical_path(0, 55, &spans);
        assert_eq!(
            path.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![Stage::Wait, Stage::QuorumWait, Stage::Reconcile]
        );
        assert_tiles(&path, 0, 55);
    }

    #[test]
    fn gaps_between_spans_become_wait() {
        let spans = vec![
            span(Stage::ServerCpu, 0, 10, 20),
            span(Stage::DiskIo, 0, 35, 60),
        ];
        let path = critical_path(5, 70, &spans);
        assert_eq!(
            path.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![
                Stage::Wait,
                Stage::ServerCpu,
                Stage::Wait,
                Stage::DiskIo,
                Stage::Wait
            ]
        );
        assert_tiles(&path, 5, 70);
    }

    #[test]
    fn spans_outside_the_window_are_clipped_or_ignored() {
        let spans = vec![
            // Ends before issue: ignored.
            span(Stage::ClientSend, CLIENT_NODE, 0, 90),
            // Straddles issue: clipped to start at issued.
            span(Stage::ServerCpu, 1, 80, 120),
            // Ends after settle: ignored (can't be on the path to settle).
            span(Stage::RespSend, 1, 130, 300),
            span(Stage::DiskIo, 1, 120, 150),
        ];
        let path = critical_path(100, 150, &spans);
        assert_eq!(
            path.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![Stage::ServerCpu, Stage::DiskIo]
        );
        assert_tiles(&path, 100, 150);
    }

    #[test]
    fn duplicate_intervals_pick_lowest_stage_then_node() {
        let spans = vec![
            span(Stage::Reconcile, 4, 10, 20),
            span(Stage::ServerCpu, 9, 10, 20),
            span(Stage::ServerCpu, 2, 10, 20),
        ];
        let path = critical_path(10, 20, &spans);
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].stage, Stage::ServerCpu);
        assert_eq!(path[0].node, 2);
    }

    #[test]
    fn extraction_is_order_independent() {
        let mut spans = vec![
            span(Stage::ClientSend, CLIENT_NODE, 0, 12),
            span(Stage::QuorumWait, 0, 14, 60),
            span(Stage::ReplicaRpc, 1, 14, 60),
            span(Stage::RespSend, 0, 62, 70),
        ];
        let a = critical_path(0, 70, &spans);
        spans.reverse();
        let b = critical_path(0, 70, &spans);
        assert_eq!(a, b);
        assert_tiles(&a, 0, 70);
    }
}
