//! Applying a fault plan to a running cluster through its event queue.
//!
//! The driver owns the event queue, so the injector splits fault delivery
//! in two: [`FaultInjector::schedule`] enqueues one wrapper event per plan
//! entry at run start (absolute virtual times), and [`FaultInjector::fire`]
//! applies entry `index` when its wrapper event pops — at the exact virtual
//! instant, interleaved with client operations. Stores opt in by
//! implementing [`FaultTarget`], a uniform surface over crash, recover, and
//! hardware-degradation faults.

use simkit::{NodeId, Sim};

use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// The uniform fault surface a simulated store exposes to the injector.
///
/// Methods that can trigger follow-up work inside the store (crash-detection
/// timers, hinted-handoff replay) receive the simulation so they can
/// schedule their own events; the wrapper event type only needs to be
/// convertible from the store's internal event type, exactly as in the
/// store's own `submit`/`handle` surface.
pub trait FaultTarget {
    /// The store's internal event type.
    type Event;

    /// Number of fault-addressable nodes; faults naming a node at or past
    /// this count are skipped (relevant for randomized plans reused across
    /// cluster sizes).
    fn fault_nodes(&self) -> usize;

    /// Nodes comprising datacenter `region`, for region-scoped faults. The
    /// default — no regions — makes targets without a geo topology skip
    /// region faults rather than mis-apply them.
    fn region_nodes(&self, region: u32) -> Vec<NodeId> {
        let _ = region;
        Vec::new()
    }

    /// Crash `node` so it stops serving requests.
    fn apply_crash<W: From<Self::Event>>(&mut self, sim: &mut Sim<W>, node: NodeId);

    /// Bring `node` back online, scheduling any repair work the store
    /// performs on recovery.
    fn apply_recover<W: From<Self::Event>>(&mut self, sim: &mut Sim<W>, node: NodeId);

    /// Multiply `node`'s disk service times by `factor`.
    fn apply_slow_disk(&mut self, node: NodeId, factor: u32);

    /// Return `node`'s disk to nominal speed.
    fn apply_restore_disk(&mut self, node: NodeId);

    /// Add `extra_us` of egress delay to every message `node` sends.
    fn apply_net_delay(&mut self, node: NodeId, extra_us: u64);

    /// Return `node`'s NIC to nominal latency.
    fn apply_restore_net(&mut self, node: NodeId);
}

/// Dispatches one [`FaultPlan`] into a [`FaultTarget`] at exact virtual
/// instants.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    applied: u64,
    skipped: u64,
}

impl FaultInjector {
    /// An injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            applied: 0,
            skipped: 0,
        }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the plan schedules no faults (the injector is inert).
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Enqueue one wrapper event per plan entry at its absolute fire time.
    /// `wrap` maps the entry's plan index to the caller's event type; an
    /// empty plan schedules nothing.
    pub fn schedule<E>(&self, sim: &mut Sim<E>, mut wrap: impl FnMut(usize) -> E) {
        for index in 0..self.plan.len() {
            sim.schedule_at(self.plan.events()[index].at, wrap(index));
        }
    }

    /// Apply plan entry `index` to `target` now. Returns the applied event,
    /// or `None` when the index is unknown or names a node the target does
    /// not have (counted in [`FaultInjector::skipped`]).
    pub fn fire<T, W>(
        &mut self,
        sim: &mut Sim<W>,
        target: &mut T,
        index: usize,
    ) -> Option<FaultEvent>
    where
        T: FaultTarget,
        W: From<T::Event>,
    {
        let ev = *self.plan.get(index)?;
        // Region-scoped kinds expand to one node-scoped fault per member of
        // the target's datacenter; a target that does not place any node in
        // the region (no geo topology, or fewer regions) skips the fault.
        if let Some(region) = ev.kind.region() {
            let members = target.region_nodes(region);
            if members.is_empty() {
                self.skipped += 1;
                return None;
            }
            for &node in &members {
                match ev.kind {
                    FaultKind::CrashRegion { .. } => target.apply_crash(sim, node),
                    FaultKind::RecoverRegion { .. } => target.apply_recover(sim, node),
                    FaultKind::PartitionRegion { extra_us, .. } => {
                        target.apply_net_delay(node, extra_us)
                    }
                    _ => target.apply_restore_net(node), // HealRegion
                }
            }
            self.applied += 1;
            return Some(ev);
        }
        if !matches!(ev.kind.node(), Some(node) if node.index() < target.fault_nodes()) {
            self.skipped += 1;
            return None;
        }
        match ev.kind {
            FaultKind::Crash { node } => target.apply_crash(sim, node),
            FaultKind::Recover { node } => target.apply_recover(sim, node),
            FaultKind::SlowDisk { node, factor } => target.apply_slow_disk(node, factor),
            FaultKind::RestoreDisk { node } => target.apply_restore_disk(node),
            FaultKind::NetDelay { node, extra_us } => target.apply_net_delay(node, extra_us),
            FaultKind::RestoreNet { node } => target.apply_restore_net(node),
            // Region kinds were handled (and returned) above.
            FaultKind::CrashRegion { .. }
            | FaultKind::RecoverRegion { .. }
            | FaultKind::PartitionRegion { .. }
            | FaultKind::HealRegion { .. } => {}
        }
        self.applied += 1;
        Some(ev)
    }

    /// Fault events applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Fault events skipped because their node was out of range.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe target that records every call it receives.
    struct Probe {
        nodes: usize,
        log: Vec<(u64, String)>,
    }

    impl FaultTarget for Probe {
        type Event = usize;

        fn fault_nodes(&self) -> usize {
            self.nodes
        }

        fn apply_crash<W: From<usize>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
            self.log.push((sim.now(), format!("crash {}", node.0)));
        }

        fn apply_recover<W: From<usize>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
            self.log.push((sim.now(), format!("recover {}", node.0)));
        }

        fn apply_slow_disk(&mut self, node: NodeId, factor: u32) {
            self.log.push((0, format!("slow {} x{}", node.0, factor)));
        }

        fn apply_restore_disk(&mut self, node: NodeId) {
            self.log.push((0, format!("restore-disk {}", node.0)));
        }

        fn apply_net_delay(&mut self, node: NodeId, extra_us: u64) {
            self.log
                .push((0, format!("delay {} +{}", node.0, extra_us)));
        }

        fn apply_restore_net(&mut self, node: NodeId) {
            self.log.push((0, format!("restore-net {}", node.0)));
        }
    }

    #[test]
    fn fires_events_at_their_virtual_instants() {
        let plan = FaultPlan::new()
            .crash_window(NodeId(1), 1_000, 3_000)
            .slow_disk_window(NodeId(0), 4, 2_000, 2_500);
        let mut injector = FaultInjector::new(plan);
        let mut probe = Probe {
            nodes: 3,
            log: Vec::new(),
        };
        let mut sim: Sim<usize> = Sim::new(1);
        injector.schedule(&mut sim, |i| i);
        assert_eq!(sim.pending(), 4);
        while let Some(index) = sim.next() {
            injector.fire(&mut sim, &mut probe, index);
        }
        assert_eq!(injector.applied(), 4);
        assert_eq!(
            probe.log,
            vec![
                (1_000, "crash 1".to_string()),
                (0, "slow 0 x4".to_string()),
                (0, "restore-disk 0".to_string()),
                (3_000, "recover 1".to_string()),
            ]
        );
    }

    #[test]
    fn out_of_range_nodes_are_skipped() {
        let plan = FaultPlan::new().crash_at(NodeId(9), 100);
        let mut injector = FaultInjector::new(plan);
        let mut probe = Probe {
            nodes: 3,
            log: Vec::new(),
        };
        let mut sim: Sim<usize> = Sim::new(1);
        assert!(injector.fire(&mut sim, &mut probe, 0).is_none());
        assert!(injector.fire(&mut sim, &mut probe, 7).is_none());
        assert_eq!(injector.applied(), 0);
        assert_eq!(injector.skipped(), 1, "unknown index is not a skip");
        assert!(probe.log.is_empty());
    }

    /// A probe with two 2-node regions.
    struct GeoProbe(Probe);

    impl FaultTarget for GeoProbe {
        type Event = usize;

        fn fault_nodes(&self) -> usize {
            self.0.nodes
        }

        fn region_nodes(&self, region: u32) -> Vec<NodeId> {
            let base = region * 2;
            if base as usize >= self.0.nodes {
                return Vec::new();
            }
            vec![NodeId(base), NodeId(base + 1)]
        }

        fn apply_crash<W: From<usize>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
            self.0.apply_crash(sim, node)
        }
        fn apply_recover<W: From<usize>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
            self.0.apply_recover(sim, node)
        }
        fn apply_slow_disk(&mut self, node: NodeId, factor: u32) {
            self.0.apply_slow_disk(node, factor)
        }
        fn apply_restore_disk(&mut self, node: NodeId) {
            self.0.apply_restore_disk(node)
        }
        fn apply_net_delay(&mut self, node: NodeId, extra_us: u64) {
            self.0.apply_net_delay(node, extra_us)
        }
        fn apply_restore_net(&mut self, node: NodeId) {
            self.0.apply_restore_net(node)
        }
    }

    #[test]
    fn region_faults_expand_to_every_member_node() {
        let plan = FaultPlan::new()
            .crash_region_window(1, 1_000, 3_000)
            .partition_region_window(0, 500, 1_500, 2_000);
        let mut injector = FaultInjector::new(plan);
        let mut probe = GeoProbe(Probe {
            nodes: 4,
            log: Vec::new(),
        });
        let mut sim: Sim<usize> = Sim::new(1);
        injector.schedule(&mut sim, |i| i);
        while let Some(index) = sim.next() {
            injector.fire(&mut sim, &mut probe, index);
        }
        assert_eq!(injector.applied(), 4);
        assert_eq!(
            probe.0.log,
            vec![
                (1_000, "crash 2".to_string()),
                (1_000, "crash 3".to_string()),
                (0, "delay 0 +500".to_string()),
                (0, "delay 1 +500".to_string()),
                (0, "restore-net 0".to_string()),
                (0, "restore-net 1".to_string()),
                (3_000, "recover 2".to_string()),
                (3_000, "recover 3".to_string()),
            ]
        );
    }

    #[test]
    fn region_faults_skip_targets_without_the_region() {
        let plan = FaultPlan::new().crash_region_at(7, 100);
        let mut injector = FaultInjector::new(plan.clone());
        // The plain probe has no region_nodes override: every region fault
        // is skipped, not mis-applied.
        let mut probe = Probe {
            nodes: 3,
            log: Vec::new(),
        };
        let mut sim: Sim<usize> = Sim::new(1);
        assert!(injector.fire(&mut sim, &mut probe, 0).is_none());
        assert_eq!(injector.skipped(), 1);
        assert!(probe.log.is_empty());
        // A geo probe with fewer regions skips the out-of-range region too.
        let mut injector = FaultInjector::new(plan);
        let mut geo = GeoProbe(Probe {
            nodes: 4,
            log: Vec::new(),
        });
        assert!(injector.fire(&mut sim, &mut geo, 0).is_none());
        assert_eq!(injector.skipped(), 1);
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let injector = FaultInjector::new(FaultPlan::new());
        let mut sim: Sim<usize> = Sim::new(1);
        injector.schedule(&mut sim, |i| i);
        assert!(injector.is_empty());
        assert_eq!(sim.pending(), 0);
    }
}
