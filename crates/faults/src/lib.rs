//! # faults — deterministic fault injection for the simulated clusters
//!
//! The paper benchmarks the *cost* of replication (latency and throughput
//! versus replication factor and consistency level); replication exists to
//! buy *fault tolerance*. This crate supplies the benefit side of that
//! trade-off: a declarative, seed-deterministic way to crash, recover, and
//! degrade nodes mid-run so availability experiments (fig4) can measure how
//! each store rides through failures.
//!
//! * [`FaultPlan`] — a time-ordered schedule of [`FaultEvent`]s (crash /
//!   recover at absolute virtual times, transient slow-disk and
//!   network-delay windows, or a randomized plan derived via splitmix64
//!   from the cell seed).
//! * [`FaultTarget`] — the uniform fail/recover/degrade surface both store
//!   analogs implement.
//! * [`FaultInjector`] — schedules one wrapper event per plan entry into
//!   the driver's `Sim` queue and applies entries when they pop, so faults
//!   land at exact virtual instants interleaved with client operations.
//!
//! Everything is plain data plus explicit dispatch: an empty plan adds no
//! events and draws no randomness, leaving fault-free runs bit-identical to
//! builds without the subsystem.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod injector;
pub mod plan;

pub use injector::{FaultInjector, FaultTarget};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
