//! Declarative, seed-deterministic fault schedules.
//!
//! A [`FaultPlan`] is a time-ordered list of [`FaultEvent`]s expressed in
//! absolute virtual time. Plans are plain data: building one performs no
//! side effects and draws no randomness from the simulation RNG, so an
//! empty plan leaves a run bit-identical to one with no fault machinery at
//! all. Randomized plans ([`FaultPlan::randomized`]) derive every choice
//! from their own splitmix64 stream seeded by the cell seed, keeping them
//! reproducible and independent of the workload's random stream.

use simkit::{NodeId, SimTime};

/// What a single fault does to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash a node: it stops serving requests until recovered.
    Crash {
        /// The victim node.
        node: NodeId,
    },
    /// Bring a crashed node back online (triggering any repair work the
    /// store schedules on recovery, e.g. hinted-handoff replay).
    Recover {
        /// The recovering node.
        node: NodeId,
    },
    /// Begin a slow-disk window: every disk service time on the node is
    /// multiplied by `factor` until restored.
    SlowDisk {
        /// The degraded node.
        node: NodeId,
        /// Service-time multiplier (≥ 2 to have any effect).
        factor: u32,
    },
    /// End a slow-disk window.
    RestoreDisk {
        /// The node whose disk returns to nominal speed.
        node: NodeId,
    },
    /// Begin a network-delay window: every message leaving the node pays an
    /// extra fixed delay until restored.
    NetDelay {
        /// The delayed node.
        node: NodeId,
        /// Extra egress delay per message, microseconds.
        extra_us: u64,
    },
    /// End a network-delay window.
    RestoreNet {
        /// The node whose NIC returns to nominal latency.
        node: NodeId,
    },
    /// Crash every node of one datacenter (geo region): a whole-DC outage.
    /// The injector expands this to a per-node crash using the target's
    /// region assignment; targets without that region skip the fault.
    CrashRegion {
        /// The victim region (datacenter index).
        region: u32,
    },
    /// Bring every node of a crashed datacenter back online.
    RecoverRegion {
        /// The recovering region.
        region: u32,
    },
    /// Partition a datacenter from the rest of the cluster: every node in
    /// the region pays `extra_us` of egress delay per message (a congested
    /// or flapping WAN link rather than a clean cut, so quorum waits grow
    /// instead of requests vanishing).
    PartitionRegion {
        /// The partitioned region.
        region: u32,
        /// Extra egress delay per message, microseconds.
        extra_us: u64,
    },
    /// End a datacenter partition.
    HealRegion {
        /// The region whose WAN link returns to nominal latency.
        region: u32,
    },
}

impl FaultKind {
    /// The node this fault applies to; `None` for region-scoped kinds.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            FaultKind::Crash { node }
            | FaultKind::Recover { node }
            | FaultKind::SlowDisk { node, .. }
            | FaultKind::RestoreDisk { node }
            | FaultKind::NetDelay { node, .. }
            | FaultKind::RestoreNet { node } => Some(node),
            FaultKind::CrashRegion { .. }
            | FaultKind::RecoverRegion { .. }
            | FaultKind::PartitionRegion { .. }
            | FaultKind::HealRegion { .. } => None,
        }
    }

    /// The datacenter this fault applies to; `None` for node-scoped kinds.
    pub fn region(&self) -> Option<u32> {
        match *self {
            FaultKind::CrashRegion { region }
            | FaultKind::RecoverRegion { region }
            | FaultKind::PartitionRegion { region, .. }
            | FaultKind::HealRegion { region } => Some(region),
            _ => None,
        }
    }
}

/// One fault at one virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute virtual time (µs from run start) at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative, time-ordered schedule of faults for one run.
///
/// Events are kept sorted by fire time; events at equal times preserve
/// insertion order, so a plan's effect is fully determined by how it was
/// built — never by container internals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; runs are unchanged).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in fire order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The event at `index` in fire order, if any.
    pub fn get(&self, index: usize) -> Option<&FaultEvent> {
        self.events.get(index)
    }

    /// Insert one event, keeping the plan sorted by time (stable for ties).
    pub fn push(&mut self, event: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
    }

    fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(FaultEvent { at, kind });
        self
    }

    /// Crash `node` at virtual time `at`.
    pub fn crash_at(self, node: NodeId, at: SimTime) -> Self {
        self.with(at, FaultKind::Crash { node })
    }

    /// Recover `node` at virtual time `at`.
    pub fn recover_at(self, node: NodeId, at: SimTime) -> Self {
        self.with(at, FaultKind::Recover { node })
    }

    /// Crash `node` at `down_at` and recover it at `up_at`.
    pub fn crash_window(self, node: NodeId, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(down_at < up_at, "crash window must have positive duration");
        self.crash_at(node, down_at).recover_at(node, up_at)
    }

    /// Multiply `node`'s disk service times by `factor` during `[from, to)`.
    pub fn slow_disk_window(self, node: NodeId, factor: u32, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "slow-disk window must have positive duration");
        self.with(from, FaultKind::SlowDisk { node, factor })
            .with(to, FaultKind::RestoreDisk { node })
    }

    /// Add `extra_us` of egress delay to `node` during `[from, to)`.
    pub fn net_delay_window(self, node: NodeId, extra_us: u64, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "net-delay window must have positive duration");
        self.with(from, FaultKind::NetDelay { node, extra_us })
            .with(to, FaultKind::RestoreNet { node })
    }

    /// Crash every node of datacenter `region` at virtual time `at`.
    pub fn crash_region_at(self, region: u32, at: SimTime) -> Self {
        self.with(at, FaultKind::CrashRegion { region })
    }

    /// Recover every node of datacenter `region` at virtual time `at`.
    pub fn recover_region_at(self, region: u32, at: SimTime) -> Self {
        self.with(at, FaultKind::RecoverRegion { region })
    }

    /// Crash datacenter `region` at `down_at` and recover it at `up_at`.
    pub fn crash_region_window(self, region: u32, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(down_at < up_at, "crash window must have positive duration");
        self.crash_region_at(region, down_at)
            .recover_region_at(region, up_at)
    }

    /// Partition datacenter `region` (every member pays `extra_us` egress
    /// delay) during `[from, to)`.
    pub fn partition_region_window(
        self,
        region: u32,
        extra_us: u64,
        from: SimTime,
        to: SimTime,
    ) -> Self {
        assert!(from < to, "partition window must have positive duration");
        self.with(from, FaultKind::PartitionRegion { region, extra_us })
            .with(to, FaultKind::HealRegion { region })
    }

    /// A randomized plan of 1–3 fault windows over `[0, horizon_us)`,
    /// derived entirely from `seed` via splitmix64: the same `(seed, nodes,
    /// horizon_us)` triple always yields the same plan.
    ///
    /// Windows start in the middle portion of the horizon so warm-up and
    /// the tail of the run stay fault-free, and each window picks a node, a
    /// fault kind (crash / slow disk / net delay), and a duration of up to a
    /// quarter horizon.
    pub fn randomized(seed: u64, nodes: u32, horizon_us: u64) -> Self {
        if nodes == 0 || horizon_us < 16 {
            return Self::new();
        }
        let mut state = seed;
        let mut plan = Self::new();
        let count = 1 + splitmix64(&mut state) % 3;
        for _ in 0..count {
            let node = NodeId((splitmix64(&mut state) % u64::from(nodes)) as u32);
            let from = horizon_us / 8 + splitmix64(&mut state) % (horizon_us / 2);
            let len = 1 + horizon_us / 16 + splitmix64(&mut state) % (horizon_us / 4);
            let to = (from + len).min(horizon_us);
            plan = match splitmix64(&mut state) % 3 {
                0 => plan.crash_window(node, from, to),
                1 => {
                    let factor = 2 + (splitmix64(&mut state) % 7) as u32;
                    plan.slow_disk_window(node, factor, from, to)
                }
                _ => {
                    let extra_us = 200 + splitmix64(&mut state) % 2_000;
                    plan.net_delay_window(node, extra_us, from, to)
                }
            };
        }
        plan
    }
}

/// One step of the splitmix64 sequence (same finalizer the sweep engine
/// uses for per-cell seed derivation).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_sorted_by_time() {
        let plan = FaultPlan::new()
            .recover_at(NodeId(0), 500)
            .crash_at(NodeId(0), 100)
            .crash_at(NodeId(1), 300);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![100, 300, 500]);
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let plan = FaultPlan::new()
            .crash_at(NodeId(0), 100)
            .recover_at(NodeId(1), 100);
        assert!(matches!(plan.events()[0].kind, FaultKind::Crash { .. }));
        assert!(matches!(plan.events()[1].kind, FaultKind::Recover { .. }));
    }

    #[test]
    fn crash_window_expands_to_pair() {
        let plan = FaultPlan::new().crash_window(NodeId(2), 1_000, 5_000);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::Crash { node: NodeId(2) });
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::Recover { node: NodeId(2) }
        );
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_crash_window_is_rejected() {
        let _ = FaultPlan::new().crash_window(NodeId(0), 5_000, 5_000);
    }

    #[test]
    fn randomized_is_seed_deterministic() {
        let a = FaultPlan::randomized(7, 5, 1_000_000);
        let b = FaultPlan::randomized(7, 5, 1_000_000);
        assert_eq!(a, b);
        let c = FaultPlan::randomized(8, 5, 1_000_000);
        assert_ne!(a, c, "different seeds should (here) give different plans");
    }

    #[test]
    fn randomized_stays_within_bounds() {
        for seed in 0..50u64 {
            let plan = FaultPlan::randomized(seed, 5, 1_000_000);
            assert!(!plan.is_empty());
            for ev in plan.events() {
                assert!(ev.at <= 1_000_000);
                assert!(ev.kind.node().is_some_and(|n| n.index() < 5));
            }
        }
    }

    #[test]
    fn randomized_degenerate_inputs_give_empty_plan() {
        assert!(FaultPlan::randomized(1, 0, 1_000_000).is_empty());
        assert!(FaultPlan::randomized(1, 5, 0).is_empty());
    }

    #[test]
    fn kind_reports_its_node() {
        assert_eq!(FaultKind::Crash { node: NodeId(3) }.node(), Some(NodeId(3)));
        assert_eq!(
            FaultKind::NetDelay {
                node: NodeId(4),
                extra_us: 100
            }
            .node(),
            Some(NodeId(4))
        );
        assert_eq!(FaultKind::Crash { node: NodeId(3) }.region(), None);
    }

    #[test]
    fn region_kinds_report_region_not_node() {
        let k = FaultKind::CrashRegion { region: 2 };
        assert_eq!(k.node(), None);
        assert_eq!(k.region(), Some(2));
        let plan = FaultPlan::new()
            .crash_region_window(1, 1_000, 5_000)
            .partition_region_window(2, 25_000, 2_000, 3_000);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.events()[0].kind, FaultKind::CrashRegion { region: 1 });
        assert_eq!(
            plan.events()[3].kind,
            FaultKind::RecoverRegion { region: 1 }
        );
    }
}
