//! # geo — geo-replication subsystem
//!
//! The paper's §6 lists a geo-distributed testbed as future work; this crate
//! supplies the pieces the simulation needs to model one:
//!
//! * [`GeoConfig`] — a serde-free builder (like `CStoreConfig`) holding the
//!   region count, per-region rack layout and the WAN delay model. The
//!   25 ms one-way inter-region default is the constant the old hand-run
//!   `extension_geo.csv` experiment hard-coded; it is promoted here so every
//!   consumer shares one knob.
//! * [`Snitch`] — the node → datacenter lookup replica placement and the
//!   datacenter-aware consistency levels consult, mirroring Cassandra's
//!   endpoint snitch.
//! * [`Strategy`] — replica placement: [`Strategy::Simple`] walks ring
//!   successors (Cassandra's `SimpleStrategy`), while
//!   [`Strategy::NetworkTopology`] fills per-datacenter replica quotas
//!   (`NetworkTopologyStrategy`).
//!
//! Everything is deterministic: WAN jitter is applied once, at matrix build
//! time, from a seeded splitmix64 — two builds of the same `GeoConfig`
//! produce byte-identical matrices.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use simkit::{NodeId, SimTime, Topology};

/// One-way inter-region delay the old extension scaffolding hard-coded
/// (25 ms), kept as the default for [`GeoConfig`].
pub const DEFAULT_INTER_REGION_US: u64 = 25_000;

/// Geo-topology parameters: regions × racks layout plus the WAN delay model.
///
/// Plain public fields with a [`Default`], in the style of `CStoreConfig`;
/// tweak fields directly or chain the `with_*` builders.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// Number of regions (datacenters).
    pub regions: u32,
    /// Racks per region; nodes within a region spread round-robin.
    pub racks_per_region: u32,
    /// Base one-way inter-region delay in µs (applied to every region pair
    /// before jitter).
    pub inter_region_us: u64,
    /// Per-direction WAN jitter as a fraction of `inter_region_us`:
    /// each ordered region pair's delay is drawn uniformly from
    /// `base * [1 - jitter, 1 + jitter]`, making the matrix asymmetric.
    /// Zero (the default) keeps the matrix uniform.
    pub wan_jitter: f64,
    /// Seed for the jitter draw; the matrix is a pure function of
    /// `(seed, regions, inter_region_us, wan_jitter)`.
    pub jitter_seed: u64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        Self {
            regions: 3,
            racks_per_region: 1,
            inter_region_us: DEFAULT_INTER_REGION_US,
            wan_jitter: 0.0,
            jitter_seed: 0x6E0,
        }
    }
}

impl GeoConfig {
    /// Config with `regions` datacenters and defaults for everything else.
    pub fn with_regions(regions: u32) -> Self {
        Self {
            regions,
            ..Self::default()
        }
    }

    /// Set the base inter-region one-way delay.
    pub fn inter_region_us(mut self, us: u64) -> Self {
        self.inter_region_us = us;
        self
    }

    /// Set the WAN jitter fraction.
    pub fn wan_jitter(mut self, frac: f64) -> Self {
        self.wan_jitter = frac;
        self
    }

    /// The flattened `regions × regions` one-way WAN delay matrix
    /// (row-major, diagonal zero). Deterministic in the config.
    pub fn wan_matrix(&self) -> Vec<SimTime> {
        let r = self.regions as usize;
        let mut m = vec![0u64; r * r];
        for i in 0..r {
            for j in 0..r {
                if i == j {
                    continue;
                }
                let base = self.inter_region_us as f64;
                let us = if self.wan_jitter > 0.0 {
                    // Uniform in base * [1 - jitter, 1 + jitter], one draw
                    // per ordered pair so from->to and to->from differ.
                    let h = splitmix64(
                        self.jitter_seed ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9E37),
                    );
                    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                    base * (1.0 - self.wan_jitter + 2.0 * self.wan_jitter * unit)
                } else {
                    base
                };
                m[i * r + j] = us.round() as u64;
            }
        }
        m
    }

    /// Build the full [`Topology`]: `regions × racks_per_region` with
    /// `nodes_per_region` nodes each, local latencies as given, WAN from
    /// [`GeoConfig::wan_matrix`]. A single-region config degenerates to the
    /// classic layout and never consults the WAN matrix.
    pub fn topology(
        &self,
        nodes_per_region: usize,
        intra_rack_us: u64,
        inter_rack_us: u64,
    ) -> Topology {
        Topology::geo(
            self.regions,
            nodes_per_region,
            self.racks_per_region,
            intra_rack_us,
            inter_rack_us,
            self.wan_matrix(),
        )
    }
}

/// Node → datacenter lookup, mirroring Cassandra's endpoint snitch. A
/// snapshot of the topology's region assignment, cheap to clone and consult
/// on placement and ack-counting paths.
#[derive(Debug, Clone, Default)]
pub struct Snitch {
    region_of: Vec<u32>,
    regions: u32,
}

impl Snitch {
    /// Snitch for a flat single-datacenter cluster of `n` nodes.
    pub fn single_dc(n: usize) -> Self {
        Self {
            region_of: vec![0; n],
            regions: 1,
        }
    }

    /// Snitch reading the region assignment off a topology.
    pub fn from_topology(topology: &Topology) -> Self {
        Self {
            region_of: topology.region_map(),
            regions: topology.num_regions().max(1),
        }
    }

    /// Datacenter (region) index of a node.
    pub fn region(&self, node: NodeId) -> u32 {
        self.region_of[node.index()]
    }

    /// Number of datacenters.
    pub fn num_regions(&self) -> u32 {
        self.regions
    }

    /// Number of nodes the snitch knows about.
    pub fn len(&self) -> usize {
        self.region_of.len()
    }

    /// True when the snitch covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.region_of.is_empty()
    }

    /// True when both nodes sit in the same datacenter.
    pub fn same_region(&self, a: NodeId, b: NodeId) -> bool {
        self.region(a) == self.region(b)
    }
}

/// Replica placement strategy the ring consults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Cassandra's `SimpleStrategy`: the `rf` distinct ring successors of
    /// the primary, datacenter-blind.
    Simple,
    /// Cassandra's `NetworkTopologyStrategy`: walk ring successors and fill
    /// a per-datacenter replica quota (`per_dc[region]` replicas in each
    /// region). The `rf` argument to placement is ignored; the quota vector
    /// is authoritative.
    NetworkTopology {
        /// Replicas to place in each datacenter, indexed by region.
        per_dc: Vec<u32>,
    },
}

impl Strategy {
    /// `NetworkTopologyStrategy` with the same replica count in every of
    /// `regions` datacenters.
    pub fn network_topology(regions: u32, rf_per_dc: u32) -> Self {
        Strategy::NetworkTopology {
            per_dc: vec![rf_per_dc; regions as usize],
        }
    }

    /// Total replicas this strategy places for a given requested `rf`:
    /// `rf` itself for [`Strategy::Simple`], the quota sum for
    /// [`Strategy::NetworkTopology`].
    pub fn total_rf(&self, rf: u32) -> u32 {
        match self {
            Strategy::Simple => rf,
            Strategy::NetworkTopology { per_dc } => per_dc.iter().sum(),
        }
    }

    /// Replica set for a key whose primary lives at ring position
    /// `primary` in a cluster of `nodes` nodes. Walks ring successors;
    /// `Simple` takes the first `rf`, `NetworkTopology` takes nodes whose
    /// datacenter quota (per `snitch`) is still unfilled.
    pub fn place(&self, primary: usize, nodes: usize, rf: u32, snitch: &Snitch) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.place_into(primary, nodes, rf, snitch, &mut out);
        out
    }

    /// [`Strategy::place`] writing into a caller-provided buffer (cleared
    /// first). Placement runs once per client operation, so the hot store
    /// models keep one scratch buffer per cluster instead of allocating a
    /// replica `Vec` per op.
    pub fn place_into(
        &self,
        primary: usize,
        nodes: usize,
        rf: u32,
        snitch: &Snitch,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        match self {
            Strategy::Simple => {
                out.extend(
                    (0..rf.min(nodes as u32) as usize)
                        .map(|i| NodeId(((primary + i) % nodes) as u32)),
                );
            }
            Strategy::NetworkTopology { per_dc } => {
                let mut remaining: Vec<u32> = per_dc.clone();
                let total: u32 = remaining.iter().sum();
                out.reserve(total as usize);
                for i in 0..nodes {
                    let node = NodeId(((primary + i) % nodes) as u32);
                    let dc = snitch.region(node) as usize;
                    if dc < remaining.len() && remaining[dc] > 0 {
                        remaining[dc] -= 1;
                        out.push(node);
                        if out.len() == total as usize {
                            break;
                        }
                    }
                }
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_promotes_the_old_constant() {
        let cfg = GeoConfig::default();
        assert_eq!(cfg.inter_region_us, 25_000);
        let m = cfg.wan_matrix();
        assert_eq!(m.len(), 9);
        assert_eq!(m[0], 0);
        assert_eq!(m[1], 25_000);
        assert_eq!(m[5], 25_000);
    }

    #[test]
    fn jittered_matrix_is_asymmetric_and_deterministic() {
        let cfg = GeoConfig::with_regions(3).wan_jitter(0.2);
        let (a, b) = (cfg.wan_matrix(), cfg.wan_matrix());
        assert_eq!(a, b, "same config must build the same matrix");
        let r = 3usize;
        assert_ne!(a[1], a[r], "0->1 and 1->0 should differ under jitter");
        for i in 0..r {
            for j in 0..r {
                let us = a[i * r + j];
                if i == j {
                    assert_eq!(us, 0);
                } else {
                    assert!((20_000..=30_000).contains(&us), "delay {us} out of band");
                }
            }
        }
    }

    #[test]
    fn topology_from_config() {
        let cfg = GeoConfig::with_regions(2);
        let t = cfg.topology(3, 50, 500);
        assert_eq!(t.len(), 6);
        assert_eq!(t.num_regions(), 2);
        assert_eq!(t.prop_us(NodeId(0), NodeId(3)), 25_000);
        assert_eq!(t.prop_us(NodeId(0), NodeId(1)), 50);
    }

    #[test]
    fn snitch_reads_topology() {
        let t = GeoConfig::with_regions(2).topology(3, 50, 500);
        let s = Snitch::from_topology(&t);
        assert_eq!(s.num_regions(), 2);
        assert_eq!(s.region(NodeId(2)), 0);
        assert_eq!(s.region(NodeId(3)), 1);
        assert!(s.same_region(NodeId(0), NodeId(2)));
        assert!(!s.same_region(NodeId(0), NodeId(3)));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn simple_strategy_walks_successors() {
        let s = Snitch::single_dc(5);
        let got = Strategy::Simple.place(3, 5, 3, &s);
        assert_eq!(got, vec![NodeId(3), NodeId(4), NodeId(0)]);
        // rf clamps to node count.
        assert_eq!(Strategy::Simple.place(0, 2, 9, &s).len(), 2);
    }

    #[test]
    fn single_region_nts_matches_simple_bit_for_bit() {
        // Satellite acceptance: NTS with RF=N in the lone DC must place the
        // exact same replica list as SimpleStrategy, at every ring position.
        let snitch = Snitch::single_dc(7);
        let nts = Strategy::network_topology(1, 3);
        for primary in 0..7 {
            assert_eq!(
                nts.place(primary, 7, 3, &snitch),
                Strategy::Simple.place(primary, 7, 3, &snitch),
                "primary={primary}"
            );
        }
    }

    #[test]
    fn nts_fills_per_dc_quotas() {
        // 2 regions x 3 nodes, contiguous blocks (0..3 in DC0, 3..6 in DC1).
        let t = GeoConfig::with_regions(2).topology(3, 50, 500);
        let snitch = Snitch::from_topology(&t);
        let nts = Strategy::network_topology(2, 2);
        let got = nts.place(1, 6, 0, &snitch);
        // Walk from n1: n1 (DC0), n2 (DC0), n3 (DC1), n4 (DC1); quota filled.
        assert_eq!(got, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        let per_dc0 = got.iter().filter(|n| snitch.region(**n) == 0).count();
        assert_eq!(per_dc0, 2);
        assert_eq!(nts.total_rf(0), 4);
    }

    #[test]
    fn nts_quota_exceeding_dc_size_takes_what_exists() {
        let t = GeoConfig::with_regions(2).topology(2, 50, 500);
        let snitch = Snitch::from_topology(&t);
        let nts = Strategy::network_topology(2, 3); // only 2 nodes per DC
        let got = nts.place(0, 4, 0, &snitch);
        assert_eq!(got.len(), 4, "cannot place more replicas than nodes");
    }
}
