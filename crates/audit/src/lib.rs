//! Client-centric consistency auditing over recorded operation histories.
//!
//! The driver asserts *server-side* consistency (quorum overlap, per-key
//! watermarks via [`ycsb::StalenessTracker`]); this crate answers the
//! client's-eye question — "how stale is ONE, really?" — by recording every
//! settled operation as an invocation/response interval
//! ([`OpRecord`]: client, key, kind, issued, settled, value timestamp,
//! outcome) and replaying the history through pure checkers:
//!
//! * [`check_sessions`] — read-your-writes, monotonic-reads,
//!   monotonic-writes, and writes-follow-reads violation counts per
//!   fault-phase window ([`PhaseWindow`]);
//! * [`staleness`] — PBS-style (Δ,p)-staleness: the empirical probability
//!   that a read issued Δ after a write's acknowledgement returns it (or
//!   newer), plus per-read staleness-margin quantiles;
//! * [`linearize`] — a Wing&Gong-style per-key linearizability check:
//!   bounded search, budget-capped, reporting yes / violation /
//!   inconclusive.
//!
//! Determinism is the same design constraint `obs` follows: the
//! [`Recorder`] is pure bookkeeping. It never draws randomness, never
//! schedules events, and never touches simulated resources, so a run with
//! auditing disabled is bit-identical to one without the recording hooks,
//! and every checker is a pure function of the recorded history. Client
//! sampling ([`AuditConfig`]) is seed-derived, so the same seed always
//! records the same clients.
//!
//! Recording happens on the driver's op-settle hot path where a panic
//! would take down a whole sweep worker; unwraps are banned outright (CI
//! greps for the attribute below staying in place).
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod history;
mod linearize;
mod session;
pub mod staleness;

pub use history::{AuditConfig, Fate, History, OpRecord, Recorder, StaleCounts};
pub use linearize::{check_key, key_ops, Action, KeyOp, Verdict};
pub use session::{check_sessions, PhaseWindow, SessionCounts};
