//! Session-guarantee checkers: read-your-writes, monotonic reads,
//! monotonic writes, writes-follow-reads — replayed per client from a
//! recorded history and bucketed into fault-phase windows.
//!
//! The four guarantees (Terry et al.'s session guarantees) are the
//! client-visible contract weak consistency levels trade away. Each is
//! checked against the client's *program order*: an operation is ordered
//! after every own operation that settled at or before it was issued
//! (in-flight own operations are concurrent and impose no order — the
//! same convention the staleness tracker uses for foreign writes).

use simkit::{FastHashMap, SimTime};
use storage::Key;

use crate::history::{Fate, History};

/// One labelled fault-phase window `[start_us, end_us)` of virtual time.
/// Operations are bucketed by their settle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseWindow {
    /// Display label ("healthy", "crash", "recovery").
    pub label: &'static str,
    /// Window start, inclusive, virtual µs.
    pub start_us: SimTime,
    /// Window end, exclusive, virtual µs.
    pub end_us: SimTime,
}

impl PhaseWindow {
    /// True when `at` falls inside the window.
    pub fn contains(&self, at: SimTime) -> bool {
        at >= self.start_us && at < self.end_us
    }
}

/// Session-guarantee accounting for one phase window. A *check* is an
/// operation with at least one prior same-client operation to be ordered
/// against; a *violation* is a check that observed the guarantee broken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounts {
    /// Successful point reads settling in the window.
    pub reads: u64,
    /// Successful writes settling in the window.
    pub writes: u64,
    /// Stale reads (observed version older than the issue-time
    /// expectation; same definition as the staleness tracker).
    pub stale: u64,
    /// Of the stale reads, those that found no value at all.
    pub missing: u64,
    /// Reads with a prior own write on the key.
    pub ryw_checked: u64,
    /// Read-your-writes violations: a read that missed the client's own
    /// latest acknowledged write on the key.
    pub ryw_violations: u64,
    /// Reads with a prior own read on the key.
    pub mr_checked: u64,
    /// Monotonic-reads violations: a read that observed an older version
    /// than a previous own read of the key.
    pub mr_violations: u64,
    /// Writes with a prior own write on the key.
    pub mw_checked: u64,
    /// Monotonic-writes violations: a write serialized (by assigned
    /// version timestamp) before a previous own write of the key.
    pub mw_violations: u64,
    /// Writes with a prior own read on the key.
    pub wfr_checked: u64,
    /// Writes-follow-reads violations: a write serialized before a
    /// version a previous own read of the key had observed.
    pub wfr_violations: u64,
}

impl SessionCounts {
    /// All session-guarantee violations in the window.
    pub fn total_violations(&self) -> u64 {
        self.ryw_violations + self.mr_violations + self.mw_violations + self.wfr_violations
    }

    /// Read-your-writes violation rate over checked reads (0 when none).
    pub fn ryw_rate(&self) -> f64 {
        rate(self.ryw_violations, self.ryw_checked)
    }

    /// Monotonic-reads violation rate over checked reads (0 when none).
    pub fn mr_rate(&self) -> f64 {
        rate(self.mr_violations, self.mr_checked)
    }

    /// Stale fraction over the window's reads (0 when none).
    pub fn stale_rate(&self) -> f64 {
        rate(self.stale, self.reads)
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-(client, key) tape of settled events as `(settled, prefix-max)`
/// pairs, append-only in settle order, queried by "max value among
/// entries settled at or before t". The prefix-max makes the query a
/// binary search; settle order keeps the vector sorted by construction.
#[derive(Debug, Default)]
struct Tape {
    entries: FastHashMap<(u32, Key), Vec<(SimTime, u64)>>,
}

impl Tape {
    fn push(&mut self, client: u32, key: &Key, settled: SimTime, value: u64) {
        let v = self.entries.entry((client, key.clone())).or_default();
        let running = v.last().map_or(0, |&(_, m)| m).max(value);
        v.push((settled, running));
    }

    /// Max recorded value among entries settled at or before `at`;
    /// `None` when the client has no such entry for the key.
    fn max_through(&self, client: u32, key: &Key, at: SimTime) -> Option<u64> {
        let v = self.entries.get(&(client, key.clone()))?;
        let idx = v.partition_point(|&(t, _)| t <= at);
        if idx == 0 {
            None
        } else {
            Some(v[idx - 1].1)
        }
    }
}

/// Replay a history through the four session-guarantee checkers,
/// bucketing counts into the given phase windows by settle time.
/// Operations settling outside every window still advance the per-client
/// session state (the session spans the whole run) but are not counted.
///
/// Pure: deterministic in `(history, windows)` alone.
pub fn check_sessions(history: &History, windows: &[PhaseWindow]) -> Vec<SessionCounts> {
    let mut out = vec![SessionCounts::default(); windows.len()];
    // Own acked writes (value = assigned ts) and own reads (value =
    // observed ts, not-found as 0) per (client, key).
    let mut writes = Tape::default();
    let mut reads = Tape::default();
    for r in history.records() {
        let slot = windows
            .iter()
            .position(|w| w.contains(r.settled))
            .map(|i| &mut out[i]);
        match r.fate {
            Fate::Read {
                expected_ts,
                observed_ts,
            } => {
                let observed = observed_ts.unwrap_or(0);
                let own_write = writes.max_through(r.client, &r.key, r.issued);
                let own_read = reads.max_through(r.client, &r.key, r.issued);
                if let Some(c) = slot {
                    c.reads += 1;
                    if observed < expected_ts {
                        c.stale += 1;
                    }
                    if observed_ts.is_none() && expected_ts > 0 {
                        c.missing += 1;
                    }
                    if let Some(w) = own_write {
                        c.ryw_checked += 1;
                        if observed < w {
                            c.ryw_violations += 1;
                        }
                    }
                    if let Some(prev) = own_read {
                        c.mr_checked += 1;
                        if observed < prev {
                            c.mr_violations += 1;
                        }
                    }
                }
                reads.push(r.client, &r.key, r.settled, observed);
            }
            Fate::Write { ts } => {
                let own_write = writes.max_through(r.client, &r.key, r.issued);
                let own_read = reads.max_through(r.client, &r.key, r.issued);
                if let Some(c) = slot {
                    c.writes += 1;
                    if let Some(w) = own_write {
                        c.mw_checked += 1;
                        if ts < w {
                            c.mw_violations += 1;
                        }
                    }
                    if let Some(seen) = own_read {
                        c.wfr_checked += 1;
                        if ts < seen {
                            c.wfr_violations += 1;
                        }
                    }
                }
                writes.push(r.client, &r.key, r.settled, ts);
            }
            Fate::Scanned | Fate::Failed => {}
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use bytes::Bytes;
    use storage::OpKind;

    fn k(s: &str) -> Key {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn read(
        client: u32,
        key: &str,
        issued: SimTime,
        settled: SimTime,
        obs: Option<u64>,
    ) -> OpRecord {
        OpRecord {
            client,
            kind: OpKind::Read,
            key: k(key),
            issued,
            settled,
            measured: true,
            fate: Fate::Read {
                expected_ts: 0,
                observed_ts: obs,
            },
        }
    }

    fn write(client: u32, key: &str, issued: SimTime, settled: SimTime, ts: u64) -> OpRecord {
        OpRecord {
            client,
            kind: OpKind::Update,
            key: k(key),
            issued,
            settled,
            measured: true,
            fate: Fate::Write { ts },
        }
    }

    fn whole_run() -> Vec<PhaseWindow> {
        vec![PhaseWindow {
            label: "all",
            start_us: 0,
            end_us: SimTime::MAX,
        }]
    }

    #[test]
    fn clean_session_has_no_violations() {
        let h = History::from_records(vec![
            write(0, "a", 0, 10, 100),
            read(0, "a", 20, 30, Some(100)),
            read(0, "a", 40, 50, Some(100)),
            write(0, "a", 60, 70, 200),
        ]);
        let c = check_sessions(&h, &whole_run())[0];
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 2);
        assert_eq!((c.ryw_checked, c.ryw_violations), (2, 0));
        assert_eq!((c.mr_checked, c.mr_violations), (1, 0));
        assert_eq!((c.mw_checked, c.mw_violations), (1, 0));
        assert_eq!((c.wfr_checked, c.wfr_violations), (1, 0));
        assert_eq!(c.total_violations(), 0);
    }

    #[test]
    fn ryw_violation_when_own_write_is_missed() {
        let h = History::from_records(vec![
            write(0, "a", 0, 10, 100),
            read(0, "a", 20, 30, Some(50)), // older than own write
            read(0, "a", 40, 50, None),     // not-found after own write
        ]);
        let c = check_sessions(&h, &whole_run())[0];
        assert_eq!((c.ryw_checked, c.ryw_violations), (2, 2));
    }

    #[test]
    fn mr_violation_when_read_goes_backwards() {
        let h = History::from_records(vec![
            read(0, "a", 0, 10, Some(200)),
            read(0, "a", 20, 30, Some(100)), // backwards
            read(0, "a", 40, 50, Some(200)),
        ]);
        let c = check_sessions(&h, &whole_run())[0];
        assert_eq!((c.mr_checked, c.mr_violations), (2, 1));
        assert!((c.mr_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sessions_are_per_client_and_per_key() {
        let h = History::from_records(vec![
            write(0, "a", 0, 10, 100),
            read(1, "a", 20, 30, Some(50)), // other client: no RYW check
            read(0, "b", 20, 30, None),     // other key: no RYW check
        ]);
        let c = check_sessions(&h, &whole_run())[0];
        assert_eq!(c.ryw_checked, 0);
        assert_eq!(c.total_violations(), 0);
    }

    #[test]
    fn concurrent_own_ops_impose_no_order() {
        // The write settles while the read is in flight (issued before the
        // write settled): concurrent, so no RYW obligation.
        let h = History::from_records(vec![write(0, "a", 0, 25, 100), read(0, "a", 20, 30, None)]);
        let c = check_sessions(&h, &whole_run())[0];
        assert_eq!(c.ryw_checked, 0);
    }

    #[test]
    fn mw_and_wfr_catch_version_order_inversions() {
        let h = History::from_records(vec![
            write(0, "a", 0, 10, 200),
            write(0, "a", 20, 30, 100), // serialized before the prior write
            read(1, "b", 0, 10, Some(500)),
            write(1, "b", 20, 30, 400), // serialized before what it read
        ]);
        let c = check_sessions(&h, &whole_run())[0];
        assert_eq!((c.mw_checked, c.mw_violations), (1, 1));
        assert_eq!((c.wfr_checked, c.wfr_violations), (1, 1));
    }

    #[test]
    fn windows_bucket_by_settle_time_but_state_spans_the_run() {
        let windows = vec![
            PhaseWindow {
                label: "early",
                start_us: 0,
                end_us: 100,
            },
            PhaseWindow {
                label: "late",
                start_us: 100,
                end_us: SimTime::MAX,
            },
        ];
        let h = History::from_records(vec![
            write(0, "a", 0, 10, 100),        // early
            read(0, "a", 150, 160, Some(50)), // late; RYW state from early
        ]);
        let out = check_sessions(&h, &windows);
        assert_eq!(out[0].writes, 1);
        assert_eq!(out[1].reads, 1);
        assert_eq!((out[1].ryw_checked, out[1].ryw_violations), (1, 1));
        // Pure: replay gives identical counts.
        assert_eq!(check_sessions(&h, &windows), out);
    }
}
