//! The operation-history model: what the driver records, what the
//! checkers replay.

use simkit::SimTime;
use storage::{Key, OpKind};

/// Driver-side recording configuration: which clients' operations enter
/// the history.
///
/// `0` disables recording entirely — the driver adds no bookkeeping and
/// the run is bit-identical to one without the audit layer. When enabled,
/// *writes are always recorded* (every checker needs the global write
/// record as context: staleness margins resolve a read's expected
/// timestamp to the ack time of the write that produced it, and the
/// linearizability search needs every write on a key); reads and scans are
/// recorded for one in every `sample_clients_every` clients, with a
/// seed-derived phase so the same seed always samples the same clients.
/// Session guarantees are per-client contracts, so client-sampling keeps
/// every recorded session complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Record reads for one in every `sample_clients_every` clients.
    /// `0` disables recording entirely (the default).
    pub sample_clients_every: u64,
}

impl AuditConfig {
    /// Recording disabled (the default).
    pub fn off() -> Self {
        Self {
            sample_clients_every: 0,
        }
    }

    /// Record every client's operations.
    pub fn all() -> Self {
        Self::every(1)
    }

    /// Record reads for one in every `n` clients (`0` = off).
    pub fn every(n: u64) -> Self {
        Self {
            sample_clients_every: n,
        }
    }

    /// True when any recording is configured.
    pub fn enabled(&self) -> bool {
        self.sample_clients_every > 0
    }

    /// Should operations issued by `client` be recorded under `seed`?
    /// Deterministic in `(self, client, seed)`.
    pub fn samples_client(&self, client: u64, seed: u64) -> bool {
        match self.sample_clients_every {
            0 => false,
            n => client % n == splitmix64(seed) % n,
        }
    }
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// splitmix64 finalizer (the same mixer `obs` sampling and the sweep
/// engine use): decorrelates the sampling phase from the raw seed value.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How one recorded operation resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// A successful point read: the staleness expectation snapshotted at
    /// issue time (the newest acknowledged version, 0 when never written)
    /// and the version timestamp the read returned (`None` = not found).
    Read {
        /// Newest version acknowledged before the read was issued.
        expected_ts: u64,
        /// Version the read observed (`None` for not-found).
        observed_ts: Option<u64>,
    },
    /// A successful write (update, insert, delete, or the write phase of a
    /// read-modify-write) with the version timestamp the store assigned.
    Write {
        /// Version timestamp assigned to the write.
        ts: u64,
    },
    /// A successful scan (no per-version accounting).
    Scanned,
    /// A client-visible failure after retries gave up. A failed write is
    /// *indeterminate*: it may or may not have taken effect with a
    /// timestamp the client never learned — exactly the case the
    /// linearizability checker models as a phantom write.
    Failed,
}

/// One settled logical operation: an invocation/response interval in
/// virtual time plus what came back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The issuing client (closed loop: client thread; open loop: tenant).
    pub client: u32,
    /// Operation kind as issued.
    pub kind: OpKind,
    /// The key (a scan's start key).
    pub key: Key,
    /// Invocation: virtual time the client issued the op.
    pub issued: SimTime,
    /// Response: virtual time the op settled (success or give-up).
    pub settled: SimTime,
    /// True when the op settled inside the measured window (post warm-up),
    /// mirroring the driver's metrics gating.
    pub measured: bool,
    /// How the operation resolved.
    pub fate: Fate,
}

impl OpRecord {
    /// True for kinds whose success acknowledges a state change.
    pub fn is_write_kind(&self) -> bool {
        matches!(
            self.kind,
            OpKind::Update | OpKind::Insert | OpKind::Delete | OpKind::ReadModifyWrite
        )
    }
}

/// Per-run history sink, owned by the driver.
///
/// Determinism contract: every method is pure bookkeeping. No randomness,
/// no event scheduling, no simulated-resource access — a run with
/// recording enabled is bit-identical (metrics, counters, event order) to
/// the same run with recording disabled.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    cfg: AuditConfig,
    seed: u64,
    records: Vec<OpRecord>,
}

impl Recorder {
    /// A recorder for one run. No-ops until the config enables it.
    pub fn new(cfg: AuditConfig, seed: u64) -> Self {
        Self {
            cfg,
            seed,
            records: Vec::new(),
        }
    }

    /// True when the config enables recording.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Record one settled operation. Writes (including indeterminate
    /// failed writes) are always kept; reads and scans only for sampled
    /// clients. No-op when disabled.
    pub fn push(&mut self, rec: OpRecord) {
        if !self.cfg.enabled() {
            return;
        }
        let keep = match rec.fate {
            Fate::Write { .. } => true,
            Fate::Failed if rec.is_write_kind() => true,
            _ => self.cfg.samples_client(u64::from(rec.client), self.seed),
        };
        if keep {
            self.records.push(rec);
        }
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finish the run: the recorded history, in settle order (which is
    /// deterministic, because the event loop is).
    pub fn finish(self) -> History {
        History {
            records: self.records,
        }
    }
}

/// Staleness accounting replayed from a history — definitionally identical
/// to [`ycsb`]'s tracker counters, so the two views can be cross-checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaleCounts {
    /// Successful point reads judged (measured window only).
    pub checked: u64,
    /// Reads that returned a version older than the newest write
    /// acknowledged before they were issued (not-found included).
    pub stale: u64,
    /// Of the stale reads, those that found *no* value at all after an
    /// acknowledged write — a lost-write symptom, not a lagging replica.
    pub missing: u64,
}

/// One run's recorded operation history, in settle order.
#[derive(Debug, Clone, Default)]
pub struct History {
    records: Vec<OpRecord>,
}

impl History {
    /// A history from raw records (tests, replay).
    pub fn from_records(records: Vec<OpRecord>) -> Self {
        Self { records }
    }

    /// The records, in settle order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replay the driver's staleness accounting from the history: one
    /// check per successful measured point read, `stale` when the
    /// observed version predates the issue-time expectation. With every
    /// client sampled this reproduces `RunMetrics::staleness()` exactly —
    /// the cross-check invariant the end-to-end tests assert.
    pub fn stale_counts(&self) -> StaleCounts {
        let mut c = StaleCounts::default();
        for r in &self.records {
            let Fate::Read {
                expected_ts,
                observed_ts,
            } = r.fate
            else {
                continue;
            };
            if !r.measured {
                continue;
            }
            c.checked += 1;
            if observed_ts.unwrap_or(0) < expected_ts {
                c.stale += 1;
            }
            if observed_ts.is_none() && expected_ts > 0 {
                c.missing += 1;
            }
        }
        c
    }

    /// Distinct point-op keys ordered by activity (record count,
    /// descending; ties by key bytes) — the designated-key selector for
    /// the linearizability checker. Scans are excluded.
    pub fn keys_by_activity(&self) -> Vec<Key> {
        let mut count: simkit::FastHashMap<Key, u64> = simkit::FastHashMap::default();
        for r in &self.records {
            if matches!(r.kind, OpKind::Scan) {
                continue;
            }
            *count.entry(r.key.clone()).or_insert(0) += 1;
        }
        let mut keys: Vec<(Key, u64)> = count.into_iter().collect();
        keys.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        keys.into_iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Key {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn read(client: u32, key: &str, expected: u64, observed: Option<u64>) -> OpRecord {
        OpRecord {
            client,
            kind: OpKind::Read,
            key: k(key),
            issued: 0,
            settled: 1,
            measured: true,
            fate: Fate::Read {
                expected_ts: expected,
                observed_ts: observed,
            },
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::new(AuditConfig::off(), 42);
        assert!(!r.enabled());
        r.push(read(0, "a", 0, Some(1)));
        assert!(r.is_empty());
        assert!(r.finish().is_empty());
    }

    #[test]
    fn client_sampling_is_deterministic_and_keeps_writes() {
        let cfg = AuditConfig::every(8);
        let sampled: Vec<u64> = (0..32).filter(|&c| cfg.samples_client(c, 42)).collect();
        assert_eq!(sampled.len(), 4);
        let again: Vec<u64> = (0..32).filter(|&c| cfg.samples_client(c, 42)).collect();
        assert_eq!(sampled, again);
        let unsampled = (0..8).find(|&c| !cfg.samples_client(c, 42)).unwrap() as u32;
        let mut r = Recorder::new(cfg, 42);
        r.push(read(unsampled, "a", 0, Some(1))); // dropped: unsampled client
        r.push(OpRecord {
            client: unsampled,
            kind: OpKind::Update,
            key: k("a"),
            issued: 0,
            settled: 1,
            measured: true,
            fate: Fate::Write { ts: 9 },
        }); // kept: writes are global context
        r.push(OpRecord {
            client: unsampled,
            kind: OpKind::Update,
            key: k("a"),
            issued: 2,
            settled: 3,
            measured: true,
            fate: Fate::Failed,
        }); // kept: indeterminate failed write
        let h = r.finish();
        assert_eq!(h.len(), 2);
        assert!(h
            .records()
            .iter()
            .all(|rec| !matches!(rec.fate, Fate::Read { .. })));
    }

    #[test]
    fn stale_counts_mirror_tracker_semantics() {
        let h = History::from_records(vec![
            read(0, "a", 100, Some(100)), // fresh
            read(0, "a", 100, Some(50)),  // stale
            read(0, "a", 100, None),      // stale and missing
            read(0, "b", 0, None),        // never written: clean
            OpRecord {
                measured: false,
                ..read(0, "a", 100, Some(50))
            }, // warm-up: not judged
        ]);
        assert_eq!(
            h.stale_counts(),
            StaleCounts {
                checked: 4,
                stale: 2,
                missing: 1,
            }
        );
    }

    #[test]
    fn keys_by_activity_orders_hot_first() {
        let h = History::from_records(vec![
            read(0, "cold", 0, None),
            read(0, "hot", 0, None),
            read(1, "hot", 0, None),
            OpRecord {
                kind: OpKind::Scan,
                fate: Fate::Scanned,
                ..read(0, "scan-start", 0, None)
            },
        ]);
        let keys = h.keys_by_activity();
        assert_eq!(keys, vec![k("hot"), k("cold")]);
    }
}
