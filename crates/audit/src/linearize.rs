//! A Wing&Gong-style linearizability checker for per-key register
//! histories, bounded and budget-capped.
//!
//! Each key is modelled as a last-writer-wins register whose state is the
//! version timestamp of the current value (`None` before any write — the
//! preload initializes keys at a known timestamp, passed as `init_ts`).
//! The checker searches for a linearization: a total order of the key's
//! operations that (a) respects real time — an operation invoked after
//! another's response must follow it — and (b) is legal for a register:
//! every read returns the timestamp of the latest preceding write.
//!
//! The search is the classic one: repeatedly pick a *minimal* pending
//! operation (one invoked before every pending response) as the next
//! linearization point, apply it to the register, and backtrack on
//! illegality, memoizing visited (linearized-set, state) configurations.
//! Two bounds keep it tractable and honest:
//!
//! * a node budget — exhausting it reports [`Verdict::Inconclusive`], never
//!   a false verdict either way;
//! * a 128-op concurrency window — histories with more than 128
//!   operations concurrently pending are reported inconclusive rather
//!   than searched unboundedly.
//!
//! Failed (timed-out) writes are *indeterminate*: the store may or may not
//! have applied them, at a timestamp the client never learned. The checker
//! handles them soundly: an observed timestamp no successful write
//! produced (an "unknown value") must have come from some failed write, so
//! failed writes are assigned to unknown values (every assignment in a
//! deterministic order, capped); failed writes left unassigned are dropped
//! — sound *and* complete for a register, because a write whose value no
//! read observed can always be removed from a valid linearization (only
//! reads between it and the next write could have seen it, and there are
//! none).

use simkit::{FastHashMap, FastHashSet, SimTime};
use storage::{Key, OpKind};

use crate::history::{Fate, History};

/// The checker's answer for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A linearization exists.
    Linearizable,
    /// No linearization exists: a real-time-respecting legal total order
    /// is impossible (exhaustively verified within the model).
    Violation,
    /// The search budget, the concurrency window, or a model limit
    /// (deletes, too many failed-write assignments) was hit before a
    /// definitive answer.
    Inconclusive,
}

impl Verdict {
    /// Short display label ("yes" / "violation" / "inconclusive").
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Linearizable => "yes",
            Verdict::Violation => "violation",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

/// What one operation on the key did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// A successful write that was assigned version timestamp `ts`.
    Write {
        /// The assigned version timestamp.
        ts: u64,
    },
    /// A write that failed client-side: indeterminate, unknown timestamp.
    FailedWrite,
    /// A successful read observing a version (`None` = not found).
    Read {
        /// The observed version timestamp.
        observed: Option<u64>,
    },
}

/// One operation on the key: an invocation/response interval plus its
/// action. A failed write's response is [`SimTime::MAX`] — the client
/// never saw it complete, so it stays concurrent with everything after
/// its invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyOp {
    /// Invocation time, virtual µs.
    pub inv: SimTime,
    /// Response time, virtual µs.
    pub res: SimTime,
    /// What the operation did.
    pub action: Action,
}

/// Extract one key's register history from a recorded run. Returns `None`
/// when the key saw operations the register model cannot express
/// (deletes — a tombstone's timestamp is invisible to reads), in which
/// case the caller should report [`Verdict::Inconclusive`].
pub fn key_ops(history: &History, key: &Key) -> Option<Vec<KeyOp>> {
    let mut ops = Vec::new();
    for r in history.records() {
        if r.key != *key || matches!(r.kind, OpKind::Scan) {
            continue;
        }
        if matches!(r.kind, OpKind::Delete) {
            return None;
        }
        let action = match r.fate {
            Fate::Write { ts } => Action::Write { ts },
            Fate::Read { observed_ts, .. } => Action::Read {
                observed: observed_ts,
            },
            Fate::Failed if r.is_write_kind() => Action::FailedWrite,
            // A failed read observed nothing: no constraint.
            Fate::Failed | Fate::Scanned => continue,
        };
        ops.push(KeyOp {
            inv: r.issued,
            res: match action {
                Action::FailedWrite => SimTime::MAX,
                _ => r.settled,
            },
            action,
        });
    }
    Some(ops)
}

/// Most operations concurrently pending the search will track exactly.
const WINDOW: usize = 128;
/// Most failed-write-to-unknown-value assignments tried before giving up.
const MAX_ASSIGNMENTS: usize = 64;

/// Check one key's history for linearizability against a register
/// initialized to `init_ts` (`Some(1)` for the driver's preload; `None`
/// for a key created during the run). `budget` caps search nodes across
/// all failed-write assignments.
pub fn check_key(ops: &[KeyOp], init_ts: Option<u64>, budget: u64) -> Verdict {
    // Split and validate the model.
    let mut known: Vec<u64> = init_ts.into_iter().collect();
    let mut failed: Vec<KeyOp> = Vec::new();
    let mut observed: Vec<u64> = Vec::new();
    for op in ops {
        match op.action {
            Action::Write { ts } => known.push(ts),
            Action::FailedWrite => failed.push(*op),
            Action::Read { observed: Some(v) } => observed.push(v),
            Action::Read { observed: None } => {}
        }
    }
    known.sort_unstable();
    // Two writes may carry the same version timestamp (virtual-time
    // collisions on a hot key): they wrote the same *value*, so the
    // interner collapses them to one state and a read of that value
    // legally follows either write. No precision is lost for a register.
    known.dedup();
    // Values some read observed that no successful write (or the preload)
    // produced: each must be explained by a distinct failed write.
    let mut unknowns: Vec<u64> = observed
        .iter()
        .copied()
        .filter(|v| known.binary_search(v).is_err())
        .collect();
    unknowns.sort_unstable();
    unknowns.dedup();
    if unknowns.len() > failed.len() {
        // An observed value nothing wrote: immediately non-linearizable.
        return Verdict::Violation;
    }

    // Enumerate assignments of distinct failed writes to the unknown
    // values (deterministic order, capped), dropping the unassigned rest.
    let mut assignments: Vec<Vec<usize>> = Vec::new();
    let mut current = Vec::new();
    enumerate_assignments(unknowns.len(), failed.len(), &mut current, &mut assignments);
    let truncated = assignments.len() > MAX_ASSIGNMENTS;
    assignments.truncate(MAX_ASSIGNMENTS);

    let mut search = Search {
        ops: Vec::new(),
        suffix_min_res: Vec::new(),
        value_id: FastHashMap::default(),
        memo: FastHashSet::default(),
        budget,
        exhausted: false,
    };
    let base: Vec<KeyOp> = ops
        .iter()
        .filter(|o| !matches!(o.action, Action::FailedWrite))
        .copied()
        .collect();
    let mut any_exhausted = truncated;
    for assignment in &assignments {
        let mut candidate = base.clone();
        for (u, &f) in unknowns.iter().zip(assignment) {
            candidate.push(KeyOp {
                action: Action::Write { ts: *u },
                ..failed[f]
            });
        }
        match search.run(candidate, init_ts) {
            Ok(true) => return Verdict::Linearizable,
            Ok(false) => {}
            Err(Exhausted) => any_exhausted = true,
        }
    }
    if any_exhausted {
        Verdict::Inconclusive
    } else {
        Verdict::Violation
    }
}

/// All ways to pick `n` distinct indices out of `0..m`, in lexicographic
/// order, stopping early once well past the enumeration cap.
fn enumerate_assignments(n: usize, m: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if out.len() > MAX_ASSIGNMENTS {
        return;
    }
    if current.len() == n {
        out.push(current.clone());
        return;
    }
    for i in 0..m {
        if current.contains(&i) {
            continue;
        }
        current.push(i);
        enumerate_assignments(n, m, current, out);
        current.pop();
    }
}

/// The search ran out of budget (or concurrency window) before deciding.
struct Exhausted;

/// One DFS over the linearization space of a fixed operation list.
struct Search {
    /// Operations sorted by invocation time.
    ops: Vec<KeyOp>,
    /// `suffix_min_res[i]` = min response time over `ops[i..]`.
    suffix_min_res: Vec<SimTime>,
    /// Version timestamp -> dense state id (0 is the `None` state).
    value_id: FastHashMap<u64, u32>,
    /// Visited-and-failed (first_pending, window mask, state) configs.
    memo: FastHashSet<(u32, u128, u32)>,
    budget: u64,
    exhausted: bool,
}

impl Search {
    fn state_of(&self, ts: Option<u64>) -> Option<u32> {
        match ts {
            None => Some(0),
            Some(v) => self.value_id.get(&v).copied(),
        }
    }

    fn run(&mut self, mut ops: Vec<KeyOp>, init_ts: Option<u64>) -> Result<bool, Exhausted> {
        ops.sort_by_key(|o| (o.inv, o.res, action_rank(o.action)));
        self.value_id.clear();
        self.memo.clear();
        self.exhausted = false;
        if let Some(init) = init_ts {
            let next = self.value_id.len() as u32 + 1;
            self.value_id.entry(init).or_insert(next);
        }
        for op in &ops {
            if let Action::Write { ts } = op.action {
                let next = self.value_id.len() as u32 + 1;
                self.value_id.entry(ts).or_insert(next);
            }
        }
        let mut suffix = vec![SimTime::MAX; ops.len() + 1];
        for i in (0..ops.len()).rev() {
            suffix[i] = suffix[i + 1].min(ops[i].res);
        }
        self.suffix_min_res = suffix;
        self.ops = ops;
        let Some(init_state) = self.state_of(init_ts) else {
            return Ok(false); // unreachable: init was interned above
        };
        let linearizable = self.dfs(0, 0, init_state)?;
        if !linearizable && self.exhausted {
            // Some subtree was cut short: a "no" is not trustworthy.
            return Err(Exhausted);
        }
        Ok(linearizable)
    }

    fn dfs(&mut self, mut first: usize, mut mask: u128, state: u32) -> Result<bool, Exhausted> {
        // Normalize: slide the window past already-linearized ops.
        while first < self.ops.len() && mask & 1 == 1 {
            mask >>= 1;
            first += 1;
        }
        if first == self.ops.len() {
            return Ok(true);
        }
        if self.budget == 0 {
            self.exhausted = true;
            return Err(Exhausted);
        }
        self.budget -= 1;
        if !self.memo.insert((first as u32, mask, state)) {
            return Ok(false);
        }
        let window_end = (first + WINDOW).min(self.ops.len());
        // Minimum response over pending ops: everything at/after the
        // window end is pending by construction, plus unlinearized ops
        // inside the window.
        let mut min_res = self.suffix_min_res[window_end];
        for i in first..window_end {
            if mask >> (i - first) & 1 == 0 {
                min_res = min_res.min(self.ops[i].res);
            }
        }
        if first + WINDOW < self.ops.len() && self.ops[first + WINDOW].inv <= min_res {
            // An op outside the tracked window is a legal candidate: more
            // than WINDOW ops concurrently pending. Give up soundly.
            self.exhausted = true;
            return Err(Exhausted);
        }
        let mut saw_exhausted = false;
        for i in first..window_end {
            if mask >> (i - first) & 1 == 1 {
                continue;
            }
            let op = self.ops[i];
            // Minimality: an op invoked after some pending response must
            // come after that op in any linearization.
            if op.inv > min_res {
                break; // ops are inv-sorted: later ones only get worse
            }
            let next_state = match op.action {
                Action::Write { ts } => match self.state_of(Some(ts)) {
                    Some(s) => s,
                    None => continue, // unreachable: writes were interned
                },
                Action::Read { observed } => {
                    if self.state_of(observed) != Some(state) {
                        continue; // illegal here
                    }
                    state
                }
                Action::FailedWrite => continue, // unreachable: pre-dropped
            };
            match self.dfs(first, mask | 1 << (i - first), next_state) {
                Ok(true) => return Ok(true),
                Ok(false) => {}
                Err(Exhausted) => saw_exhausted = true,
            }
        }
        if saw_exhausted {
            return Err(Exhausted);
        }
        Ok(false)
    }
}

fn action_rank(a: Action) -> u8 {
    match a {
        Action::Write { .. } => 0,
        Action::Read { .. } => 1,
        Action::FailedWrite => 2,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn w(inv: SimTime, res: SimTime, ts: u64) -> KeyOp {
        KeyOp {
            inv,
            res,
            action: Action::Write { ts },
        }
    }

    fn r(inv: SimTime, res: SimTime, observed: Option<u64>) -> KeyOp {
        KeyOp {
            inv,
            res,
            action: Action::Read { observed },
        }
    }

    fn fw(inv: SimTime) -> KeyOp {
        KeyOp {
            inv,
            res: SimTime::MAX,
            action: Action::FailedWrite,
        }
    }

    const BUDGET: u64 = 100_000;

    #[test]
    fn empty_and_sequential_histories_are_linearizable() {
        assert_eq!(check_key(&[], Some(1), BUDGET), Verdict::Linearizable);
        let ops = [
            r(0, 10, Some(1)),
            w(20, 30, 7),
            r(40, 50, Some(7)),
            w(60, 70, 9),
            r(80, 90, Some(9)),
        ];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Linearizable);
    }

    #[test]
    fn stale_read_after_write_response_is_a_violation() {
        // The write completed at 30; a read invoked at 40 returning the
        // initial value cannot be ordered before it.
        let ops = [w(20, 30, 7), r(40, 50, Some(1))];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Violation);
    }

    #[test]
    fn concurrent_read_may_land_on_either_side() {
        // The read overlaps the write: both old and new values are legal.
        let old = [w(20, 60, 7), r(30, 40, Some(1))];
        let new = [w(20, 60, 7), r(30, 40, Some(7))];
        assert_eq!(check_key(&old, Some(1), BUDGET), Verdict::Linearizable);
        assert_eq!(check_key(&new, Some(1), BUDGET), Verdict::Linearizable);
    }

    #[test]
    fn non_monotonic_reads_violate() {
        // Two sequential reads observe new-then-old: no register order.
        let ops = [w(0, 100, 7), r(10, 20, Some(7)), r(30, 40, Some(1))];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Violation);
    }

    #[test]
    fn unknown_value_requires_a_failed_write() {
        // A read observes ts=9 which no successful write produced.
        let with_fw = [fw(5), r(40, 50, Some(9))];
        assert_eq!(check_key(&with_fw, Some(1), BUDGET), Verdict::Linearizable);
        // Without a failed write to pin it on: a value from nowhere.
        let without = [r(40, 50, Some(9))];
        assert_eq!(check_key(&without, Some(1), BUDGET), Verdict::Violation);
    }

    #[test]
    fn failed_write_cannot_time_travel() {
        // The failed write is invoked at 100, after the read responded at
        // 50 — it cannot explain the read's unknown value.
        let ops = [r(40, 50, Some(9)), fw(100)];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Violation);
    }

    #[test]
    fn unassigned_failed_writes_are_dropped_harmlessly() {
        let ops = [fw(5), w(20, 30, 7), r(40, 50, Some(7)), fw(60)];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Linearizable);
    }

    #[test]
    fn not_found_on_an_initialized_register_violates() {
        let ops = [r(10, 20, None)];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Violation);
        // On an uninitialized register it is the legal initial state.
        assert_eq!(check_key(&ops, None, BUDGET), Verdict::Linearizable);
    }

    #[test]
    fn duplicate_write_timestamps_collapse_to_one_value() {
        // Virtual-time collisions: two writes of the same version. Reads
        // of that value follow either write; the register still judges.
        let ops = [w(0, 10, 7), w(20, 30, 7), r(40, 50, Some(7))];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Linearizable);
        // And a stale read after both responded is still caught.
        let bad = [w(0, 10, 7), w(20, 30, 7), r(40, 50, Some(1))];
        assert_eq!(check_key(&bad, Some(1), BUDGET), Verdict::Violation);
    }

    #[test]
    fn zero_budget_is_inconclusive_not_a_verdict() {
        let ops = [w(0, 10, 7), r(20, 30, Some(7))];
        assert_eq!(check_key(&ops, Some(1), 0), Verdict::Inconclusive);
    }

    #[test]
    fn long_sequential_history_stays_cheap() {
        // 2000 alternating write/read pairs: the greedy path succeeds with
        // ~one node per op, far under budget.
        let mut ops = Vec::new();
        let mut t = 10;
        for i in 0..2_000u64 {
            ops.push(w(t, t + 5, i + 2));
            ops.push(r(t + 10, t + 15, Some(i + 2)));
            t += 20;
        }
        assert_eq!(check_key(&ops, Some(1), 10_000), Verdict::Linearizable);
    }

    #[test]
    fn interleaved_concurrent_clients_linearize() {
        // Two overlapping writers and readers that are consistent with
        // *some* order, though not the invocation order.
        let ops = [
            w(0, 100, 7),
            w(10, 90, 8),
            r(20, 30, Some(8)),
            r(40, 60, Some(7)),
            r(110, 120, Some(7)),
        ];
        assert_eq!(check_key(&ops, Some(1), BUDGET), Verdict::Linearizable);
    }
}
