//! PBS-style (Δ,p)-staleness from recorded histories.
//!
//! Bailis et al.'s *probabilistically bounded staleness* asks: what is the
//! probability that a read issued Δ after a write's acknowledgement
//! returns that write (or newer)? The empirical analog over a recorded
//! history assigns every successful point read a *staleness margin*:
//!
//! * a fresh read (observed ≥ the issue-time expectation, or no prior
//!   acked write) has margin 0;
//! * a stale read's margin is the age of the missed expectation — the
//!   interval from the acknowledgement of the newest write the read
//!   should have seen to the read's issue instant. The read was *that*
//!   far behind, so only a Δ at least that large would have tolerated it.
//!
//! `p(Δ)` is then the fraction of reads with margin ≤ Δ — an empirical
//! CDF, monotone non-decreasing in Δ by construction, with `p(0)` the
//! fresh fraction and `p(∞) = 1`.

use simkit::{FastHashMap, SimTime};
use storage::Key;

use crate::history::{Fate, History};
use crate::session::PhaseWindow;

/// Per-read staleness margins (µs) of every successful point read in the
/// history, bucketed into the given windows by the read's settle time.
/// Reads settling outside every window are dropped.
///
/// Margins resolve a stale read's missed expectation to the settle
/// (acknowledgement) time of the write that produced it, which is why
/// the recorder always keeps writes from every client.
pub fn margins(history: &History, windows: &[PhaseWindow]) -> Vec<Vec<u64>> {
    // (key, assigned ts) -> earliest acknowledgement time.
    let mut acked: FastHashMap<(Key, u64), SimTime> = FastHashMap::default();
    for r in history.records() {
        if let Fate::Write { ts } = r.fate {
            let slot = acked.entry((r.key.clone(), ts)).or_insert(r.settled);
            *slot = (*slot).min(r.settled);
        }
    }
    let mut out = vec![Vec::new(); windows.len()];
    for r in history.records() {
        let Fate::Read {
            expected_ts,
            observed_ts,
        } = r.fate
        else {
            continue;
        };
        let Some(slot) = windows.iter().position(|w| w.contains(r.settled)) else {
            continue;
        };
        let fresh = expected_ts == 0 || observed_ts.unwrap_or(0) >= expected_ts;
        let margin = if fresh {
            0
        } else {
            match acked.get(&(r.key.clone(), expected_ts)) {
                Some(&ack) => r.issued.saturating_sub(ack),
                // The expectation's write was not recorded (partial replay):
                // the read was at least "just" stale.
                None => 0,
            }
        };
        out[slot].push(margin);
    }
    out
}

/// The empirical (Δ,p) curve: for each Δ, the fraction of reads whose
/// staleness margin is ≤ Δ. Monotone non-decreasing in Δ by construction;
/// an empty margin set yields `p = 1.0` everywhere (no read was ever
/// stale, vacuously).
pub fn curve(margins: &[u64], deltas_us: &[u64]) -> Vec<(u64, f64)> {
    deltas_us
        .iter()
        .map(|&d| {
            let p = if margins.is_empty() {
                1.0
            } else {
                margins.iter().filter(|&&m| m <= d).count() as f64 / margins.len() as f64
            };
            (d, p)
        })
        .collect()
}

/// The `q`-quantile (`0.0..=1.0`) of a margin set, exact (nearest-rank on
/// a sorted copy). 0 when empty.
pub fn quantile(margins: &[u64], q: f64) -> u64 {
    if margins.is_empty() {
        return 0;
    }
    let mut sorted = margins.to_vec();
    sorted.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use bytes::Bytes;
    use storage::OpKind;

    fn k(s: &str) -> Key {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn whole_run() -> Vec<PhaseWindow> {
        vec![PhaseWindow {
            label: "all",
            start_us: 0,
            end_us: SimTime::MAX,
        }]
    }

    fn write(key: &str, settled: SimTime, ts: u64) -> OpRecord {
        OpRecord {
            client: 0,
            kind: OpKind::Update,
            key: k(key),
            issued: settled.saturating_sub(5),
            settled,
            measured: true,
            fate: Fate::Write { ts },
        }
    }

    fn read(key: &str, issued: SimTime, expected: u64, observed: Option<u64>) -> OpRecord {
        OpRecord {
            client: 0,
            kind: OpKind::Read,
            key: k(key),
            issued,
            settled: issued + 5,
            measured: true,
            fate: Fate::Read {
                expected_ts: expected,
                observed_ts: observed,
            },
        }
    }

    #[test]
    fn fresh_reads_have_zero_margin_and_stale_reads_age() {
        let h = History::from_records(vec![
            write("a", 100, 7),         // acked at t=100
            read("a", 150, 7, Some(7)), // fresh
            read("a", 400, 7, Some(3)), // stale: expectation acked 300µs ago
            read("a", 600, 7, None),    // missing: expectation acked 500µs ago
        ]);
        let m = margins(&h, &whole_run());
        assert_eq!(m[0], vec![0, 300, 500]);
    }

    #[test]
    fn curve_is_an_empirical_cdf_monotone_in_delta() {
        let m = vec![0, 0, 300, 500];
        let c = curve(&m, &[0, 100, 300, 500, 1_000]);
        let ps: Vec<f64> = c.iter().map(|&(_, p)| p).collect();
        assert_eq!(ps, vec![0.5, 0.5, 0.75, 1.0, 1.0]);
        for w in ps.windows(2) {
            assert!(w[1] >= w[0], "p must be monotone non-decreasing in Δ");
        }
        assert_eq!(curve(&[], &[0, 10]), vec![(0, 1.0), (10, 1.0)]);
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let m = vec![500, 0, 300, 0];
        assert_eq!(quantile(&m, 0.5), 0);
        assert_eq!(quantile(&m, 0.75), 300);
        assert_eq!(quantile(&m, 1.0), 500);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn margins_bucket_by_window_and_never_written_keys_are_fresh() {
        let windows = vec![
            PhaseWindow {
                label: "early",
                start_us: 0,
                end_us: 200,
            },
            PhaseWindow {
                label: "late",
                start_us: 200,
                end_us: SimTime::MAX,
            },
        ];
        let h = History::from_records(vec![
            write("a", 100, 7),
            read("b", 10, 0, None),     // early; never written: margin 0
            read("a", 300, 7, Some(1)), // late; stale by 200µs
        ]);
        let m = margins(&h, &windows);
        assert_eq!(m[0], vec![0]);
        assert_eq!(m[1], vec![200]);
    }
}
