//! Property-based tests for ring placement and consistency invariants.

use bytes::Bytes;
use proptest::prelude::*;

use cstore::{Consistency, Partitioner, Ring};

fn key(id: u64) -> Bytes {
    Bytes::from(format!("user{id:08}").into_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replica sets are distinct, stable, sized min(rf, n), and start at
    /// the primary.
    #[test]
    fn replica_sets_are_distinct_and_stable(
        nodes in 1usize..20,
        rf in 1u32..8,
        id in 0u64..100_000,
    ) {
        let ring = Ring::new(nodes, Partitioner::murmur());
        let k = key(id);
        let reps = ring.replicas(&k, rf);
        prop_assert_eq!(reps.len(), (rf as usize).min(nodes));
        let mut uniq = reps.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), reps.len(), "duplicate replicas");
        prop_assert_eq!(reps[0].index(), ring.primary(&k));
        prop_assert_eq!(ring.replicas(&k, rf), reps, "unstable placement");
    }

    /// Growing the replication factor only appends replicas (monotone
    /// placement — the property that lets RF be raised without moving data).
    #[test]
    fn placement_is_monotone_in_rf(nodes in 2usize..20, id in 0u64..100_000) {
        let ring = Ring::new(nodes, Partitioner::murmur());
        let k = key(id);
        let mut prev = ring.replicas(&k, 1);
        for rf in 2..=nodes as u32 {
            let cur = ring.replicas(&k, rf);
            prop_assert_eq!(&cur[..prev.len()], &prev[..], "prefix changed at rf={}", rf);
            prev = cur;
        }
    }

    /// The ordered partitioner routes every key into the range that
    /// contains it.
    #[test]
    fn ordered_partitioner_routes_into_ranges(
        mut token_ids in prop::collection::btree_set(0u64..10_000, 2..12),
        id in 0u64..20_000,
    ) {
        let tokens: Vec<Bytes> = token_ids.iter().map(|&t| key(t)).collect();
        let n = tokens.len();
        let ring = Ring::new(n, Partitioner::order_preserving(tokens.clone()));
        let k = key(id);
        let p = ring.primary(&k);
        if k < tokens[0] {
            prop_assert_eq!(p, n - 1, "below first token wraps to last range");
        } else {
            prop_assert!(tokens[p] <= k);
            if p + 1 < n {
                prop_assert!(k < tokens[p + 1]);
            }
        }
        let _ = token_ids.pop_first();
    }

    /// Quorum arithmetic: required responses never exceed RF, QUORUM
    /// overlaps itself, and write-ALL overlaps read-ONE.
    #[test]
    fn consistency_arithmetic(rf in 1u32..12) {
        for cl in [
            Consistency::One,
            Consistency::Two,
            Consistency::Three,
            Consistency::Quorum,
            Consistency::All,
        ] {
            let need = cl.required(rf);
            prop_assert!(need >= 1);
            prop_assert!(need <= rf);
        }
        let q = Consistency::Quorum.required(rf);
        prop_assert!(q + q > rf);
        prop_assert!(Consistency::All.required(rf) + Consistency::One.required(rf) > rf);
    }
}
