//! The assembled cluster: coordinators, replicas, consistency, repair.
//!
//! Request lifecycles are event chains. A write: `Arrive` at the coordinator
//! → `ReplicaWrite` at every live replica → `WriteApplied` (CPU/log done,
//! the functional mutation lands *here*, so concurrent reads see it at the
//! correct virtual instant) → `WriteAck` back at the coordinator → `Deliver`
//! to the client once the consistency level's quota is met. Reads and scans
//! are analogous with quota-gated responses, timestamp reconciliation, and
//! (for reads) optional all-replica repair fan-out.

use obs::{Stage, Tracer};
use simkit::{NodeId, OpKey, OpTag, Sim, SimTime, Slab};
use storage::types::entry_encoded_len;
use storage::{Cell, Completion, Key, OpError, OpResult, StoreOp, Value};

use crate::config::{CStoreConfig, CommitlogSync, Consistency};
use crate::event::Event;
use crate::metrics::Metrics;
use crate::node::{CNode, Hint};
use crate::ring::Ring;

#[derive(Debug, Clone)]
struct Pending {
    /// The driver token: the op's external identity (completions, traces).
    token: u64,
    coordinator: NodeId,
    state: PendingState,
}

#[derive(Debug, Clone)]
enum PendingState {
    /// Created at submit, holding the op; consumed at `Arrive`.
    Init(StoreOp),
    /// Transient placeholder while `Arrive` moves the op out for dispatch.
    Dispatching,
    Write(WriteState),
    Read(ReadState),
    Scan(ScanState),
}

/// Which acknowledgements satisfy a write's consistency level.
#[derive(Debug, Clone)]
enum AckRule {
    /// Datacenter-blind: any `WriteState::needed` acks settle the op
    /// (ONE/TWO/THREE/QUORUM/ALL, and every level on a single-DC cluster).
    Count,
    /// LOCAL_QUORUM: only acks from the coordinator's datacenter count
    /// toward `WriteState::needed`.
    LocalDc {
        /// The coordinator's datacenter.
        dc: u32,
        /// Acks received from that datacenter so far.
        acks: u32,
    },
    /// EACH_QUORUM: a quorum in every datacenter holding replicas;
    /// `(region, needed, acks)` per datacenter.
    PerDc(Vec<(u32, u32, u32)>),
}

impl AckRule {
    /// Record an ack from a node in `region`; true once the rule is
    /// satisfied (`needed` is the threshold for the scalar rules).
    fn ack(&mut self, region: u32, needed: u32, total_acks: u32) -> bool {
        match self {
            AckRule::Count => total_acks >= needed,
            AckRule::LocalDc { dc, acks } => {
                if region == *dc {
                    *acks += 1;
                }
                *acks >= needed
            }
            AckRule::PerDc(quotas) => {
                if let Some(q) = quotas.iter_mut().find(|q| q.0 == region) {
                    q.2 += 1;
                }
                quotas.iter().all(|q| q.2 >= q.1)
            }
        }
    }
}

#[derive(Debug, Clone)]
struct WriteState {
    needed: u32,
    expected: u32,
    acks: u32,
    responded: bool,
    ts: u64,
    /// When the replica fan-out left the coordinator (quorum-wait start).
    fanout_at: SimTime,
    /// Datacenter-aware ack accounting (LOCAL_QUORUM / EACH_QUORUM).
    rule: AckRule,
}

#[derive(Debug, Clone)]
struct ReadState {
    /// The read key, kept for repair writes after the op is consumed.
    key: Key,
    needed: u32,
    expected: u32,
    responded: bool,
    /// True when this read probes all replicas for repair: the response
    /// then waits for every replica (Cassandra 2.0 blocks for all contacted
    /// replicas when read repair is active).
    fanout: bool,
    results: Vec<(NodeId, Option<Cell>)>,
    /// When the replica fan-out left the coordinator (quorum-wait start).
    fanout_at: SimTime,
}

#[derive(Debug, Clone)]
struct ScanState {
    limit: usize,
    needed_this_round: u32,
    received_this_round: u32,
    partials: Vec<Vec<(Key, Cell)>>,
    collected: Vec<(Key, Cell)>,
    current_primary: usize,
    rounds: u32,
    responded: bool,
    /// When the current round's fan-out left the coordinator.
    round_started: SimTime,
}

/// A simulated Cassandra-analog cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: CStoreConfig,
    ring: Ring,
    nodes: Vec<CNode>,
    pending: Slab<Pending>,
    completed: Vec<Completion>,
    metrics: Metrics,
    next_coord: usize,
    pauses_started: bool,
    tracer: Tracer,
    /// Reusable buffer for per-op replica placement: the coordinator paths
    /// take it, fill it via [`Ring::replicas_into`], and put it back, so the
    /// read/write hot paths never allocate a replica `Vec` per operation.
    replica_scratch: Vec<NodeId>,
}

impl Cluster {
    /// Build a cluster from a configuration.
    pub fn new(config: CStoreConfig) -> Self {
        assert!(config.nodes > 0);
        assert!(config.replication_factor >= 1);
        if let geo::Strategy::NetworkTopology { .. } = &config.strategy {
            assert_eq!(
                config.strategy.total_rf(config.replication_factor),
                config.replication_factor,
                "replication_factor must equal the NetworkTopologyStrategy quota sum"
            );
        }
        let snitch = if config.topology.len() == config.nodes {
            geo::Snitch::from_topology(&config.topology)
        } else {
            geo::Snitch::single_dc(config.nodes)
        };
        let ring = Ring::with_strategy(
            config.nodes,
            config.partitioner.clone(),
            config.strategy.clone(),
            snitch,
        );
        let nodes = (0..config.nodes)
            .map(|_| CNode::new(config.profile, config.lsm))
            .collect();
        Self {
            config,
            ring,
            nodes,
            pending: Slab::new(),
            completed: Vec::new(),
            metrics: Metrics::new(),
            next_coord: 0,
            pauses_started: false,
            tracer: Tracer::new(),
            replica_scratch: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CStoreConfig {
        &self.config
    }

    /// The ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Behaviour counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The span tracer (disabled by default; the driver enables it and
    /// registers which tokens to record).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Clusters are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-flight operation count (for drain/quiesce checks).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Take all completions produced since the last drain.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Direct access to a node (assertions, utilization reports).
    pub fn node(&self, node: NodeId) -> &CNode {
        &self.nodes[node.index()]
    }

    /// A copy-on-write snapshot of the cluster. Every immutable SSTable run
    /// is shared behind an `Arc` (see [`storage::SsTable`]), so snapshotting
    /// a loaded cluster costs O(metadata) rather than O(data); the snapshot
    /// then diverges independently as it serves traffic.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// True when every node's runs are still shared with `other` — both are
    /// undiverged snapshots of one loaded state.
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        self.nodes.len() == other.nodes.len()
            && self
                .nodes
                .iter()
                .zip(&other.nodes)
                .all(|(a, b)| a.lsm.shares_tables_with(&b.lsm))
    }

    /// Mutable node access (tests and ablations).
    pub fn node_mut(&mut self, node: NodeId) -> &mut CNode {
        &mut self.nodes[node.index()]
    }

    /// Crash a node.
    pub fn fail_node(&mut self, node: NodeId) {
        self.nodes[node.index()].hw.fail();
    }

    /// Recover a node and trigger hint replay everywhere.
    pub fn recover_node<W: From<Event>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
        self.nodes[node.index()].hw.recover();
        for i in 0..self.nodes.len() {
            if !self.nodes[i].hints.is_empty() {
                sim.schedule_in(
                    self.config.hint_replay_delay_us,
                    W::from(Event::HintReplay {
                        node: NodeId(i as u32),
                    }),
                );
            }
        }
    }

    // ----- functional helpers (no virtual-time accounting) -----

    /// Load a record directly onto all of its replicas; used for bulk load
    /// phases where per-op event simulation would be pointless.
    pub fn load_direct(&mut self, key: Key, value: Value, ts: u64) {
        let reps = self.ring.replicas(&key, self.config.replication_factor);
        for r in reps {
            let node = &mut self.nodes[r.index()];
            node.lsm.put(key.clone(), Cell::live(value.clone(), ts));
            if node.lsm.memtable_bytes() >= node.lsm.config().memtable_flush_bytes {
                if let Some(receipt) = node.lsm.flush() {
                    if receipt.compaction_due {
                        node.lsm.maybe_compact();
                    }
                }
            }
        }
    }

    /// Flush every memtable and run ripe compactions (functional; used at
    /// the end of load phases).
    pub fn flush_all(&mut self) {
        for node in &mut self.nodes {
            node.lsm.flush();
            node.lsm.compact_all();
            node.lsm.sync_wal();
        }
    }

    /// Warm every node's block cache to steady state (see
    /// [`storage::LsmTree::warm_cache`]).
    pub fn warm_caches(&mut self) {
        for node in &mut self.nodes {
            node.lsm.warm_cache();
        }
    }

    /// Read a key directly from one node's storage (test/diagnostic; does
    /// touch the node's cache but charges no time).
    pub fn read_local(&mut self, node: NodeId, key: &[u8]) -> Option<Cell> {
        self.nodes[node.index()].lsm.get(key).cell
    }

    // ----- sizing -----

    fn req_bytes(&self, op: &StoreOp) -> u64 {
        let body = match op {
            StoreOp::Insert { key, value } | StoreOp::Update { key, value } => {
                key.len() + value.len()
            }
            StoreOp::Read { key } | StoreOp::Delete { key } => key.len(),
            StoreOp::Scan { start, .. } => start.len(),
        };
        self.config.costs.msg_overhead_bytes + body as u64
    }

    fn cell_bytes(&self, cell: &Option<Cell>) -> u64 {
        self.config.costs.msg_overhead_bytes + cell.as_ref().map_or(0, Cell::encoded_len)
    }

    fn rows_bytes(&self, rows: &[(Key, Cell)]) -> u64 {
        self.config.costs.msg_overhead_bytes
            + rows
                .iter()
                .map(|(k, c)| entry_encoded_len(k, c))
                .sum::<u64>()
    }

    // ----- plumbing -----

    fn is_up(&self, node: NodeId) -> bool {
        self.nodes[node.index()].hw.is_up()
    }

    /// Datacenter of a node, per the ring's snitch.
    fn region_of(&self, node: NodeId) -> u32 {
        self.ring.snitch().region(node)
    }

    /// True when the cluster spans more than one datacenter.
    fn multi_dc(&self) -> bool {
        self.ring.snitch().num_regions() > 1
    }

    /// The stage label for a coordinator↔replica hop: [`Stage::WanHop`]
    /// when the endpoints sit in different datacenters.
    fn hop_stage(&self, from: NodeId, to: NodeId) -> Stage {
        if self.multi_dc() && self.region_of(from) != self.region_of(to) {
            Stage::WanHop
        } else {
            Stage::ReplicaRpc
        }
    }

    fn pick_coordinator(&mut self) -> Option<NodeId> {
        for _ in 0..self.nodes.len() {
            let i = self.next_coord % self.nodes.len();
            self.next_coord = self.next_coord.wrapping_add(1);
            if self.nodes[i].hw.is_up() {
                return Some(NodeId(i as u32));
            }
        }
        None
    }

    /// Sample a service time with the configured mean: exponential when
    /// `jitter` is 1 (heavy-tailed JVM-era handling), deterministic at 0,
    /// linear blend in between.
    fn service<W>(&self, sim: &mut Sim<W>, mean_us: u64) -> u64 {
        let j = self.config.costs.jitter;
        if j <= 0.0 || mean_us == 0 {
            return mean_us;
        }
        let u = sim.rng().unit().max(1e-12);
        let exp = -u.ln() * mean_us as f64;
        (mean_us as f64 * (1.0 - j) + exp * j).round() as u64
    }

    /// Move `bytes` from `from` to `to` starting at `start`; returns full
    /// delivery time. Loopback is free.
    fn net_to(&mut self, from: NodeId, to: NodeId, bytes: u64, start: SimTime) -> SimTime {
        if from == to {
            return start;
        }
        let tx = self.nodes[from.index()].hw.nic.tx(start, bytes);
        let arr = tx + self.config.topology.prop_us(from, to);
        self.nodes[to.index()].hw.nic.rx(arr, bytes)
    }

    /// Delivery time of a server→client response sent at `start`.
    fn client_delivery(&mut self, from: NodeId, bytes: u64, start: SimTime) -> SimTime {
        let tx = self.nodes[from.index()].hw.nic.tx(start, bytes);
        tx + self.config.profile.nic.prop_us
    }

    fn respond<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        token: u64,
        from: NodeId,
        start: SimTime,
        result: OpResult,
    ) {
        let bytes = match &result {
            OpResult::Value(cell) => self.cell_bytes(cell),
            OpResult::Rows(rows) => self.rows_bytes(rows),
            _ => self.config.costs.msg_overhead_bytes,
        };
        let at = self.client_delivery(from, bytes, start);
        self.tracer
            .record(token, Stage::RespSend, from.0, start, at);
        sim.schedule_at(at, W::from(Event::Deliver { token, result }));
    }

    // ----- public API -----

    /// Submit a client operation. The completion (with `token`) is emitted
    /// through [`Cluster::drain_completions`] once the `Deliver` event fires.
    pub fn submit<W: From<Event>>(&mut self, sim: &mut Sim<W>, token: u64, op: StoreOp) {
        self.submit_tagged(sim, token, op, OpTag::default());
    }

    /// [`Cluster::submit`] with client scheduling metadata. When admission
    /// control is enabled and the coordinator's in-flight bound sheds the
    /// op, the completion is an immediate [`OpError::Overloaded`] fast-fail:
    /// no events are scheduled and no RNG is drawn, mirroring the
    /// availability fast-fail path.
    pub fn submit_tagged<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        token: u64,
        op: StoreOp,
        tag: OpTag,
    ) {
        if self.config.admission.enabled()
            && !self
                .config
                .admission
                .admits(self.pending.len(), tag, sim.now())
        {
            self.metrics.shed += 1;
            let now = sim.now();
            self.tracer
                .record(token, Stage::AdmissionQueue, 0, now, now);
            self.completed.push(Completion {
                token,
                result: OpResult::Error(OpError::Overloaded),
            });
            return;
        }
        if !self.pauses_started {
            self.pauses_started = true;
            if self.config.pause_interval_us > 0 {
                for i in 0..self.nodes.len() {
                    // Stagger first pauses uniformly over one interval.
                    let delay = sim.rng().below(self.config.pause_interval_us);
                    sim.schedule_in(
                        delay,
                        W::from(Event::GcPause {
                            node: NodeId(i as u32),
                        }),
                    );
                }
            }
        }
        let Some(coord) = self.pick_coordinator() else {
            self.completed.push(Completion {
                token,
                result: OpResult::Error(OpError::Unavailable),
            });
            return;
        };
        let bytes = self.req_bytes(&op);
        let arr = sim.now() + self.config.profile.nic.prop_us;
        let rx_done = self.nodes[coord.index()].hw.nic.rx(arr, bytes);
        self.tracer
            .record(token, Stage::ClientSend, coord.0, sim.now(), rx_done);
        let key = self.pending.insert(Pending {
            token,
            coordinator: coord,
            state: PendingState::Init(op),
        });
        sim.schedule_at(rx_done, W::from(Event::Arrive { op: key }));
        sim.schedule_at(
            rx_done + self.config.rpc_timeout_us,
            W::from(Event::Timeout { op: key }),
        );
    }

    /// Dispatch one internal event.
    pub fn handle<W: From<Event>>(&mut self, sim: &mut Sim<W>, ev: Event) {
        match ev {
            Event::Arrive { op } => self.on_arrive(sim, op),
            Event::ReplicaWrite {
                op,
                token,
                node,
                key,
                cell,
                ack,
            } => self.on_replica_write(sim, op, token, node, key, cell, ack),
            Event::WriteApplied {
                op,
                node,
                key,
                cell,
                ack,
            } => self.on_write_applied(sim, op, node, key, cell, ack),
            Event::WriteAck { op, node } => self.on_write_ack(sim, op, node),
            Event::ReplicaRead {
                op,
                token,
                node,
                key,
            } => self.on_replica_read(sim, op, token, node, key),
            Event::ReadReturn { op, node, cell } => self.on_read_return(sim, op, node, cell),
            Event::ReplicaScan {
                op,
                token,
                node,
                start,
                limit,
                clamp,
                count,
            } => self.on_replica_scan(sim, op, token, node, start, limit, clamp, count),
            Event::ScanReturn {
                op,
                node,
                rows,
                exhausted,
            } => self.on_scan_return(sim, op, node, rows, exhausted),
            Event::Deliver { token, result } => {
                self.completed.push(Completion { token, result });
            }
            Event::Timeout { op } => self.on_timeout(sim, op),
            Event::HintReplay { node } => self.on_hint_replay(sim, node),
            Event::BgIo { node } => self.on_bg_io(sim, node),
            Event::GcPause { node } => self.on_gc_pause(sim, node),
        }
    }

    /// A stop-the-world pause: every core on the node is blocked for the
    /// configured duration, then the next pause is scheduled with ±25%
    /// jitter. This is the straggler source that makes high ack counts
    /// expensive — the paper's "write overhead becomes heavier when using a
    /// higher consistency level".
    fn on_gc_pause<W: From<Event>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
        let dur = self.config.pause_duration_us;
        let interval = self.config.pause_interval_us;
        if dur == 0 || interval == 0 {
            return;
        }
        // Pauses model allocation-pressure GC: they run only while the
        // cluster has work. Going quiet lets the simulation quiesce; the
        // next submit restarts the pause schedule.
        if self.pending.is_empty() {
            self.pauses_started = false;
            return;
        }
        {
            let n = &mut self.nodes[node.index()];
            if n.hw.is_up() {
                self.metrics.gc_pauses += 1;
                let now = sim.now();
                self.tracer
                    .record_bg(Stage::GcPause, node.0, now, now + dur);
                for _ in 0..n.hw.cpu.servers() {
                    n.hw.cpu.acquire(now, dur);
                }
            }
        }
        let jitter = interval / 2 + sim.rng().below(interval);
        sim.schedule_in(dur + jitter, W::from(Event::GcPause { node }));
    }

    /// Start draining a node's background backlog if not already draining.
    fn kick_bg_io<W: From<Event>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
        let n = &mut self.nodes[node.index()];
        if n.bg_backlog > 0 && !n.bg_active {
            n.bg_active = true;
            sim.schedule_in(0, W::from(Event::BgIo { node }));
        }
    }

    fn on_bg_io<W: From<Event>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
        let rate = self.config.bg_io_rate;
        let chunk_bytes = self.config.bg_chunk_bytes;
        let n = &mut self.nodes[node.index()];
        if n.bg_backlog == 0 {
            n.bg_active = false;
            return;
        }
        let chunk = n.bg_backlog.min(chunk_bytes);
        n.bg_backlog -= chunk;
        n.hw.disk.seq_write(sim.now(), chunk);
        if n.bg_backlog > 0 {
            // Pace chunks so the throttle's long-run rate is `bg_io_rate`.
            let interval = simkit::time::transfer_time(chunk, rate);
            sim.schedule_in(interval, W::from(Event::BgIo { node }));
        } else {
            n.bg_active = false;
        }
    }

    // ----- coordinator: arrival -----

    fn on_arrive<W: From<Event>>(&mut self, sim: &mut Sim<W>, op: OpKey) {
        let Some(p) = self.pending.get_mut(op) else {
            return;
        };
        let coord = p.coordinator;
        let token = p.token;
        // Move the op out of the pending slot instead of cloning it.
        let kind = match std::mem::replace(&mut p.state, PendingState::Dispatching) {
            PendingState::Init(kind) => kind,
            other => {
                p.state = other;
                return;
            }
        };
        if !self.is_up(coord) {
            // Coordinator died since submit.
            self.pending.remove(op);
            self.completed.push(Completion {
                token,
                result: OpResult::Error(OpError::Unavailable),
            });
            return;
        }
        let t1 = self.nodes[coord.index()]
            .hw
            .cpu
            .acquire(sim.now(), self.config.costs.coord_us);
        self.tracer
            .record(token, Stage::ServerCpu, coord.0, sim.now(), t1);
        match kind {
            StoreOp::Insert { key, value } | StoreOp::Update { key, value } => {
                self.start_write(sim, op, token, coord, key, Cell::live(value, t1), t1);
            }
            StoreOp::Delete { key } => {
                self.start_write(sim, op, token, coord, key, Cell::tombstone(t1), t1);
            }
            StoreOp::Read { key } => {
                self.start_read(sim, op, token, coord, key, t1);
            }
            StoreOp::Scan { start, limit } => {
                self.start_scan(sim, op, token, coord, start, limit, t1);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_write<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        coord: NodeId,
        key: Key,
        cell: Cell,
        t1: SimTime,
    ) {
        self.metrics.writes += 1;
        let rf = self.config.replication_factor;
        let write_cl = self.config.write_cl;
        let mut replicas = std::mem::take(&mut self.replica_scratch);
        self.ring.replicas_into(&key, rf, &mut replicas);
        // Quota denominators come from the *configured* replica set (live
        // or not), as in Cassandra's blockFor computation.
        let (needed, rule) = if write_cl.dc_aware() && self.multi_dc() {
            match write_cl {
                Consistency::LocalQuorum => {
                    let dc = self.region_of(coord);
                    let local_total = replicas
                        .iter()
                        .filter(|&&r| self.region_of(r) == dc)
                        .count() as u32;
                    if local_total == 0 {
                        // No replicas in the coordinator's DC: degrade to a
                        // plain majority rather than never settling.
                        (write_cl.required(rf), AckRule::Count)
                    } else {
                        (local_total / 2 + 1, AckRule::LocalDc { dc, acks: 0 })
                    }
                }
                _ => {
                    // EACH_QUORUM: a majority of each DC's replica count.
                    let mut quotas: Vec<(u32, u32, u32)> = Vec::new();
                    for &r in &replicas {
                        let region = self.region_of(r);
                        match quotas.iter_mut().find(|q| q.0 == region) {
                            Some(q) => q.1 += 1,
                            None => quotas.push((region, 1, 0)),
                        }
                    }
                    for q in &mut quotas {
                        q.1 = q.1 / 2 + 1;
                    }
                    (quotas.iter().map(|q| q.1).sum(), AckRule::PerDc(quotas))
                }
            }
        } else {
            (write_cl.required(rf), AckRule::Count)
        };
        // Live/dead replicas are walked in place (ring order) rather than
        // partitioned into per-op vectors.
        let live_count = replicas.iter().filter(|&&r| self.is_up(r)).count() as u32;
        let available = match &rule {
            AckRule::Count => live_count >= needed,
            AckRule::LocalDc { dc, .. } => {
                replicas
                    .iter()
                    .filter(|&&r| self.is_up(r) && self.region_of(r) == *dc)
                    .count() as u32
                    >= needed
            }
            AckRule::PerDc(quotas) => quotas.iter().all(|q| {
                replicas
                    .iter()
                    .filter(|&&r| self.is_up(r) && self.region_of(r) == q.0)
                    .count() as u32
                    >= q.1
            }),
        };
        if !available {
            self.replica_scratch = replicas;
            self.metrics.unavailable += 1;
            self.pending.remove(op);
            self.respond(sim, token, coord, t1, OpResult::Error(OpError::Unavailable));
            return;
        }
        if self.config.hinted_handoff {
            for &target in &replicas {
                if self.is_up(target) {
                    continue;
                }
                self.metrics.hints_stored += 1;
                self.nodes[coord.index()].hints.push(Hint {
                    target,
                    key: key.clone(),
                    cell: cell.clone(),
                });
            }
        }
        let bytes = self.config.costs.msg_overhead_bytes + entry_encoded_len(&key, &cell);
        let expected = live_count;
        let ts = cell.ts;
        for &r in &replicas {
            if !self.is_up(r) {
                continue;
            }
            let arr = self.net_to(coord, r, bytes, t1);
            let stage = self.hop_stage(coord, r);
            self.tracer.record(token, stage, r.0, t1, arr);
            sim.schedule_at(
                arr,
                W::from(Event::ReplicaWrite {
                    op,
                    token,
                    node: r,
                    key: key.clone(),
                    cell: cell.clone(),
                    ack: true,
                }),
            );
        }
        self.replica_scratch = replicas;
        if let Some(p) = self.pending.get_mut(op) {
            p.state = PendingState::Write(WriteState {
                needed,
                expected,
                acks: 0,
                responded: false,
                ts,
                fanout_at: t1,
                rule,
            });
        }
    }

    fn start_read<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        coord: NodeId,
        key: Key,
        t1: SimTime,
    ) {
        self.metrics.reads += 1;
        let rf = self.config.replication_factor;
        let read_cl = self.config.read_cl;
        let mut replicas = std::mem::take(&mut self.replica_scratch);
        // Ring order starting at the main replica — the paper's "fixed
        // order" replica selection.
        self.ring.replicas_into(&key, rf, &mut replicas);
        if read_cl.dc_aware() && self.multi_dc() {
            // Datacenter-aware levels: the quota replicas are chosen per DC
            // (LOCAL_QUORUM: coordinator's DC only, so no WAN hop sits on
            // the settle path; EACH_QUORUM: a quorum from every DC, so the
            // settle path waits on the slowest DC), still in ring order
            // within a DC.
            let live: Vec<NodeId> = replicas
                .iter()
                .copied()
                .filter(|&r| self.is_up(r))
                .collect();
            let (needed, quota_targets): (u32, Vec<NodeId>) = match read_cl {
                Consistency::LocalQuorum => {
                    let dc = self.region_of(coord);
                    let local_total = replicas
                        .iter()
                        .filter(|&&r| self.region_of(r) == dc)
                        .count() as u32;
                    if local_total == 0 {
                        let n = read_cl.required(rf);
                        (n, live.iter().copied().take(n as usize).collect())
                    } else {
                        let n = local_total / 2 + 1;
                        (
                            n,
                            live.iter()
                                .copied()
                                .filter(|&r| self.region_of(r) == dc)
                                .take(n as usize)
                                .collect(),
                        )
                    }
                }
                _ => {
                    let mut quotas: Vec<(u32, u32)> = Vec::new();
                    for &r in &replicas {
                        let region = self.region_of(r);
                        match quotas.iter_mut().find(|q| q.0 == region) {
                            Some(q) => q.1 += 1,
                            None => quotas.push((region, 1)),
                        }
                    }
                    let mut needed = 0;
                    let mut targets = Vec::new();
                    for (region, total) in quotas {
                        let q = total / 2 + 1;
                        needed += q;
                        targets.extend(
                            live.iter()
                                .copied()
                                .filter(|&r| self.region_of(r) == region)
                                .take(q as usize),
                        );
                    }
                    (needed, targets)
                }
            };
            self.replica_scratch = replicas;
            if (quota_targets.len() as u32) < needed {
                self.metrics.unavailable += 1;
                self.pending.remove(op);
                self.respond(sim, token, coord, t1, OpResult::Error(OpError::Unavailable));
                return;
            }
            let fanout =
                live.len() as u32 > needed && sim.rng().chance(self.config.read_repair_chance);
            if fanout {
                self.metrics.repair_fanouts += 1;
            }
            let targets: Vec<NodeId> = if fanout { live } else { quota_targets };
            let bytes = self.config.costs.msg_overhead_bytes + key.len() as u64;
            let expected = targets.len() as u32;
            for r in targets {
                let arr = self.net_to(coord, r, bytes, t1);
                let stage = self.hop_stage(coord, r);
                self.tracer.record(token, stage, r.0, t1, arr);
                sim.schedule_at(
                    arr,
                    W::from(Event::ReplicaRead {
                        op,
                        token,
                        node: r,
                        key: key.clone(),
                    }),
                );
            }
            if let Some(p) = self.pending.get_mut(op) {
                p.state = PendingState::Read(ReadState {
                    key,
                    needed,
                    expected,
                    responded: false,
                    fanout,
                    results: Vec::with_capacity(expected as usize),
                    fanout_at: t1,
                });
            }
            return;
        }
        // Single-DC fast path: the quota targets are simply the first
        // `needed` live replicas in ring order, so count and walk the
        // replica set in place instead of materialising target vectors.
        let needed = read_cl.required(rf);
        let live_count = replicas.iter().filter(|&&r| self.is_up(r)).count() as u32;
        if live_count < needed {
            self.replica_scratch = replicas;
            self.metrics.unavailable += 1;
            self.pending.remove(op);
            self.respond(sim, token, coord, t1, OpResult::Error(OpError::Unavailable));
            return;
        }
        let fanout = live_count > needed && sim.rng().chance(self.config.read_repair_chance);
        if fanout {
            self.metrics.repair_fanouts += 1;
        }
        let expected = if fanout { live_count } else { needed };
        let bytes = self.config.costs.msg_overhead_bytes + key.len() as u64;
        let mut sent = 0u32;
        for &r in &replicas {
            if sent == expected {
                break;
            }
            if !self.is_up(r) {
                continue;
            }
            sent += 1;
            let arr = self.net_to(coord, r, bytes, t1);
            let stage = self.hop_stage(coord, r);
            self.tracer.record(token, stage, r.0, t1, arr);
            sim.schedule_at(
                arr,
                W::from(Event::ReplicaRead {
                    op,
                    token,
                    node: r,
                    key: key.clone(),
                }),
            );
        }
        self.replica_scratch = replicas;
        if let Some(p) = self.pending.get_mut(op) {
            p.state = PendingState::Read(ReadState {
                key,
                needed,
                expected,
                responded: false,
                fanout,
                results: Vec::with_capacity(expected as usize),
                fanout_at: t1,
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_scan<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        coord: NodeId,
        start: Key,
        limit: usize,
        t1: SimTime,
    ) {
        self.metrics.scans += 1;
        let p_idx = self.ring.primary(&start);
        if let Some(p) = self.pending.get_mut(op) {
            p.state = PendingState::Scan(ScanState {
                limit,
                needed_this_round: 0,
                received_this_round: 0,
                partials: Vec::new(),
                collected: Vec::new(),
                current_primary: p_idx,
                rounds: 0,
                responded: false,
                round_started: t1,
            });
        }
        self.send_scan_round(sim, op, token, coord, p_idx, start, limit, t1);
    }

    #[allow(clippy::too_many_arguments)]
    fn send_scan_round<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        coord: NodeId,
        primary: usize,
        start: Key,
        limit: usize,
        t1: SimTime,
    ) {
        let rf = self.config.replication_factor;
        let needed = self.config.read_cl.required(rf);
        let n = self.nodes.len();
        let live: Vec<NodeId> = (0..(rf as usize).min(n))
            .map(|i| NodeId(((primary + i) % n) as u32))
            .filter(|&r| self.is_up(r))
            .collect();
        if (live.len() as u32) < needed {
            self.metrics.unavailable += 1;
            self.pending.remove(op);
            self.respond(sim, token, coord, t1, OpResult::Error(OpError::Unavailable));
            return;
        }
        // Range reads participate in read repair too (Cassandra's range
        // slice resolver): with the configured chance the round queries
        // every live replica of the range and reconciles across all of
        // them — this is what couples scan cost to the replication factor.
        let fanout = live.len() as u32 > needed && sim.rng().chance(self.config.read_repair_chance);
        if fanout {
            self.metrics.repair_fanouts += 1;
        }
        let probed = if fanout { live.len() } else { needed as usize };
        let clamp = self.ring.range_end(primary).cloned();
        let bytes = self.config.costs.msg_overhead_bytes + start.len() as u64;
        for (i, &r) in live[..probed].iter().enumerate() {
            let arr = self.net_to(coord, r, bytes, t1);
            self.tracer.record(token, Stage::ReplicaRpc, r.0, t1, arr);
            sim.schedule_at(
                arr,
                W::from(Event::ReplicaScan {
                    op,
                    token,
                    node: r,
                    start: start.clone(),
                    limit,
                    clamp: clamp.clone(),
                    // Repair probes beyond the consistency quota add load
                    // (that is their cost) but never gate the response.
                    count: i < needed as usize,
                }),
            );
        }
        if let Some(p) = self.pending.get_mut(op) {
            if let PendingState::Scan(s) = &mut p.state {
                s.needed_this_round = needed;
                s.received_this_round = 0;
                s.partials.clear();
                s.round_started = t1;
            }
        }
    }

    // ----- replica side -----

    #[allow(clippy::too_many_arguments)]
    fn on_replica_write<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        node: NodeId,
        key: Key,
        cell: Cell,
        ack: bool,
    ) {
        if !self.is_up(node) {
            return;
        }
        let costs = self.config.costs;
        let service = self.service(sim, costs.replica_write_us);
        let n = &mut self.nodes[node.index()];
        let cpu_end = n.hw.cpu.acquire(sim.now(), service);
        self.tracer
            .record(token, Stage::ReplicaWork, node.0, sim.now(), cpu_end);
        let mut t1 = cpu_end;
        let wal_bytes = entry_encoded_len(&key, &cell) + 8;
        match self.config.commitlog_sync {
            CommitlogSync::Periodic => {
                // Background bandwidth; the ack does not wait.
                n.hw.disk.seq_write(t1, wal_bytes);
            }
            CommitlogSync::PerWrite => {
                t1 = n.hw.disk.random_write(t1, wal_bytes);
                self.tracer
                    .record(token, Stage::WalCommit, node.0, cpu_end, t1);
            }
        }
        sim.schedule_at(
            t1,
            W::from(Event::WriteApplied {
                op,
                node,
                key,
                cell,
                ack,
            }),
        );
    }

    fn on_write_applied<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        node: NodeId,
        key: Key,
        cell: Cell,
        ack: bool,
    ) {
        if !self.is_up(node) {
            return;
        }
        let now = sim.now();
        {
            let n = &mut self.nodes[node.index()];
            n.lsm.put(key, cell);
            let (f, c) = n.maintain(now);
            self.metrics.flushes += u64::from(f);
            self.metrics.compactions += u64::from(c);
        }
        self.kick_bg_io(sim, node);
        if !ack {
            return;
        }
        let Some(p) = self.pending.get(op) else {
            return; // op already answered/timed out; the write still counts
        };
        let coord = p.coordinator;
        let token = p.token;
        let bytes = self.config.costs.msg_overhead_bytes;
        let arr = self.net_to(node, coord, bytes, now);
        let stage = self.hop_stage(node, coord);
        self.tracer.record(token, stage, node.0, now, arr);
        sim.schedule_at(arr, W::from(Event::WriteAck { op, node }));
    }

    fn on_write_ack<W: From<Event>>(&mut self, sim: &mut Sim<W>, op: OpKey, node: NodeId) {
        let Some(p) = self.pending.get(op) else {
            return;
        };
        let coord = p.coordinator;
        let token = p.token;
        let node_region = self.region_of(node);
        let t1 = self.nodes[coord.index()]
            .hw
            .cpu
            .acquire(sim.now(), self.config.costs.reconcile_us);
        self.tracer
            .record(token, Stage::Reconcile, coord.0, sim.now(), t1);
        let (respond_now, done, ts, fanout_at) = {
            let Some(p) = self.pending.get_mut(op) else {
                return;
            };
            let PendingState::Write(w) = &mut p.state else {
                return;
            };
            w.acks += 1;
            let settled = w.rule.ack(node_region, w.needed, w.acks);
            let respond_now = !w.responded && settled;
            if respond_now {
                w.responded = true;
            }
            (respond_now, w.acks >= w.expected, w.ts, w.fanout_at)
        };
        if respond_now {
            self.tracer
                .record(token, Stage::QuorumWait, coord.0, fanout_at, sim.now());
            self.respond(sim, token, coord, t1, OpResult::Written { ts });
        }
        if done {
            self.pending.remove(op);
        }
    }

    fn on_replica_read<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        node: NodeId,
        key: Key,
    ) {
        if !self.is_up(node) {
            return;
        }
        let costs = self.config.costs;
        let service = self.service(sim, costs.replica_read_us);
        let (cell, t1, t2) = {
            let n = &mut self.nodes[node.index()];
            let t1 = n.hw.cpu.acquire(sim.now(), service);
            let res = n.lsm.get(&key);
            let t2 = n.charge_io_plan(t1, &res.io);
            (res.cell, t1, t2)
        };
        self.tracer
            .record(token, Stage::ReplicaWork, node.0, sim.now(), t1);
        self.tracer.record(token, Stage::DiskIo, node.0, t1, t2);
        let Some(p) = self.pending.get(op) else {
            return;
        };
        let coord = p.coordinator;
        let bytes = self.cell_bytes(&cell);
        let arr = self.net_to(node, coord, bytes, t2);
        let stage = self.hop_stage(node, coord);
        self.tracer.record(token, stage, node.0, t2, arr);
        sim.schedule_at(arr, W::from(Event::ReadReturn { op, node, cell }));
    }

    fn on_read_return<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        node: NodeId,
        cell: Option<Cell>,
    ) {
        let Some(p) = self.pending.get(op) else {
            return;
        };
        let coord = p.coordinator;
        let token = p.token;
        let t1 = self.nodes[coord.index()]
            .hw
            .cpu
            .acquire(sim.now(), self.config.costs.reconcile_us);
        self.tracer
            .record(token, Stage::Reconcile, coord.0, sim.now(), t1);
        let (respond_now, winner_for_client, finished, repairs, fanout_at) = {
            let Some(p) = self.pending.get_mut(op) else {
                return;
            };
            let PendingState::Read(r) = &mut p.state else {
                return;
            };
            r.results.push((node, cell));
            let received = r.results.len() as u32;
            let mut respond_now = false;
            let mut winner_for_client = None;
            // A repair fan-out blocks the response until every contacted
            // replica answers (Cassandra 2.0's ReadCallback raises blockfor
            // when read repair is active); otherwise the consistency quota
            // releases the client.
            let release_at = if r.fanout { r.expected } else { r.needed };
            if !r.responded && received >= release_at {
                r.responded = true;
                respond_now = true;
                winner_for_client = reconcile(r.results.iter().map(|(_, c)| c.clone()));
            }
            let finished = received >= r.expected;
            let mut repairs = Vec::new();
            if finished {
                let winner = reconcile(r.results.iter().map(|(_, c)| c.clone()));
                if let Some(w) = &winner {
                    for (n, c) in &r.results {
                        let stale = c
                            .as_ref()
                            .is_none_or(|c| c.ts < w.ts || (c.ts == w.ts && c != w));
                        if stale {
                            repairs.push(*n);
                        }
                    }
                }
                // Mismatch within the answering quota = a digest mismatch.
                let quota = &r.results[..r.needed.min(received) as usize];
                if quota
                    .windows(2)
                    .any(|w| cell_version(&w[0].1) != cell_version(&w[1].1))
                {
                    self.metrics.digest_mismatches += 1;
                }
                if !repairs.is_empty() {
                    // Count exactly once per read that repaired something.
                    self.metrics.repair_writes += repairs.len() as u64;
                }
                (
                    respond_now,
                    winner_for_client,
                    true,
                    {
                        let w = winner;
                        repairs
                            .into_iter()
                            .map(|n| (n, w.clone().expect("winner exists if repairs do")))
                            .collect::<Vec<_>>()
                    },
                    r.fanout_at,
                )
            } else {
                (
                    respond_now,
                    winner_for_client,
                    false,
                    Vec::new(),
                    r.fanout_at,
                )
            }
        };
        if respond_now {
            self.tracer
                .record(token, Stage::QuorumWait, coord.0, fanout_at, sim.now());
            let client_cell = winner_for_client.filter(|c| !c.is_tombstone());
            // Blocked repair: if this response closes a fan-out that found
            // stale replicas, the client also waits for the repair
            // mutations to be acknowledged (one extra write round trip).
            let respond_at = if !repairs.is_empty() {
                t1 + 2 * self.config.profile.nic.prop_us + self.config.costs.replica_write_us
            } else {
                t1
            };
            self.tracer
                .record(token, Stage::RepairBlock, coord.0, t1, respond_at);
            self.respond(sim, token, coord, respond_at, OpResult::Value(client_cell));
        }
        if finished {
            // The op is done: take the pending entry, recovering the read
            // key (moved in at `start_read`) for the repair mutations.
            let done = self.pending.remove(op);
            if !repairs.is_empty() {
                let key = match done.map(|p| p.state) {
                    Some(PendingState::Read(r)) => r.key,
                    _ => unreachable!("read state exists until removal"),
                };
                for (target, cell) in repairs {
                    let bytes =
                        self.config.costs.msg_overhead_bytes + entry_encoded_len(&key, &cell);
                    let arr = self.net_to(coord, target, bytes, t1);
                    sim.schedule_at(
                        arr,
                        W::from(Event::ReplicaWrite {
                            op: OpKey::NONE,
                            token: 0,
                            node: target,
                            key: key.clone(),
                            cell,
                            ack: false,
                        }),
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_replica_scan<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        node: NodeId,
        start: Key,
        limit: usize,
        clamp: Option<Key>,
        count: bool,
    ) {
        if !self.is_up(node) {
            return;
        }
        let costs = self.config.costs;
        let service = self.service(sim, costs.replica_read_us);
        let (rows, exhausted, t1, t2, t3) = {
            let n = &mut self.nodes[node.index()];
            let t1 = n.hw.cpu.acquire(sim.now(), service);
            let res = n.lsm.scan(&start, limit);
            let t2 = n.charge_io_plan(t1, &res.io);
            let mut rows = res.rows;
            if let Some(end) = &clamp {
                rows.retain(|(k, _)| k < end);
            }
            let exhausted = rows.len() < limit;
            let t3 = n.hw.cpu.acquire(t2, costs.scan_row_us * rows.len() as u64);
            (rows, exhausted, t1, t2, t3)
        };
        if !count {
            return; // repair probe: the load was the point
        }
        self.tracer
            .record(token, Stage::ReplicaWork, node.0, sim.now(), t1);
        self.tracer.record(token, Stage::DiskIo, node.0, t1, t2);
        self.tracer.record(token, Stage::ScanRows, node.0, t2, t3);
        let Some(p) = self.pending.get(op) else {
            return;
        };
        let coord = p.coordinator;
        let bytes = self.rows_bytes(&rows);
        let arr = self.net_to(node, coord, bytes, t3);
        self.tracer
            .record(token, Stage::ReplicaRpc, node.0, t3, arr);
        sim.schedule_at(
            arr,
            W::from(Event::ScanReturn {
                op,
                node,
                rows,
                exhausted,
            }),
        );
    }

    fn on_scan_return<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        _node: NodeId,
        rows: Vec<(Key, Cell)>,
        _exhausted: bool,
    ) {
        let Some(p) = self.pending.get(op) else {
            return;
        };
        let coord = p.coordinator;
        let token = p.token;
        let t1 = self.nodes[coord.index()]
            .hw
            .cpu
            .acquire(sim.now(), self.config.costs.reconcile_us);
        self.tracer
            .record(token, Stage::Reconcile, coord.0, sim.now(), t1);
        enum Next {
            Wait,
            Respond(Vec<(Key, Cell)>),
            Continue {
                primary: usize,
                start: Key,
                remaining: usize,
            },
        }
        let next = {
            let Some(p) = self.pending.get_mut(op) else {
                return;
            };
            let PendingState::Scan(s) = &mut p.state else {
                return;
            };
            s.partials.push(rows);
            s.received_this_round += 1;
            if s.received_this_round < s.needed_this_round {
                Next::Wait
            } else {
                self.tracer.record(
                    token,
                    Stage::QuorumWait,
                    coord.0,
                    s.round_started,
                    sim.now(),
                );
                // Round complete: reconcile this range across its replicas.
                let sources = std::mem::take(&mut s.partials);
                let merged = storage::merge::merge_entries(sources, false);
                for (k, c) in merged {
                    if s.collected.len() >= s.limit {
                        break;
                    }
                    if !c.is_tombstone() {
                        s.collected.push((k, c));
                    }
                }
                let more_ranges = s.collected.len() < s.limit
                    && s.rounds + 1 < self.ring.len() as u32
                    && self.ring.range_end(s.current_primary).is_some();
                if more_ranges {
                    let nextp = self.ring.successor(s.current_primary);
                    s.current_primary = nextp;
                    s.rounds += 1;
                    let start = self
                        .ring
                        .range_start(nextp)
                        .expect("ordered ring has tokens")
                        .clone();
                    Next::Continue {
                        primary: nextp,
                        start,
                        remaining: s.limit - s.collected.len(),
                    }
                } else {
                    s.responded = true;
                    Next::Respond(std::mem::take(&mut s.collected))
                }
            }
        };
        match next {
            Next::Wait => {}
            Next::Respond(rows) => {
                self.pending.remove(op);
                self.respond(sim, token, coord, t1, OpResult::Rows(rows));
            }
            Next::Continue {
                primary,
                start,
                remaining,
            } => {
                self.send_scan_round(sim, op, token, coord, primary, start, remaining, t1);
            }
        }
    }

    fn on_timeout<W: From<Event>>(&mut self, sim: &mut Sim<W>, op: OpKey) {
        let Some(p) = self.pending.remove(op) else {
            return;
        };
        let responded = match &p.state {
            PendingState::Init(_) | PendingState::Dispatching => false,
            PendingState::Write(w) => w.responded,
            PendingState::Read(r) => r.responded,
            PendingState::Scan(s) => s.responded,
        };
        if !responded {
            self.metrics.timeouts += 1;
            let at = sim.now() + self.config.profile.nic.prop_us;
            self.tracer
                .record(p.token, Stage::RespSend, p.coordinator.0, sim.now(), at);
            sim.schedule_at(
                at,
                W::from(Event::Deliver {
                    token: p.token,
                    // Distinct from `Unavailable`: the coordinator *accepted*
                    // the request but replicas stopped answering mid-flight
                    // (Cassandra's TimedOutException vs UnavailableException).
                    result: OpResult::Error(OpError::Timeout),
                }),
            );
        }
    }

    fn on_hint_replay<W: From<Event>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
        if !self.is_up(node) {
            return;
        }
        let mut kept = Vec::new();
        let hints = std::mem::take(&mut self.nodes[node.index()].hints);
        let mut t = self.nodes[node.index()]
            .hw
            .cpu
            .acquire(sim.now(), self.config.costs.coord_us);
        for hint in hints {
            if self.is_up(hint.target) {
                self.metrics.hints_replayed += 1;
                let bytes =
                    self.config.costs.msg_overhead_bytes + entry_encoded_len(&hint.key, &hint.cell);
                let arr = self.net_to(node, hint.target, bytes, t);
                t += 10; // pace hint delivery slightly
                sim.schedule_at(
                    arr,
                    W::from(Event::ReplicaWrite {
                        op: OpKey::NONE,
                        token: 0,
                        node: hint.target,
                        key: hint.key,
                        cell: hint.cell,
                        ack: false,
                    }),
                );
            } else {
                kept.push(hint);
            }
        }
        self.nodes[node.index()].hints = kept;
    }
}

/// The uniform fault surface: crash/recover map onto the cluster's own
/// failure entry points (so hinted-handoff replay still triggers on
/// recovery), degradation faults act directly on the node's hardware.
impl faults::FaultTarget for Cluster {
    type Event = Event;

    fn fault_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn region_nodes(&self, region: u32) -> Vec<NodeId> {
        if region >= self.config.topology.num_regions() {
            return Vec::new();
        }
        self.config.topology.region_nodes(region).collect()
    }

    fn apply_crash<W: From<Event>>(&mut self, _sim: &mut Sim<W>, node: NodeId) {
        self.fail_node(node);
    }

    fn apply_recover<W: From<Event>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
        self.recover_node(sim, node);
    }

    fn apply_slow_disk(&mut self, node: NodeId, factor: u32) {
        self.nodes[node.index()].hw.degrade_disk(factor);
    }

    fn apply_restore_disk(&mut self, node: NodeId) {
        self.nodes[node.index()].hw.restore_disk();
    }

    fn apply_net_delay(&mut self, node: NodeId, extra_us: u64) {
        self.nodes[node.index()].hw.delay_net(extra_us);
    }

    fn apply_restore_net(&mut self, node: NodeId) {
        self.nodes[node.index()].hw.restore_net();
    }
}

fn cell_version(c: &Option<Cell>) -> u64 {
    c.as_ref().map_or(0, |c| c.ts)
}

/// Fold versions with last-write-wins; `None`s contribute nothing.
fn reconcile(cells: impl Iterator<Item = Option<Cell>>) -> Option<Cell> {
    cells.flatten().reduce(Cell::reconcile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Consistency;
    use crate::ring::Partitioner;
    use bytes::Bytes;

    /// Wrapper event type exercising the `W: From<Event>` plumbing the same
    /// way the real driver does.
    #[derive(Debug, Clone)]
    enum Ev {
        Store(Event),
    }
    impl From<Event> for Ev {
        fn from(e: Event) -> Self {
            Ev::Store(e)
        }
    }

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn key(i: u64) -> Bytes {
        Bytes::from(format!("user{i:012}").into_bytes())
    }

    fn ordered_config(rf: u32, nodes: usize, records: u64) -> CStoreConfig {
        let tokens: Vec<Bytes> = (0..nodes as u64)
            .map(|i| key(i * records / nodes as u64))
            .collect();
        let mut c = CStoreConfig::paper_testbed(rf, Partitioner::order_preserving(tokens));
        c.nodes = nodes;
        c.topology = simkit::Topology::single_rack(nodes, c.profile.nic.prop_us);
        c
    }

    struct Harness {
        cluster: Cluster,
        sim: Sim<Ev>,
        next_token: u64,
    }

    impl Harness {
        fn new(config: CStoreConfig) -> Self {
            Self {
                cluster: Cluster::new(config),
                sim: Sim::new(42),
                next_token: 1,
            }
        }

        fn submit(&mut self, op: StoreOp) -> u64 {
            let t = self.next_token;
            self.next_token += 1;
            self.cluster.submit(&mut self.sim, t, op);
            t
        }

        /// Run to quiescence, returning all completions.
        fn run(&mut self) -> Vec<Completion> {
            let mut out = Vec::new();
            while let Some(Ev::Store(ev)) = self.sim.next() {
                self.cluster.handle(&mut self.sim, ev);
                out.extend(self.cluster.drain_completions());
            }
            out
        }

        fn run_one(&mut self, op: StoreOp) -> Completion {
            let t = self.submit(op);
            let out = self.run();
            out.into_iter().find(|c| c.token == t).expect("completed")
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut h = Harness::new(ordered_config(3, 5, 1000));
        let w = h.run_one(StoreOp::Insert {
            key: key(10),
            value: k("hello"),
        });
        assert!(matches!(w.result, OpResult::Written { .. }));
        let r = h.run_one(StoreOp::Read { key: key(10) });
        match r.result {
            OpResult::Value(Some(cell)) => {
                assert_eq!(cell.value.as_deref(), Some(&b"hello"[..]));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn read_of_absent_key_is_none() {
        let mut h = Harness::new(ordered_config(3, 5, 1000));
        let r = h.run_one(StoreOp::Read { key: key(123) });
        assert_eq!(r.result, OpResult::Value(None));
    }

    #[test]
    fn delete_hides_value() {
        let mut h = Harness::new(ordered_config(3, 5, 1000));
        h.run_one(StoreOp::Insert {
            key: key(5),
            value: k("v"),
        });
        h.run_one(StoreOp::Delete { key: key(5) });
        let r = h.run_one(StoreOp::Read { key: key(5) });
        assert_eq!(r.result, OpResult::Value(None));
    }

    #[test]
    fn writes_reach_every_replica_regardless_of_level() {
        // "Writes are sent to all replicas; the level only gates the ack."
        let mut cfg = ordered_config(3, 5, 1000);
        cfg.write_cl = Consistency::One;
        let mut h = Harness::new(cfg);
        h.run_one(StoreOp::Insert {
            key: key(100),
            value: k("x"),
        });
        let replicas = h.cluster.ring().replicas(&key(100), 3);
        for r in replicas {
            let cell = h.cluster.read_local(r, &key(100)).expect("replica has it");
            assert_eq!(cell.value.as_deref(), Some(&b"x"[..]));
        }
    }

    #[test]
    fn quorum_read_sees_quorum_write() {
        let mut cfg = ordered_config(3, 5, 1000);
        cfg.write_cl = Consistency::Quorum;
        cfg.read_cl = Consistency::Quorum;
        let mut h = Harness::new(cfg);
        for i in 0..50u64 {
            h.run_one(StoreOp::Update {
                key: key(i % 7),
                value: Bytes::from(format!("v{i}").into_bytes()),
            });
            let r = h.run_one(StoreOp::Read { key: key(i % 7) });
            match r.result {
                OpResult::Value(Some(cell)) => {
                    assert_eq!(
                        cell.value.as_deref(),
                        Some(format!("v{i}").as_bytes()),
                        "read-your-writes violated at i={i}"
                    );
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn scan_returns_ordered_rows_across_ranges() {
        let mut h = Harness::new(ordered_config(2, 4, 100));
        for i in 0..100u64 {
            h.run_one(StoreOp::Insert {
                key: key(i),
                value: k("v"),
            });
        }
        let r = h.run_one(StoreOp::Scan {
            start: key(20),
            limit: 40,
        });
        match r.result {
            OpResult::Rows(rows) => {
                assert_eq!(rows.len(), 40, "spans range boundaries");
                let keys: Vec<_> = rows.iter().map(|(k, _)| k.clone()).collect();
                assert_eq!(keys[0], key(20));
                assert_eq!(keys[39], key(59));
                let mut sorted = keys.clone();
                sorted.sort();
                assert_eq!(keys, sorted);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn scan_stops_at_data_end() {
        let mut h = Harness::new(ordered_config(2, 4, 100));
        for i in 0..30u64 {
            h.run_one(StoreOp::Insert {
                key: key(i),
                value: k("v"),
            });
        }
        let r = h.run_one(StoreOp::Scan {
            start: key(25),
            limit: 50,
        });
        match r.result {
            OpResult::Rows(rows) => assert_eq!(rows.len(), 5),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unavailable_when_too_few_replicas_up() {
        let mut cfg = ordered_config(3, 5, 1000);
        cfg.write_cl = Consistency::All;
        let mut h = Harness::new(cfg);
        let reps = h.cluster.ring().replicas(&key(0), 3);
        h.cluster.fail_node(reps[2]);
        let w = h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("x"),
        });
        assert_eq!(w.result, OpResult::Error(OpError::Unavailable));
        assert_eq!(h.cluster.metrics().unavailable, 1);
    }

    #[test]
    fn cl_one_survives_replica_failures() {
        let mut h = Harness::new(ordered_config(3, 5, 1000));
        let reps = h.cluster.ring().replicas(&key(0), 3);
        h.cluster.fail_node(reps[1]);
        h.cluster.fail_node(reps[2]);
        let w = h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("x"),
        });
        assert!(matches!(w.result, OpResult::Written { .. }));
        let r = h.run_one(StoreOp::Read { key: key(0) });
        assert!(matches!(r.result, OpResult::Value(Some(_))));
    }

    #[test]
    fn hinted_handoff_catches_up_failed_replica() {
        let mut h = Harness::new(ordered_config(3, 5, 1000));
        let reps = h.cluster.ring().replicas(&key(0), 3);
        let victim = reps[2];
        h.cluster.fail_node(victim);
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("fresh"),
        });
        assert!(h.cluster.metrics().hints_stored >= 1);
        assert!(h.cluster.read_local(victim, &key(0)).is_none());
        // Recover: hints replay.
        let mut sim_ref = std::mem::replace(&mut h.sim, Sim::new(0));
        h.cluster.recover_node(&mut sim_ref, victim);
        h.sim = sim_ref;
        h.run();
        assert!(h.cluster.metrics().hints_replayed >= 1);
        let cell = h.cluster.read_local(victim, &key(0)).expect("hint applied");
        assert_eq!(cell.value.as_deref(), Some(&b"fresh"[..]));
    }

    /// Make one replica of `key(0)` stale for real: fail it, overwrite at
    /// CL=ONE with hinted handoff off, recover it. Returns the stale node.
    fn make_stale_replica(h: &mut Harness, stale_idx: usize, val: &str) -> NodeId {
        let reps = h.cluster.ring().replicas(&key(0), 3);
        let victim = reps[stale_idx];
        h.cluster.fail_node(victim);
        h.run_one(StoreOp::Update {
            key: key(0),
            value: k(val),
        });
        h.cluster.node_mut(victim).hw.recover();
        victim
    }

    #[test]
    fn read_repair_fanout_fixes_stale_replica() {
        let mut cfg = ordered_config(3, 5, 1000);
        cfg.read_repair_chance = 1.0; // always fan out
        cfg.hinted_handoff = false;
        let mut h = Harness::new(cfg);
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("old"),
        });
        let stale_node = make_stale_replica(&mut h, 2, "new");
        assert_eq!(
            h.cluster
                .read_local(stale_node, &key(0))
                .unwrap()
                .value
                .as_deref(),
            Some(&b"old"[..]),
            "replica missed the overwrite while down"
        );
        // A read triggers fan-out repair. At CL=ONE the client may still see
        // either version (whichever replica answers first) — that is the
        // consistency the level promises — but the repair must converge.
        let r = h.run_one(StoreOp::Read { key: key(0) });
        assert!(matches!(r.result, OpResult::Value(Some(_))));
        assert!(h.cluster.metrics().repair_fanouts >= 1);
        assert!(h.cluster.metrics().repair_writes >= 1);
        let repaired = h.cluster.read_local(stale_node, &key(0)).unwrap();
        assert_eq!(repaired.value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn no_repair_without_fanout_at_cl_one() {
        let mut cfg = ordered_config(3, 5, 1000);
        cfg.read_repair_chance = 0.0;
        cfg.hinted_handoff = false;
        let mut h = Harness::new(cfg);
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("old"),
        });
        let stale_node = make_stale_replica(&mut h, 2, "new");
        h.run_one(StoreOp::Read { key: key(0) });
        assert_eq!(h.cluster.metrics().repair_fanouts, 0);
        assert_eq!(h.cluster.metrics().repair_writes, 0);
        // The stale replica stays stale (eventual consistency at ONE).
        let still = h.cluster.read_local(stale_node, &key(0)).unwrap();
        assert_eq!(still.value.as_deref(), Some(&b"old"[..]));
    }

    #[test]
    fn quorum_read_repairs_foreground_mismatch() {
        let mut cfg = ordered_config(3, 5, 1000);
        cfg.read_cl = Consistency::Quorum;
        cfg.read_repair_chance = 0.0;
        cfg.hinted_handoff = false;
        let mut h = Harness::new(cfg);
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("old"),
        });
        // Regress the *main* replica, which always participates in reads.
        let stale_node = make_stale_replica(&mut h, 0, "new");
        let r = h.run_one(StoreOp::Read { key: key(0) });
        match r.result {
            OpResult::Value(Some(cell)) => {
                assert_eq!(
                    cell.value.as_deref(),
                    Some(&b"new"[..]),
                    "quorum reconciles"
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(h.cluster.metrics().digest_mismatches >= 1);
        // Foreground mismatch repaired the quota member.
        let repaired = h.cluster.read_local(stale_node, &key(0)).unwrap();
        assert_eq!(repaired.value.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn latency_orders_one_quorum_all() {
        // Write latency must rise with the consistency level.
        let mut lat = Vec::new();
        for cl in [Consistency::One, Consistency::Quorum, Consistency::All] {
            let mut cfg = ordered_config(3, 5, 1000);
            cfg.write_cl = cl;
            let mut h = Harness::new(cfg);
            let issue = h.sim.now();
            let t = h.submit(StoreOp::Insert {
                key: key(0),
                value: k("x"),
            });
            let mut done_at = 0;
            while let Some(Ev::Store(ev)) = h.sim.next() {
                h.cluster.handle(&mut h.sim, ev);
                if h.cluster.drain_completions().iter().any(|c| c.token == t) {
                    done_at = h.sim.now();
                }
            }
            lat.push(done_at - issue);
        }
        assert!(lat[0] <= lat[1] && lat[1] <= lat[2], "latencies: {lat:?}");
        assert!(lat[2] > lat[0], "ALL must cost more than ONE: {lat:?}");
    }

    #[test]
    fn gc_pause_delays_all_writes_but_not_one() {
        // Inject a pause on one replica, then measure a CL=ALL write vs a
        // CL=ONE write issued during the pause window.
        let mut lat = Vec::new();
        for cl in [Consistency::One, Consistency::All] {
            let mut cfg = ordered_config(3, 5, 1000);
            cfg.write_cl = cl;
            cfg.pause_interval_us = 0; // no random pauses; we inject one
            cfg.pause_duration_us = 0;
            let mut h = Harness::new(cfg);
            // Warm the path so coordinator rotation is identical.
            h.run_one(StoreOp::Insert {
                key: key(1),
                value: k("x"),
            });
            let reps = h.cluster.ring().replicas(&key(0), 3);
            // Manually pause the third replica for 50ms.
            let now = h.sim.now();
            let node = &mut h.cluster.nodes[reps[2].index()];
            for _ in 0..node.hw.cpu.servers() {
                node.hw.cpu.acquire(now, 50_000);
            }
            let issue = h.sim.now();
            let t = h.submit(StoreOp::Insert {
                key: key(0),
                value: k("y"),
            });
            let mut done = 0;
            while let Some(Ev::Store(ev)) = h.sim.next() {
                h.cluster.handle(&mut h.sim, ev);
                if h.cluster.drain_completions().iter().any(|c| c.token == t) {
                    done = h.sim.now();
                }
            }
            lat.push(done - issue);
        }
        assert!(lat[0] < 10_000, "ONE should dodge the straggler: {lat:?}");
        assert!(lat[1] > 40_000, "ALL must wait out the pause: {lat:?}");
    }

    #[test]
    fn timeouts_fire_when_replicas_die_mid_flight() {
        let mut cfg = ordered_config(3, 5, 1000);
        cfg.read_cl = Consistency::All;
        let mut h = Harness::new(cfg);
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("x"),
        });
        let reps = h.cluster.ring().replicas(&key(0), 3);
        // Submit the read; kill a replica after the coordinator has fanned
        // out (i.e. right after the Arrive event), so its request is
        // silently dropped mid-flight.
        let t = h.submit(StoreOp::Read { key: key(0) });
        let mut out = Vec::new();
        while let Some(Ev::Store(ev)) = h.sim.next() {
            let was_arrive = matches!(ev, Event::Arrive { .. });
            h.cluster.handle(&mut h.sim, ev);
            out.extend(h.cluster.drain_completions());
            if was_arrive {
                h.cluster.fail_node(reps[2]);
            }
        }
        let c = out.into_iter().find(|c| c.token == t).expect("timed out");
        // Mid-flight replica death is a *timeout*, not an unavailable
        // verdict: the coordinator accepted the request, so a retrying
        // client should treat it as transient.
        assert_eq!(c.result, OpResult::Error(OpError::Timeout));
        assert!(OpError::Timeout.is_retryable());
        assert_eq!(h.cluster.metrics().timeouts, 1);
        assert_eq!(h.cluster.metrics().unavailable, 0);
    }

    #[test]
    fn load_direct_populates_replicas() {
        let mut h = Harness::new(ordered_config(3, 5, 100));
        for i in 0..100u64 {
            h.cluster.load_direct(key(i), k("seed"), 1);
        }
        h.cluster.flush_all();
        for i in (0..100u64).step_by(13) {
            for r in h.cluster.ring().replicas(&key(i), 3) {
                assert!(h.cluster.read_local(r, &key(i)).is_some());
            }
        }
        // Reads served through the full path too.
        let r = h.run_one(StoreOp::Read { key: key(42) });
        assert!(matches!(r.result, OpResult::Value(Some(_))));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut h = Harness::new(ordered_config(3, 5, 1000));
            let mut tokens = Vec::new();
            for i in 0..20u64 {
                tokens.push(h.submit(StoreOp::Insert {
                    key: key(i),
                    value: k("v"),
                }));
            }
            let out = h.run();
            (out.len(), h.sim.now(), h.cluster.metrics().writes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_count_operations() {
        let mut h = Harness::new(ordered_config(2, 4, 100));
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("v"),
        });
        h.run_one(StoreOp::Read { key: key(0) });
        h.run_one(StoreOp::Scan {
            start: key(0),
            limit: 5,
        });
        let m = h.cluster.metrics();
        assert_eq!(m.writes, 1);
        assert_eq!(m.reads, 1);
        assert_eq!(m.scans, 1);
    }

    // ----- geo: datacenter-aware consistency levels -----

    const WAN_US: u64 = 25_000;

    /// A multi-region cluster: `regions × nodes_per_region`, NTS placing
    /// `rf_per_dc` replicas in each DC, a uniform `WAN_US` one-way
    /// inter-region delay, deterministic service times, no read repair.
    fn geo_cluster_config(regions: u32, nodes_per_region: usize, rf_per_dc: u32) -> CStoreConfig {
        let geo_cfg = geo::GeoConfig {
            regions,
            racks_per_region: 1,
            inter_region_us: WAN_US,
            wan_jitter: 0.0,
            jitter_seed: 0,
        };
        let mut c = CStoreConfig::paper_testbed(regions * rf_per_dc, Partitioner::murmur());
        c.nodes = regions as usize * nodes_per_region;
        c.topology = geo_cfg.topology(
            nodes_per_region,
            c.profile.nic.prop_us,
            c.profile.nic.prop_us,
        );
        c.strategy = geo::Strategy::network_topology(regions, rf_per_dc);
        c.read_repair_chance = 0.0;
        c.costs.jitter = 0.0;
        c
    }

    fn timed_write(mut cfg: CStoreConfig, write_cl: Consistency) -> SimTime {
        cfg.write_cl = write_cl;
        let mut h = Harness::new(cfg);
        let issue = h.sim.now();
        let t = h.submit(StoreOp::Insert {
            key: key(0),
            value: k("x"),
        });
        let mut done_at = None;
        while let Some(Ev::Store(ev)) = h.sim.next() {
            h.cluster.handle(&mut h.sim, ev);
            for c in h.cluster.drain_completions() {
                if c.token == t {
                    assert!(
                        matches!(c.result, OpResult::Written { .. }),
                        "write failed: {:?}",
                        c.result
                    );
                    done_at = Some(h.sim.now());
                }
            }
        }
        done_at.expect("write settled") - issue
    }

    #[test]
    fn local_quorum_write_settles_without_wan_hop() {
        // 2 regions, 3 replicas per DC, 25 ms WAN: LOCAL_QUORUM must settle
        // on the coordinator DC's quorum alone — well under one WAN hop.
        let lat = timed_write(geo_cluster_config(2, 3, 3), Consistency::LocalQuorum);
        assert!(
            lat < WAN_US,
            "LOCAL_QUORUM paid a WAN hop: {lat}us >= {WAN_US}us"
        );
    }

    #[test]
    fn each_quorum_write_waits_on_the_slowest_dc() {
        // EACH_QUORUM needs a remote-DC quorum: at least one full WAN round
        // trip (request out + ack back) sits on the settle path.
        let each = timed_write(geo_cluster_config(2, 3, 3), Consistency::EachQuorum);
        assert!(
            each >= 2 * WAN_US,
            "EACH_QUORUM must pay a WAN round trip: {each}us < {}us",
            2 * WAN_US
        );
        let local = timed_write(geo_cluster_config(2, 3, 3), Consistency::LocalQuorum);
        assert!(
            local < each,
            "LOCAL_QUORUM {local}us vs EACH_QUORUM {each}us"
        );
    }

    #[test]
    fn per_dc_ack_sets_gate_each_quorum() {
        // Acks from one DC alone — however many — must not settle an
        // EACH_QUORUM write. With the remote DC crashed the write is
        // rejected as unavailable (its quorum can never assemble).
        let mut cfg = geo_cluster_config(2, 3, 3);
        cfg.write_cl = Consistency::EachQuorum;
        let mut h = Harness::new(cfg);
        for n in 3..6 {
            h.cluster.fail_node(NodeId(n)); // take down all of region 1
        }
        let c = h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("x"),
        });
        assert_eq!(c.result, OpResult::Error(OpError::Unavailable));

        // LOCAL_QUORUM (coordinator in the surviving DC) rides through.
        let mut cfg3 = geo_cluster_config(2, 3, 3);
        cfg3.write_cl = Consistency::LocalQuorum;
        let mut h = Harness::new(cfg3);
        for n in 3..6 {
            h.cluster.fail_node(NodeId(n));
        }
        let c = h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("x"),
        });
        assert!(matches!(c.result, OpResult::Written { .. }));
    }

    #[test]
    fn local_quorum_read_contacts_only_local_replicas() {
        let mut cfg = geo_cluster_config(2, 3, 3);
        cfg.read_cl = Consistency::LocalQuorum;
        cfg.write_cl = Consistency::EachQuorum; // seed every DC first
        let mut h = Harness::new(cfg);
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: k("v"),
        });
        let issue = h.sim.now();
        let t = h.submit(StoreOp::Read { key: key(0) });
        let mut done_at = None;
        while let Some(Ev::Store(ev)) = h.sim.next() {
            h.cluster.handle(&mut h.sim, ev);
            for c in h.cluster.drain_completions() {
                if c.token == t {
                    assert!(matches!(c.result, OpResult::Value(Some(_))));
                    done_at = Some(h.sim.now());
                }
            }
        }
        let lat = done_at.expect("read settled") - issue;
        assert!(
            lat < WAN_US,
            "LOCAL_QUORUM read paid a WAN hop: {lat}us >= {WAN_US}us"
        );
    }

    #[test]
    fn single_region_local_quorum_is_bit_identical_to_quorum() {
        // On a single-DC cluster the DC-aware levels reduce exactly to
        // QUORUM: same completions at the same virtual instants, same
        // event and RNG trajectory (sim.now() and dispatch counts match).
        let run = |read_cl: Consistency, write_cl: Consistency| {
            let mut cfg = ordered_config(3, 5, 1000);
            cfg.read_cl = read_cl;
            cfg.write_cl = write_cl;
            let mut h = Harness::new(cfg);
            for i in 0..30u64 {
                h.submit(StoreOp::Insert {
                    key: key(i % 7),
                    value: k("v"),
                });
            }
            for i in 0..30u64 {
                h.submit(StoreOp::Read { key: key(i % 7) });
            }
            let out = h.run();
            (out.len(), h.sim.now(), h.sim.dispatched())
        };
        let quorum = run(Consistency::Quorum, Consistency::Quorum);
        assert_eq!(
            run(Consistency::LocalQuorum, Consistency::LocalQuorum),
            quorum
        );
        assert_eq!(
            run(Consistency::EachQuorum, Consistency::EachQuorum),
            quorum
        );
    }
}
