//! Cluster-level behaviour counters, used by experiments and assertions.

/// Counters accumulated by a [`crate::Cluster`] during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Point reads coordinated.
    pub reads: u64,
    /// Writes coordinated.
    pub writes: u64,
    /// Scans coordinated.
    pub scans: u64,
    /// Operations rejected for insufficient live replicas.
    pub unavailable: u64,
    /// Operations that timed out waiting for replica responses.
    pub timeouts: u64,
    /// Reads whose consistency quota saw disagreeing versions.
    pub digest_mismatches: u64,
    /// Reads that probed every replica (read-repair fan-out).
    pub repair_fanouts: u64,
    /// Repair mutations sent to stale replicas.
    pub repair_writes: u64,
    /// Hints queued for dead replicas.
    pub hints_stored: u64,
    /// Hints delivered after recovery.
    pub hints_replayed: u64,
    /// Memtable flushes across the cluster.
    pub flushes: u64,
    /// Compactions across the cluster.
    pub compactions: u64,
    /// Stop-the-world pauses taken across the cluster.
    pub gc_pauses: u64,
    /// Operations shed at the coordinator door by admission control.
    pub shed: u64,
}

impl Metrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }
}
