//! Cluster-level behaviour counters, used by experiments and assertions.

/// Counters accumulated by a [`crate::Cluster`] during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Point reads coordinated.
    pub reads: u64,
    /// Writes coordinated.
    pub writes: u64,
    /// Scans coordinated.
    pub scans: u64,
    /// Operations rejected for insufficient live replicas.
    pub unavailable: u64,
    /// Operations that timed out waiting for replica responses.
    pub timeouts: u64,
    /// Reads whose consistency quota saw disagreeing versions.
    pub digest_mismatches: u64,
    /// Reads that probed every replica (read-repair fan-out).
    pub repair_fanouts: u64,
    /// Repair mutations sent to stale replicas.
    pub repair_writes: u64,
    /// Hints queued for dead replicas.
    pub hints_stored: u64,
    /// Hints delivered after recovery.
    pub hints_replayed: u64,
    /// Memtable flushes across the cluster.
    pub flushes: u64,
    /// Compactions across the cluster.
    pub compactions: u64,
    /// Stop-the-world pauses taken across the cluster.
    pub gc_pauses: u64,
}

impl Metrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Difference against an earlier snapshot (for measuring a window).
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            scans: self.scans - earlier.scans,
            unavailable: self.unavailable - earlier.unavailable,
            timeouts: self.timeouts - earlier.timeouts,
            digest_mismatches: self.digest_mismatches - earlier.digest_mismatches,
            repair_fanouts: self.repair_fanouts - earlier.repair_fanouts,
            repair_writes: self.repair_writes - earlier.repair_writes,
            hints_stored: self.hints_stored - earlier.hints_stored,
            hints_replayed: self.hints_replayed - earlier.hints_replayed,
            flushes: self.flushes - earlier.flushes,
            compactions: self.compactions - earlier.compactions,
            gc_pauses: self.gc_pauses - earlier.gc_pauses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let early = Metrics {
            reads: 10,
            repair_writes: 2,
            ..Metrics::new()
        };
        let late = Metrics {
            reads: 25,
            repair_writes: 7,
            writes: 3,
            ..Metrics::new()
        };
        let d = late.since(&early);
        assert_eq!(d.reads, 15);
        assert_eq!(d.repair_writes, 5);
        assert_eq!(d.writes, 3);
        assert_eq!(d.scans, 0);
    }
}
