//! One server node: simulated hardware plus its storage engine and hints.

use simkit::{NodeHw, SimTime};
use storage::io::IoOp;
use storage::{Cell, IoPlan, Key, LsmConfig, LsmTree};

/// A mutation owed to a replica that was down when it was written.
#[derive(Debug, Clone)]
pub struct Hint {
    /// The replica that missed the write.
    pub target: simkit::NodeId,
    /// Key of the missed mutation.
    pub key: Key,
    /// The missed cell.
    pub cell: Cell,
}

/// One Cassandra-analog server.
#[derive(Debug, Clone)]
pub struct CNode {
    /// Simulated CPU / disk / NIC.
    pub hw: NodeHw,
    /// The node's storage engine (commit log + memtable + SSTables).
    pub lsm: LsmTree,
    /// Hinted-handoff queue held *by* this node for other nodes.
    pub hints: Vec<Hint>,
    /// Bytes of flush/compaction disk work waiting to trickle out through
    /// the background-I/O throttle.
    pub bg_backlog: u64,
    /// True while a background-I/O drain event is scheduled.
    pub bg_active: bool,
}

impl CNode {
    /// Build a node.
    pub fn new(profile: simkit::NodeProfile, lsm: LsmConfig) -> Self {
        Self {
            hw: NodeHw::new(profile),
            lsm: LsmTree::new(lsm),
            hints: Vec::new(),
            bg_backlog: 0,
            bg_active: false,
        }
    }

    /// Charge an I/O plan against this node's disk, serially, starting at
    /// `start`. Returns when the last foreground read completes. Sequential
    /// writes inside a read plan never occur; they are charged by flush and
    /// compaction paths directly.
    pub fn charge_io_plan(&mut self, start: SimTime, plan: &IoPlan) -> SimTime {
        let mut t = start;
        for op in plan.iter() {
            match *op {
                IoOp::DiskRead { bytes } => t = self.hw.disk.random_read(t, bytes),
                IoOp::DiskSeqRead { bytes } => t = self.hw.disk.seq_read(t, bytes),
                IoOp::DiskSeqWrite { bytes } => {
                    // Background write: consumes bandwidth, does not gate t.
                    self.hw.disk.seq_write(t, bytes);
                }
                IoOp::MemtableHit | IoOp::CacheHit { .. } | IoOp::BloomSkip => {}
            }
        }
        t
    }

    /// Run the post-write maintenance that a replica performs when its
    /// memtable fills: flush, then compact if ripe. The disk work is *not*
    /// charged here — it is added to [`CNode::bg_backlog`] and trickled out
    /// by the cluster's background-I/O throttle (real stores rate-limit
    /// compaction so it cannot monopolize the spindle). Returns
    /// `(flushes, compactions)` performed.
    pub fn maintain(&mut self, _now: SimTime) -> (u32, u32) {
        let mut flushes = 0;
        let mut compactions = 0;
        if self.lsm.memtable_bytes() >= self.lsm.config().memtable_flush_bytes {
            if let Some(receipt) = self.lsm.flush() {
                self.bg_backlog += receipt.bytes;
                flushes += 1;
                if receipt.compaction_due {
                    if let Some(c) = self.lsm.maybe_compact() {
                        self.bg_backlog += c.read_bytes + c.write_bytes;
                        compactions += 1;
                    }
                }
            }
        }
        (flushes, compactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simkit::NodeProfile;
    use storage::io::IoOp;

    fn node() -> CNode {
        CNode::new(
            NodeProfile::paper_testbed(),
            LsmConfig {
                memtable_flush_bytes: 2_048,
                ..LsmConfig::default()
            },
        )
    }

    #[test]
    fn io_plan_charging_serializes_reads() {
        let mut n = node();
        let mut plan = IoPlan::new();
        plan.push(IoOp::DiskRead { bytes: 0 });
        plan.push(IoOp::DiskRead { bytes: 0 });
        let done = n.charge_io_plan(0, &plan);
        assert_eq!(done, 16_000, "two 8ms seeks back to back");
    }

    #[test]
    fn background_writes_do_not_gate_completion() {
        let mut n = node();
        let mut plan = IoPlan::new();
        plan.push(IoOp::DiskSeqWrite { bytes: 1_000_000 });
        plan.push(IoOp::CacheHit { bytes: 100 });
        let done = n.charge_io_plan(5, &plan);
        assert_eq!(done, 5, "nothing foreground in this plan");
        assert!(n.hw.disk.utilization(1_000_000) > 0.0);
    }

    #[test]
    fn maintain_flushes_when_threshold_crossed() {
        let mut n = node();
        for i in 0..200 {
            n.lsm.put(
                Bytes::from(format!("user{i:06}").into_bytes()),
                Cell::live(Bytes::from(vec![1u8; 64]), i),
            );
        }
        assert!(n.lsm.memtable_bytes() >= 2_048);
        let (flushes, _) = n.maintain(0);
        assert_eq!(flushes, 1);
        assert_eq!(n.lsm.memtable_bytes(), 0);
        assert!(
            n.bg_backlog > 0,
            "flush bytes must enter the background-I/O backlog"
        );
    }

    #[test]
    fn maintain_is_noop_below_threshold() {
        let mut n = node();
        n.lsm.put(
            Bytes::from_static(b"a"),
            Cell::live(Bytes::from_static(b"v"), 1),
        );
        assert_eq!(n.maintain(0), (0, 0));
    }
}
