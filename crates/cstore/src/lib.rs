//! # cstore — the Cassandra analog
//!
//! A from-scratch implementation of the replication and consistency
//! machinery the paper benchmarks in Cassandra:
//!
//! * a token **ring** with SimpleStrategy successor replication and either
//!   an order-preserving or a hashing partitioner ([`ring`]);
//! * a **coordinator** path with tunable consistency levels (ONE / TWO /
//!   THREE / QUORUM / ALL, read and write set independently) — writes go to
//!   *every* live replica and acknowledge after the level's quota, reads
//!   fan to the level's quota starting at the **main replica** (ring-order
//!   first, exactly the paper's description) and reconcile by timestamp;
//! * **read repair**: with a configurable chance a read probes *all*
//!   replicas in the background and rewrites stale ones — the mechanism the
//!   paper blames for Cassandra's read-latency growth at RF > 3;
//! * per-node **commit log + memtable + SSTables** (via the shared
//!   [`storage`] engine), flushes and size-tiered compactions that contend
//!   for the node's simulated disk;
//! * **hinted handoff** and unavailable-error semantics for failure
//!   experiments.
//!
//! Everything is functionally real (reads return actually-stored bytes;
//! repair really rewrites replicas) and temporally simulated (every hop,
//! CPU slice, and disk access is charged to `simkit` resources).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod config;
pub mod event;
pub mod metrics;
pub mod node;
pub mod ring;

pub use cluster::Cluster;
pub use config::{CStoreConfig, CommitlogSync, Consistency, ServiceCosts};
pub use event::Event;
pub use metrics::Metrics;
pub use ring::{Partitioner, Ring};
