//! The cluster's internal event vocabulary.
//!
//! `cstore` is queue-agnostic: every method is generic over any event
//! payload `W: From<Event>`, so the experiment driver can embed these events
//! in its own enum alongside client-side events.

use simkit::NodeId;
use storage::{Cell, Key, OpResult};

/// An internal simulation event of the Cassandra-analog cluster.
#[derive(Debug, Clone)]
pub enum Event {
    /// A client request has fully arrived at its coordinator.
    Arrive {
        /// Operation id (the driver token).
        op: u64,
    },
    /// A mutation has arrived at a replica.
    ReplicaWrite {
        /// Operation id; ignored when `ack` is false.
        op: u64,
        /// The replica.
        node: NodeId,
        /// Mutated key.
        key: Key,
        /// New cell.
        cell: Cell,
        /// Whether the replica should acknowledge to the coordinator.
        ack: bool,
    },
    /// A replica finished applying a mutation (CPU/log done).
    WriteApplied {
        /// Operation id; ignored when `ack` is false.
        op: u64,
        /// The replica.
        node: NodeId,
        /// Mutated key.
        key: Key,
        /// New cell.
        cell: Cell,
        /// Whether to acknowledge.
        ack: bool,
    },
    /// A replica's write acknowledgement reached the coordinator.
    WriteAck {
        /// Operation id.
        op: u64,
    },
    /// A read request arrived at a replica.
    ReplicaRead {
        /// Operation id.
        op: u64,
        /// The replica.
        node: NodeId,
        /// Key to read.
        key: Key,
    },
    /// A replica's read response reached the coordinator.
    ReadReturn {
        /// Operation id.
        op: u64,
        /// The responding replica.
        node: NodeId,
        /// What the replica had (None = no version).
        cell: Option<Cell>,
    },
    /// A scan request arrived at a replica.
    ReplicaScan {
        /// Operation id.
        op: u64,
        /// The replica.
        node: NodeId,
        /// First key of the range.
        start: Key,
        /// Row budget for this range.
        limit: usize,
        /// Exclusive end of the replica's scanned range, when known.
        clamp: Option<Key>,
        /// False for repair probes: their responses add load but the
        /// coordinator neither waits for nor merges them.
        count: bool,
    },
    /// A replica's scan response reached the coordinator.
    ScanReturn {
        /// Operation id.
        op: u64,
        /// The responding replica.
        node: NodeId,
        /// Rows found (may include tombstones; coordinator filters).
        rows: Vec<(Key, Cell)>,
        /// True when the replica ran out of range before the row budget.
        exhausted: bool,
    },
    /// The final response reached the client: deliver the completion.
    Deliver {
        /// The driver token.
        token: u64,
        /// The outcome.
        result: OpResult,
    },
    /// Give up on an operation that is still incomplete.
    Timeout {
        /// Operation id.
        op: u64,
    },
    /// Drain this node's hint queue toward recovered replicas.
    HintReplay {
        /// The hint-holding node.
        node: NodeId,
    },
    /// Trickle one chunk of throttled background (flush/compaction) disk
    /// I/O on a node.
    BgIo {
        /// The node draining its backlog.
        node: NodeId,
    },
    /// A stop-the-world pause (JVM GC) begins on a node.
    GcPause {
        /// The pausing node.
        node: NodeId,
    },
}
