//! The cluster's internal event vocabulary.
//!
//! `cstore` is queue-agnostic: every method is generic over any event
//! payload `W: From<Event>`, so the experiment driver can embed these events
//! in its own enum alongside client-side events.
//!
//! Internal events reference their operation by slab key ([`OpKey`], see
//! [`simkit::slab`]): a late event whose op already completed carries a
//! stale generation and resolves to nothing, replacing the old
//! `HashMap`-miss semantics. Replica-side events additionally carry the
//! driver token for span tracing, which must keep recording work performed
//! on behalf of an op even after the op itself timed out.

use simkit::{NodeId, OpKey};
use storage::{Cell, Key, OpResult};

/// An internal simulation event of the Cassandra-analog cluster.
#[derive(Debug, Clone)]
pub enum Event {
    /// A client request has fully arrived at its coordinator.
    Arrive {
        /// Slab key of the pending op.
        op: OpKey,
    },
    /// A mutation has arrived at a replica.
    ReplicaWrite {
        /// Slab key; [`OpKey::NONE`] for repair/hint writes (no pending op).
        op: OpKey,
        /// Driver token for tracing; 0 for repair/hint writes.
        token: u64,
        /// The replica.
        node: NodeId,
        /// Mutated key.
        key: Key,
        /// New cell.
        cell: Cell,
        /// Whether the replica should acknowledge to the coordinator.
        ack: bool,
    },
    /// A replica finished applying a mutation (CPU/log done).
    WriteApplied {
        /// Slab key; [`OpKey::NONE`] when `ack` is false.
        op: OpKey,
        /// The replica.
        node: NodeId,
        /// Mutated key.
        key: Key,
        /// New cell.
        cell: Cell,
        /// Whether to acknowledge.
        ack: bool,
    },
    /// A replica's write acknowledgement reached the coordinator.
    WriteAck {
        /// Slab key of the pending op.
        op: OpKey,
        /// The acking replica — the datacenter-aware consistency levels
        /// count acks per datacenter.
        node: NodeId,
    },
    /// A read request arrived at a replica.
    ReplicaRead {
        /// Slab key of the pending op.
        op: OpKey,
        /// Driver token for tracing.
        token: u64,
        /// The replica.
        node: NodeId,
        /// Key to read.
        key: Key,
    },
    /// A replica's read response reached the coordinator.
    ReadReturn {
        /// Slab key of the pending op.
        op: OpKey,
        /// The responding replica.
        node: NodeId,
        /// What the replica had (None = no version).
        cell: Option<Cell>,
    },
    /// A scan request arrived at a replica.
    ReplicaScan {
        /// Slab key of the pending op.
        op: OpKey,
        /// Driver token for tracing.
        token: u64,
        /// The replica.
        node: NodeId,
        /// First key of the range.
        start: Key,
        /// Row budget for this range.
        limit: usize,
        /// Exclusive end of the replica's scanned range, when known.
        clamp: Option<Key>,
        /// False for repair probes: their responses add load but the
        /// coordinator neither waits for nor merges them.
        count: bool,
    },
    /// A replica's scan response reached the coordinator.
    ScanReturn {
        /// Slab key of the pending op.
        op: OpKey,
        /// The responding replica.
        node: NodeId,
        /// Rows found (may include tombstones; coordinator filters).
        rows: Vec<(Key, Cell)>,
        /// True when the replica ran out of range before the row budget.
        exhausted: bool,
    },
    /// The final response reached the client: deliver the completion.
    Deliver {
        /// The driver token.
        token: u64,
        /// The outcome.
        result: OpResult,
    },
    /// Give up on an operation that is still incomplete.
    Timeout {
        /// Slab key of the pending op.
        op: OpKey,
    },
    /// Drain this node's hint queue toward recovered replicas.
    HintReplay {
        /// The hint-holding node.
        node: NodeId,
    },
    /// Trickle one chunk of throttled background (flush/compaction) disk
    /// I/O on a node.
    BgIo {
        /// The node draining its backlog.
        node: NodeId,
    },
    /// A stop-the-world pause (JVM GC) begins on a node.
    GcPause {
        /// The pausing node.
        node: NodeId,
    },
}
