//! Cluster configuration: consistency levels, service costs, tuning knobs.

use simkit::{AdmissionConfig, NodeProfile, Topology};
use storage::LsmConfig;

use crate::ring::Partitioner;

/// A tunable consistency level (the paper benchmarks ONE, QUORUM, and
/// write-ALL; TWO and THREE exist in Cassandra and are included for
/// completeness; LOCAL_QUORUM and EACH_QUORUM are the datacenter-aware
/// levels the geo-replication subsystem adds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// One replica must respond.
    One,
    /// Two replicas must respond.
    Two,
    /// Three replicas must respond.
    Three,
    /// A majority of replicas must respond.
    Quorum,
    /// A majority of the replicas in the coordinator's datacenter must
    /// respond; remote-DC responses do not count and no WAN hop sits on the
    /// settle path. In a single-datacenter cluster this is exactly
    /// [`Consistency::Quorum`].
    LocalQuorum,
    /// A majority of the replicas in *every* datacenter must respond; the
    /// settle path waits on the slowest datacenter's quorum. In a
    /// single-datacenter cluster this is exactly [`Consistency::Quorum`].
    EachQuorum,
    /// Every replica must respond.
    All,
}

impl Consistency {
    /// How many replica responses this level requires at replication factor
    /// `rf` (clamped to `rf`).
    ///
    /// For the datacenter-aware levels this is the datacenter-blind
    /// fallback (a plain majority of `rf`) — correct for single-DC
    /// clusters; multi-DC coordinators compute per-DC quotas from the
    /// snitch instead.
    pub fn required(self, rf: u32) -> u32 {
        let n = match self {
            Consistency::One => 1,
            Consistency::Two => 2,
            Consistency::Three => 3,
            Consistency::Quorum | Consistency::LocalQuorum | Consistency::EachQuorum => rf / 2 + 1,
            Consistency::All => rf,
        };
        n.clamp(1, rf.max(1))
    }

    /// True for the levels whose quota is computed per datacenter.
    pub fn dc_aware(self) -> bool {
        matches!(self, Consistency::LocalQuorum | Consistency::EachQuorum)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Consistency::One => "ONE",
            Consistency::Two => "TWO",
            Consistency::Three => "THREE",
            Consistency::Quorum => "QUORUM",
            Consistency::LocalQuorum => "LOCAL_QUORUM",
            Consistency::EachQuorum => "EACH_QUORUM",
            Consistency::All => "ALL",
        }
    }
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the commit log reaches the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitlogSync {
    /// Appends acknowledge from memory; disk bandwidth is consumed in the
    /// background (Cassandra's `periodic` mode, the default the paper ran).
    Periodic,
    /// Every write waits for its log bytes to reach the platter (`batch`
    /// mode); used by the durability ablation.
    PerWrite,
}

/// CPU service times (microseconds) for the request-path stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCosts {
    /// Coordinator request parse/route cost.
    pub coord_us: u64,
    /// Replica-side point-read handling.
    pub replica_read_us: u64,
    /// Replica-side mutation handling (log append + memtable insert).
    pub replica_write_us: u64,
    /// Coordinator work per replica response (digest compare, reconcile).
    pub reconcile_us: u64,
    /// Replica-side cost per row returned by a scan.
    pub scan_row_us: u64,
    /// Fixed per-message overhead bytes (headers, serialization).
    pub msg_overhead_bytes: u64,
    /// Service-time variability: 0 = deterministic service times, 1 =
    /// exponentially distributed with the configured means (JVM-era RPC
    /// handling is heavy-tailed; this is what makes waiting for *all*
    /// replicas expensive relative to waiting for the fastest).
    pub jitter: f64,
}

impl Default for ServiceCosts {
    fn default() -> Self {
        // Calibrated to 2014-era request-path costs (JVM RPC stacks):
        // a full coordinator+replica path lands near a millisecond before
        // any disk access, matching the era's measured floor latencies.
        Self {
            coord_us: 200,
            replica_read_us: 300,
            replica_write_us: 300,
            reconcile_us: 20,
            scan_row_us: 5,
            msg_overhead_bytes: 100,
            jitter: 1.0,
        }
    }
}

/// Full configuration of a simulated Cassandra-analog cluster.
#[derive(Debug, Clone)]
pub struct CStoreConfig {
    /// Number of server nodes (the paper: 15).
    pub nodes: usize,
    /// Replication factor (the paper sweeps 1..=6).
    pub replication_factor: u32,
    /// Read consistency level.
    pub read_cl: Consistency,
    /// Write consistency level.
    pub write_cl: Consistency,
    /// Probability that a read triggers a background all-replica read
    /// repair (Cassandra's `read_repair_chance`; 0.1 was the era default).
    pub read_repair_chance: f64,
    /// Commit-log durability mode.
    pub commitlog_sync: CommitlogSync,
    /// Store hints for dead replicas and replay them on recovery.
    pub hinted_handoff: bool,
    /// Background (flush/compaction) disk-I/O throttle, bytes/second —
    /// Cassandra's `compaction_throughput_mb_per_sec` (default 16 MB/s).
    pub bg_io_rate: u64,
    /// Mean interval between stop-the-world pauses per node (JVM garbage
    /// collection; the era's dominant straggler source). 0 disables.
    pub pause_interval_us: u64,
    /// Duration of each pause. With the default 50 ms every ~1 s a node is
    /// unresponsive ~5% of the time — a CMS-era heap under write churn.
    pub pause_duration_us: u64,
    /// Coordinator give-up interval, microseconds: an operation still
    /// incomplete this long after submission fails with a timeout error
    /// (Cassandra's `rpc_timeout_in_ms`; fault experiments shorten it so
    /// timeout behaviour is visible within one timeline window).
    pub rpc_timeout_us: u64,
    /// Coordinator admission control: bounded in-flight queue with load
    /// shedding. Disabled by default ([`AdmissionConfig::off`]) — off runs
    /// add zero events and zero RNG draws.
    pub admission: AdmissionConfig,
    /// Background-I/O chunk size, bytes. Flush/compaction backlogs drain in
    /// chunks of this size so foreground reads can interleave between
    /// chunks on the FIFO disk (64 KiB ≈ one SSTable block write).
    pub bg_chunk_bytes: u64,
    /// Delay before a recovered node's stored hints start replaying, µs
    /// (Cassandra staggers replay so a rejoining node isn't flattened).
    pub hint_replay_delay_us: u64,
    /// Per-node storage-engine tuning.
    pub lsm: LsmConfig,
    /// Key partitioning scheme.
    pub partitioner: Partitioner,
    /// Replica placement strategy. [`geo::Strategy::Simple`] (the default)
    /// is datacenter-blind ring-successor placement;
    /// [`geo::Strategy::NetworkTopology`] fills per-datacenter quotas using
    /// the topology's region assignment as the snitch. With
    /// `NetworkTopology`, `replication_factor` must equal the quota sum.
    pub strategy: geo::Strategy,
    /// Hardware of each node.
    pub profile: NodeProfile,
    /// Rack layout / network distances.
    pub topology: Topology,
    /// CPU service times.
    pub costs: ServiceCosts,
}

impl CStoreConfig {
    /// The paper's testbed shape: 15 identical nodes in one rack, RF and
    /// consistency per the experiment, defaults everywhere else.
    pub fn paper_testbed(replication_factor: u32, partitioner: Partitioner) -> Self {
        let profile = NodeProfile::paper_testbed();
        Self {
            nodes: 15,
            replication_factor,
            read_cl: Consistency::One,
            write_cl: Consistency::One,
            read_repair_chance: 0.1,
            commitlog_sync: CommitlogSync::Periodic,
            hinted_handoff: true,
            bg_io_rate: 16_000_000,
            // Off by default; the straggler effect is carried by service-
            // time jitter. Enable for the pause ablation.
            pause_interval_us: 0,
            pause_duration_us: 50_000,
            rpc_timeout_us: 2_000_000,
            admission: AdmissionConfig::off(),
            bg_chunk_bytes: 64 * 1024,
            hint_replay_delay_us: 1_000,
            lsm: LsmConfig::default(),
            partitioner,
            strategy: geo::Strategy::Simple,
            profile,
            topology: Topology::single_rack(15, profile.nic.prop_us),
            costs: ServiceCosts::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_math() {
        assert_eq!(Consistency::Quorum.required(1), 1);
        assert_eq!(Consistency::Quorum.required(2), 2);
        assert_eq!(Consistency::Quorum.required(3), 2);
        assert_eq!(Consistency::Quorum.required(4), 3);
        assert_eq!(Consistency::Quorum.required(5), 3);
        assert_eq!(Consistency::Quorum.required(6), 4);
    }

    #[test]
    fn levels_clamp_to_rf() {
        assert_eq!(Consistency::All.required(3), 3);
        assert_eq!(Consistency::Three.required(2), 2);
        assert_eq!(Consistency::Two.required(1), 1);
        assert_eq!(Consistency::One.required(6), 1);
    }

    #[test]
    fn quorum_plus_quorum_overlaps() {
        // W + R > N for QUORUM at every RF: the strong-consistency identity.
        for rf in 1..=10u32 {
            let q = Consistency::Quorum.required(rf);
            assert!(q + q > rf, "no overlap at rf={rf}");
        }
    }

    #[test]
    fn write_all_read_one_overlaps() {
        for rf in 1..=10u32 {
            let w = Consistency::All.required(rf);
            let r = Consistency::One.required(rf);
            assert!(w + r > rf);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Consistency::Quorum.to_string(), "QUORUM");
        assert_eq!(Consistency::One.label(), "ONE");
        assert_eq!(Consistency::LocalQuorum.to_string(), "LOCAL_QUORUM");
        assert_eq!(Consistency::EachQuorum.label(), "EACH_QUORUM");
    }

    #[test]
    fn dc_aware_levels_fall_back_to_plain_quorum() {
        for rf in 1..=6u32 {
            assert_eq!(
                Consistency::LocalQuorum.required(rf),
                Consistency::Quorum.required(rf)
            );
            assert_eq!(
                Consistency::EachQuorum.required(rf),
                Consistency::Quorum.required(rf)
            );
        }
        assert!(Consistency::LocalQuorum.dc_aware());
        assert!(Consistency::EachQuorum.dc_aware());
        assert!(!Consistency::Quorum.dc_aware());
    }

    #[test]
    fn paper_testbed_shape() {
        let c = CStoreConfig::paper_testbed(3, Partitioner::murmur());
        assert_eq!(c.nodes, 15);
        assert_eq!(c.replication_factor, 3);
        assert_eq!(c.read_cl, Consistency::One);
        assert_eq!(c.topology.len(), 15);
        assert!((c.read_repair_chance - 0.1).abs() < 1e-12);
        assert_eq!(c.rpc_timeout_us, 2_000_000, "era default rpc timeout: 2 s");
    }
}
