//! The token ring: key → primary ("main") replica → successor replica set.
//!
//! One token per node (classic pre-vnode Cassandra, matching the paper's
//! 2.0-era deployment). Two partitioners:
//!
//! * [`Partitioner::OrderPreserving`] — explicit sorted key tokens; keys are
//!   stored in key order around the ring, which makes range scans natural.
//!   The scan workloads run this way.
//! * [`Partitioner::Murmur`] — keys are hashed onto a uniform `u64` token
//!   space (load balance without token tuning; scans degrade to
//!   token-order semantics, as with Cassandra's RandomPartitioner).
//!
//! Replica placement is delegated to a [`geo::Strategy`]: the default
//! [`geo::Strategy::Simple`] takes the primary plus the next `rf - 1`
//! distinct ring successors, while `NetworkTopologyStrategy` walks the same
//! successor order but fills per-datacenter quotas via the [`geo::Snitch`].
//! The primary is the paper's "main replica ... always performed, no matter
//! which consistency level is used".

use geo::{Snitch, Strategy};
use simkit::NodeId;
use storage::Key;

/// How keys map to ring positions.
#[derive(Debug, Clone)]
pub enum Partitioner {
    /// Node `i` owns keys in `[tokens[i], tokens[i+1])`; keys before
    /// `tokens[0]` wrap to the last node. Tokens must be sorted and as many
    /// as there are nodes.
    OrderPreserving {
        /// Sorted range-start tokens, one per node.
        tokens: Vec<Key>,
    },
    /// FNV/Murmur-style hash onto `u64`; node `i` owns an equal slice of the
    /// hash space.
    Murmur,
}

impl Partitioner {
    /// The hashing partitioner.
    pub fn murmur() -> Self {
        Partitioner::Murmur
    }

    /// An order-preserving partitioner with explicit tokens.
    ///
    /// # Panics
    /// If tokens are not strictly sorted.
    pub fn order_preserving(tokens: Vec<Key>) -> Self {
        assert!(
            tokens.windows(2).all(|w| w[0] < w[1]),
            "tokens must be strictly sorted"
        );
        Partitioner::OrderPreserving { tokens }
    }

    /// True when range scans follow key order.
    pub fn is_ordered(&self) -> bool {
        matches!(self, Partitioner::OrderPreserving { .. })
    }
}

#[inline]
fn hash_key(key: &[u8]) -> u64 {
    // FNV-1a + avalanche; stand-in for Murmur3 with the same role.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// The assembled ring.
#[derive(Debug, Clone)]
pub struct Ring {
    partitioner: Partitioner,
    nodes: usize,
    strategy: Strategy,
    snitch: Snitch,
}

impl Ring {
    /// A ring over `nodes` nodes with `SimpleStrategy` placement.
    ///
    /// # Panics
    /// If an order-preserving partitioner has a token count ≠ `nodes`.
    pub fn new(nodes: usize, partitioner: Partitioner) -> Self {
        Self::with_strategy(
            nodes,
            partitioner,
            Strategy::Simple,
            Snitch::single_dc(nodes),
        )
    }

    /// A ring whose placement consults an explicit replication strategy and
    /// snitch (datacenter lookup).
    ///
    /// # Panics
    /// If an order-preserving partitioner has a token count ≠ `nodes`, or
    /// the snitch covers a different node count.
    pub fn with_strategy(
        nodes: usize,
        partitioner: Partitioner,
        strategy: Strategy,
        snitch: Snitch,
    ) -> Self {
        assert!(nodes > 0);
        if let Partitioner::OrderPreserving { tokens } = &partitioner {
            assert_eq!(tokens.len(), nodes, "need exactly one token per node");
        }
        assert_eq!(snitch.len(), nodes, "snitch must cover every node");
        Self {
            partitioner,
            nodes,
            strategy,
            snitch,
        }
    }

    /// The replication strategy placement consults.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The datacenter snitch.
    pub fn snitch(&self) -> &Snitch {
        &self.snitch
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Rings are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The partitioner.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Ring position (node index) of the primary replica of `key`.
    pub fn primary(&self, key: &[u8]) -> usize {
        match &self.partitioner {
            Partitioner::OrderPreserving { tokens } => {
                match tokens.binary_search_by(|t| t.as_ref().cmp(key)) {
                    Ok(i) => i,
                    Err(0) => self.nodes - 1, // wraps to the last range
                    Err(i) => i - 1,
                }
            }
            Partitioner::Murmur => {
                let h = hash_key(key);
                // Equal slices of the hash space.
                ((h as u128 * self.nodes as u128) >> 64) as usize
            }
        }
    }

    /// The replica set of `key` at replication factor `rf`, as placed by
    /// the ring's strategy: `SimpleStrategy` takes the primary plus ring
    /// successors clamped to the node count; `NetworkTopologyStrategy`
    /// walks the same order filling per-datacenter quotas (its quota vector
    /// is authoritative and `rf` is ignored).
    pub fn replicas(&self, key: &[u8], rf: u32) -> Vec<NodeId> {
        let p = self.primary(key);
        self.strategy.place(p, self.nodes, rf, &self.snitch)
    }

    /// [`Ring::replicas`] into a caller-provided buffer (cleared first); the
    /// per-op coordinator paths reuse one scratch buffer instead of
    /// allocating a fresh replica set each operation.
    pub fn replicas_into(&self, key: &[u8], rf: u32, out: &mut Vec<NodeId>) {
        let p = self.primary(key);
        self.strategy
            .place_into(p, self.nodes, rf, &self.snitch, out);
    }

    /// Ring successor of a node index.
    pub fn successor(&self, idx: usize) -> usize {
        (idx + 1) % self.nodes
    }

    /// For an ordered ring: the exclusive end key of the primary range that
    /// starts at node `idx` (i.e. the next node's token). `None` for the
    /// last range (unbounded) or a hashing ring.
    pub fn range_end(&self, idx: usize) -> Option<&Key> {
        match &self.partitioner {
            Partitioner::OrderPreserving { tokens } => tokens.get(idx + 1),
            Partitioner::Murmur => None,
        }
    }

    /// For an ordered ring: the token (start key) of node `idx`'s range.
    pub fn range_start(&self, idx: usize) -> Option<&Key> {
        match &self.partitioner {
            Partitioner::OrderPreserving { tokens } => tokens.get(idx),
            Partitioner::Murmur => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn ordered_ring() -> Ring {
        // Four nodes owning [a,g), [g,n), [n,t), [t,..)+wrap.
        Ring::new(
            4,
            Partitioner::order_preserving(vec![k("a"), k("g"), k("n"), k("t")]),
        )
    }

    #[test]
    fn ordered_primary_by_range() {
        let r = ordered_ring();
        assert_eq!(r.primary(b"a"), 0);
        assert_eq!(r.primary(b"f"), 0);
        assert_eq!(r.primary(b"g"), 1);
        assert_eq!(r.primary(b"m"), 1);
        assert_eq!(r.primary(b"n"), 2);
        assert_eq!(r.primary(b"z"), 3);
        // Before the first token wraps to the last node.
        assert_eq!(r.primary(b"0"), 3);
    }

    #[test]
    fn replicas_are_distinct_successors() {
        let r = ordered_ring();
        assert_eq!(r.replicas(b"g", 3), vec![NodeId(1), NodeId(2), NodeId(3)]);
        // Wrap around the ring.
        assert_eq!(r.replicas(b"z", 3), vec![NodeId(3), NodeId(0), NodeId(1)]);
    }

    #[test]
    fn rf_clamps_to_node_count() {
        let r = ordered_ring();
        let reps = r.replicas(b"a", 10);
        assert_eq!(reps.len(), 4);
        let mut sorted = reps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn replica_set_is_stable() {
        let r = ordered_ring();
        assert_eq!(r.replicas(b"hello", 3), r.replicas(b"hello", 3));
    }

    #[test]
    fn murmur_balances_load() {
        let r = Ring::new(10, Partitioner::murmur());
        let mut counts = vec![0u32; 10];
        for i in 0..100_000 {
            counts[r.primary(format!("user{i:012}").as_bytes())] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.1, "murmur skew too high: {counts:?}");
    }

    #[test]
    fn ordered_tokens_balance_when_evenly_spaced() {
        // Tokens at every 25000 ids over 100k ids.
        let tokens: Vec<Key> = (0..4)
            .map(|i| Bytes::from(format!("user{:012}", i * 25_000).into_bytes()))
            .collect();
        let r = Ring::new(4, Partitioner::order_preserving(tokens));
        let mut counts = vec![0u32; 4];
        for i in 0..100_000 {
            counts[r.primary(format!("user{i:012}").as_bytes())] += 1;
        }
        assert_eq!(counts, vec![25_000; 4]);
    }

    #[test]
    fn range_boundaries() {
        let r = ordered_ring();
        assert_eq!(r.range_start(1), Some(&k("g")));
        assert_eq!(r.range_end(1), Some(&k("n")));
        assert_eq!(r.range_end(3), None, "last range is unbounded");
        let m = Ring::new(4, Partitioner::murmur());
        assert_eq!(m.range_end(0), None);
    }

    #[test]
    fn successor_wraps() {
        let r = ordered_ring();
        assert_eq!(r.successor(2), 3);
        assert_eq!(r.successor(3), 0);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_tokens_rejected() {
        let _ = Partitioner::order_preserving(vec![k("b"), k("a")]);
    }

    #[test]
    #[should_panic(expected = "one token per node")]
    fn token_count_must_match() {
        let _ = Ring::new(3, Partitioner::order_preserving(vec![k("a")]));
    }

    #[test]
    fn network_topology_strategy_fills_per_dc_quotas() {
        // 6 nodes, 2 regions of 3 (contiguous blocks as Topology::geo lays
        // them out); one replica per DC.
        let t = simkit::Topology::geo(2, 3, 1, 50, 50, vec![0, 1000, 1000, 0]);
        let r = Ring::with_strategy(
            6,
            Partitioner::murmur(),
            Strategy::network_topology(2, 1),
            Snitch::from_topology(&t),
        );
        let reps = r.replicas(b"somekey", 0);
        assert_eq!(reps.len(), 2);
        assert_ne!(
            r.snitch().region(reps[0]),
            r.snitch().region(reps[1]),
            "one replica in each DC: {reps:?}"
        );
    }

    #[test]
    fn single_dc_nts_matches_simple_placement() {
        let simple = ordered_ring();
        let nts = Ring::with_strategy(
            4,
            Partitioner::order_preserving(vec![k("a"), k("g"), k("n"), k("t")]),
            Strategy::network_topology(1, 3),
            Snitch::single_dc(4),
        );
        for key in [&b"a"[..], b"g", b"m", b"z", b"0", b"hello"] {
            assert_eq!(simple.replicas(key, 3), nts.replicas(key, 3));
        }
    }
}
