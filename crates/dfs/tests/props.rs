//! Property-based tests for the replicated filesystem's invariants.

use proptest::prelude::*;
use simkit::{NodeId, SimRng};

use dfs::DfsCluster;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pipelines are always distinct nodes, include the writer when alive,
    /// and have min(rf, live) members.
    #[test]
    fn pipelines_are_distinct_and_writer_local(
        nodes in 1usize..12,
        rf in 1u32..6,
        writes in prop::collection::vec((0u32..12, 1u64..10_000), 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        let mut fs = DfsCluster::new(nodes, rf);
        let f = fs.create_file("/prop");
        for (writer, len) in writes {
            let writer = NodeId(writer % nodes as u32);
            let w = fs.append_block(f, len, None, writer, &mut rng);
            let mut uniq = w.pipeline.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), w.pipeline.len(), "duplicate replicas");
            prop_assert_eq!(w.pipeline.len(), (rf as usize).min(nodes));
            prop_assert_eq!(w.pipeline[0], writer, "writer-local first replica");
            // Every pipeline member actually stores the block.
            for &n in &w.pipeline {
                prop_assert!(fs.datanode(n).has(w.block));
            }
        }
    }

    /// Bytes are conserved: sum of datanode usage equals replicas × lengths,
    /// and deletion frees everything.
    #[test]
    fn byte_accounting_balances(
        nodes in 2usize..10,
        rf in 1u32..4,
        lens in prop::collection::vec(1u64..5_000, 1..30),
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        let mut fs = DfsCluster::new(nodes, rf);
        let f = fs.create_file("/bytes");
        let mut expect = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            let w = fs.append_block(f, len, None, NodeId((i % nodes) as u32), &mut rng);
            expect += len * w.pipeline.len() as u64;
        }
        prop_assert_eq!(fs.node_used_bytes().iter().sum::<u64>(), expect);
        prop_assert_eq!(fs.delete_file(f), expect);
        prop_assert_eq!(fs.node_used_bytes().iter().sum::<u64>(), 0);
    }

    /// After any single failure, re-replication restores the replication
    /// factor whenever enough live nodes exist, and never places two
    /// replicas on one node.
    #[test]
    fn rereplication_restores_factor(
        nodes in 3usize..10,
        blocks in 1usize..20,
        victim in 0u32..10,
        seed in any::<u64>(),
    ) {
        let rf = 3u32.min(nodes as u32 - 1).max(1);
        let mut rng = SimRng::new(seed);
        let mut fs = DfsCluster::new(nodes, rf);
        let f = fs.create_file("/heal");
        for i in 0..blocks {
            fs.append_block(f, 100, None, NodeId((i % nodes) as u32), &mut rng);
        }
        let victim = NodeId(victim % nodes as u32);
        fs.fail_node(victim);
        fs.rereplicate(&mut rng);
        prop_assert!(
            fs.namenode().under_replicated().is_empty(),
            "blocks left under-replicated with {} live nodes", nodes - 1
        );
        // No block lists a node twice.
        let meta = fs.namenode().file(f).unwrap().clone();
        for b in &meta.blocks {
            let locs = fs.locations(*b).to_vec();
            let mut uniq = locs.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), locs.len());
        }
    }
}
