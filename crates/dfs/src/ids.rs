//! Identifier newtypes for filesystem objects.

/// Identity of one stored block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// Identity of one file (an ordered list of blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BlockId(3).to_string(), "blk3");
        assert_eq!(FileId(9).to_string(), "file9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(BlockId(1) < BlockId(2));
        let set: HashSet<_> = [FileId(1), FileId(1), FileId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
