//! The assembled filesystem: placement, pipelines, reads, re-replication.

use bytes::Bytes;
use simkit::{NodeId, SimRng};

use crate::datanode::DataNode;
use crate::ids::{BlockId, FileId};
use crate::namenode::NameNode;

/// Result of appending one block: identity plus the write pipeline the
/// caller must charge for (in order: first hop is the writer-local replica).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockWrite {
    /// The new block.
    pub block: BlockId,
    /// Replica nodes in pipeline order.
    pub pipeline: Vec<NodeId>,
}

/// One block copy the re-replication scanner wants performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationTask {
    /// Block to copy.
    pub block: BlockId,
    /// A surviving replica to read from.
    pub src: NodeId,
    /// The destination node.
    pub dst: NodeId,
    /// Bytes to move.
    pub len: u64,
}

/// A whole filesystem: one namenode plus a datanode per cluster machine.
#[derive(Debug, Clone)]
pub struct DfsCluster {
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    replication: u32,
}

impl DfsCluster {
    /// A filesystem over `nodes` machines with default replication factor
    /// `replication`.
    pub fn new(nodes: usize, replication: u32) -> Self {
        assert!(nodes > 0, "need at least one datanode");
        assert!(replication >= 1, "replication factor must be at least 1");
        Self {
            namenode: NameNode::new(),
            datanodes: (0..nodes as u32)
                .map(|i| DataNode::new(NodeId(i)))
                .collect(),
            replication,
        }
    }

    /// Configured replication factor.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// Number of datanodes (up or down).
    pub fn len(&self) -> usize {
        self.datanodes.len()
    }

    /// True when there are no datanodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.datanodes.is_empty()
    }

    /// The namenode (read access for assertions and bookkeeping).
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// A datanode by machine.
    pub fn datanode(&self, node: NodeId) -> &DataNode {
        &self.datanodes[node.index()]
    }

    /// Create an empty file.
    pub fn create_file(&mut self, name: &str) -> FileId {
        self.namenode.create_file(name)
    }

    /// Choose a pipeline: writer-local replica first (if that datanode is
    /// up), then distinct random live nodes. Mirrors HDFS's default
    /// single-rack placement.
    fn place(&self, writer: NodeId, rng: &mut SimRng) -> Vec<NodeId> {
        let want = self.replication as usize;
        let mut pipeline = Vec::with_capacity(want);
        if self
            .datanodes
            .get(writer.index())
            .is_some_and(DataNode::is_up)
        {
            pipeline.push(writer);
        }
        let mut candidates: Vec<NodeId> = self
            .datanodes
            .iter()
            .filter(|d| d.is_up() && !pipeline.contains(&d.node()))
            .map(DataNode::node)
            .collect();
        while pipeline.len() < want && !candidates.is_empty() {
            let i = rng.below(candidates.len() as u64) as usize;
            pipeline.push(candidates.swap_remove(i));
        }
        pipeline
    }

    /// Append one block of `len` bytes to `file`, written from `writer`.
    /// Stores a replica on every pipeline node and registers the block.
    pub fn append_block(
        &mut self,
        file: FileId,
        len: u64,
        payload: Option<Bytes>,
        writer: NodeId,
        rng: &mut SimRng,
    ) -> BlockWrite {
        let pipeline = self.place(writer, rng);
        assert!(
            !pipeline.is_empty(),
            "no live datanodes available for placement"
        );
        let block = self
            .namenode
            .add_block(file, len, pipeline.clone(), self.replication);
        for &node in &pipeline {
            self.datanodes[node.index()].store(block, len, payload.clone());
        }
        BlockWrite { block, pipeline }
    }

    /// Replica locations of a block (namenode view).
    pub fn locations(&self, block: BlockId) -> &[NodeId] {
        self.namenode
            .block(block)
            .map(|b| b.replicas.as_slice())
            .unwrap_or(&[])
    }

    /// Pick the replica a reader on `reader` should use: itself when local
    /// (short-circuit read), otherwise the first live replica.
    pub fn pick_read_replica(&self, block: BlockId, reader: NodeId) -> Option<NodeId> {
        let locs = self.locations(block);
        if locs.contains(&reader) && self.datanodes[reader.index()].is_up() {
            return Some(reader);
        }
        locs.iter()
            .copied()
            .find(|n| self.datanodes[n.index()].is_up())
    }

    /// Read a block's payload from a specific replica.
    pub fn read_payload(&self, block: BlockId, node: NodeId) -> Option<Bytes> {
        let dn = &self.datanodes[node.index()];
        if !dn.is_up() {
            return None;
        }
        dn.get(block).and_then(|b| b.payload.clone())
    }

    /// Delete a file and free all replica space. Returns total bytes freed
    /// across the cluster.
    pub fn delete_file(&mut self, file: FileId) -> u64 {
        let Some(orphans) = self.namenode.delete_file(file) else {
            return 0;
        };
        let mut freed = 0;
        for block in orphans {
            for node in block.replicas {
                freed += self.datanodes[node.index()].remove(block.id);
            }
        }
        freed
    }

    /// Mark a datanode dead and update namenode metadata. Returns the blocks
    /// that became under-replicated.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<BlockId> {
        self.datanodes[node.index()].fail();
        self.namenode.drop_node(node)
    }

    /// Bring a datanode back up. Its surviving replicas are re-registered
    /// with the namenode (HDFS block reports on restart).
    pub fn recover_node(&mut self, node: NodeId) {
        // Collect first: the datanode borrow must end before namenode writes.
        self.datanodes[node.index()].recover();
        let held: Vec<BlockId> = self
            .namenode
            .under_replicated()
            .into_iter()
            .filter(|&b| self.datanodes[node.index()].has(b))
            .collect();
        for b in held {
            let meta = self.namenode.block_mut(b).expect("block exists");
            if !meta.replicas.contains(&node) {
                meta.replicas.push(node);
            }
        }
    }

    /// Plan and apply re-replication for every under-replicated block:
    /// choose a live source replica and a live node not yet holding the
    /// block. Returns the copies performed so the caller can charge network
    /// and disk time.
    pub fn rereplicate(&mut self, rng: &mut SimRng) -> Vec<ReplicationTask> {
        let mut tasks = Vec::new();
        for block in self.namenode.under_replicated() {
            loop {
                let meta = self.namenode.block(block).expect("block exists");
                if !meta.under_replicated() {
                    break;
                }
                let len = meta.len;
                let Some(src) = meta
                    .replicas
                    .iter()
                    .copied()
                    .find(|n| self.datanodes[n.index()].is_up())
                else {
                    break; // all replicas dead: data loss, nothing to copy
                };
                let holders = meta.replicas.clone();
                let mut candidates: Vec<NodeId> = self
                    .datanodes
                    .iter()
                    .filter(|d| d.is_up() && !holders.contains(&d.node()))
                    .map(DataNode::node)
                    .collect();
                if candidates.is_empty() {
                    break; // nowhere to put another replica
                }
                let dst = candidates.swap_remove(rng.below(candidates.len() as u64) as usize);
                let payload = self.datanodes[src.index()]
                    .get(block)
                    .and_then(|b| b.payload.clone());
                self.datanodes[dst.index()].store(block, len, payload);
                self.namenode
                    .block_mut(block)
                    .expect("block exists")
                    .replicas
                    .push(dst);
                tasks.push(ReplicationTask {
                    block,
                    src,
                    dst,
                    len,
                });
            }
        }
        tasks
    }

    /// Bytes stored per node, for balance assertions.
    pub fn node_used_bytes(&self) -> Vec<u64> {
        self.datanodes.iter().map(DataNode::used_bytes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn pipeline_is_writer_local_first_and_distinct() {
        let mut fs = DfsCluster::new(10, 3);
        let f = fs.create_file("/t");
        let w = fs.append_block(f, 100, None, NodeId(4), &mut rng());
        assert_eq!(w.pipeline.len(), 3);
        assert_eq!(w.pipeline[0], NodeId(4));
        let mut uniq = w.pipeline.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn replicas_actually_stored() {
        let mut fs = DfsCluster::new(5, 3);
        let f = fs.create_file("/t");
        let w = fs.append_block(
            f,
            64,
            Some(Bytes::from_static(b"data")),
            NodeId(0),
            &mut rng(),
        );
        for &n in &w.pipeline {
            assert!(fs.datanode(n).has(w.block));
            assert_eq!(fs.read_payload(w.block, n).as_deref(), Some(&b"data"[..]));
        }
        assert_eq!(fs.locations(w.block), w.pipeline.as_slice());
    }

    #[test]
    fn replication_clamped_by_cluster_size() {
        let mut fs = DfsCluster::new(2, 3);
        let f = fs.create_file("/t");
        let w = fs.append_block(f, 10, None, NodeId(0), &mut rng());
        assert_eq!(w.pipeline.len(), 2, "only two nodes exist");
        assert!(fs.namenode().block(w.block).unwrap().under_replicated());
    }

    #[test]
    fn short_circuit_read_prefers_local() {
        let mut fs = DfsCluster::new(6, 3);
        let f = fs.create_file("/t");
        let w = fs.append_block(f, 10, None, NodeId(2), &mut rng());
        assert_eq!(fs.pick_read_replica(w.block, NodeId(2)), Some(NodeId(2)));
        // A non-holder reads from the first live replica.
        let non_holder = (0..6u32)
            .map(NodeId)
            .find(|n| !w.pipeline.contains(n))
            .unwrap();
        let picked = fs.pick_read_replica(w.block, non_holder).unwrap();
        assert!(w.pipeline.contains(&picked));
    }

    #[test]
    fn delete_frees_all_replica_space() {
        let mut fs = DfsCluster::new(5, 3);
        let f = fs.create_file("/t");
        fs.append_block(f, 100, None, NodeId(0), &mut rng());
        fs.append_block(f, 50, None, NodeId(0), &mut rng());
        let total_before: u64 = fs.node_used_bytes().iter().sum();
        assert_eq!(total_before, 150 * 3);
        assert_eq!(fs.delete_file(f), 150 * 3);
        assert_eq!(fs.node_used_bytes().iter().sum::<u64>(), 0);
    }

    #[test]
    fn failure_then_rereplication_restores_factor() {
        let mut r = rng();
        let mut fs = DfsCluster::new(8, 3);
        let f = fs.create_file("/t");
        let w = fs.append_block(f, 100, Some(Bytes::from_static(b"abc")), NodeId(0), &mut r);
        let victim = w.pipeline[1];
        let damaged = fs.fail_node(victim);
        assert_eq!(damaged, vec![w.block]);
        let tasks = fs.rereplicate(&mut r);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].block, w.block);
        assert_ne!(tasks[0].dst, victim);
        let meta = fs.namenode().block(w.block).unwrap();
        assert!(!meta.under_replicated());
        // The copy carried the payload.
        assert_eq!(
            fs.read_payload(w.block, tasks[0].dst).as_deref(),
            Some(&b"abc"[..])
        );
    }

    #[test]
    fn recovery_re_registers_surviving_replicas() {
        let mut r = rng();
        let mut fs = DfsCluster::new(3, 3);
        let f = fs.create_file("/t");
        let w = fs.append_block(f, 10, None, NodeId(0), &mut r);
        fs.fail_node(NodeId(1));
        assert_eq!(fs.locations(w.block).len(), 2);
        // No spare node exists, so re-replication cannot help.
        assert!(fs.rereplicate(&mut r).is_empty());
        fs.recover_node(NodeId(1));
        assert_eq!(fs.locations(w.block).len(), 3);
        assert!(fs.namenode().under_replicated().is_empty());
    }

    #[test]
    fn reads_skip_dead_replicas() {
        let mut r = rng();
        let mut fs = DfsCluster::new(5, 2);
        let f = fs.create_file("/t");
        let w = fs.append_block(f, 10, None, NodeId(0), &mut r);
        fs.fail_node(w.pipeline[0]);
        let picked = fs.pick_read_replica(w.block, w.pipeline[0]);
        assert_eq!(picked, Some(w.pipeline[1]));
    }

    #[test]
    fn placement_spreads_load_roughly_evenly() {
        let mut r = rng();
        let mut fs = DfsCluster::new(10, 3);
        let f = fs.create_file("/t");
        // Writers round-robin, many blocks.
        for i in 0..3000u32 {
            fs.append_block(f, 1, None, NodeId(i % 10), &mut r);
        }
        let usage = fs.node_used_bytes();
        let (min, max) = (
            *usage.iter().min().unwrap() as f64,
            *usage.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.5, "placement skew too large: {usage:?}");
    }
}
