//! Datanodes: per-machine block replica storage.

use simkit::FastHashMap;

use bytes::Bytes;
use simkit::NodeId;

use crate::ids::BlockId;

/// One stored replica. Payload is optional: `hstore` keeps HFile contents in
/// its own structures and stores length-only replicas here, while tests (and
/// any direct user of `dfs`) can round-trip real bytes.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Logical length in bytes.
    pub len: u64,
    /// Optional real contents.
    pub payload: Option<Bytes>,
}

/// A datanode daemon: the set of block replicas on one machine.
#[derive(Debug, Clone)]
pub struct DataNode {
    node: NodeId,
    blocks: FastHashMap<BlockId, StoredBlock>,
    used_bytes: u64,
    up: bool,
}

impl DataNode {
    /// An empty datanode on machine `node`.
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            blocks: FastHashMap::default(),
            used_bytes: 0,
            up: true,
        }
    }

    /// Which machine this daemon runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Store a replica. Overwrites any prior replica of the same block.
    pub fn store(&mut self, block: BlockId, len: u64, payload: Option<Bytes>) {
        if let Some(old) = self.blocks.insert(block, StoredBlock { len, payload }) {
            self.used_bytes -= old.len;
        }
        self.used_bytes += len;
    }

    /// True when this node holds a replica of `block`.
    pub fn has(&self, block: BlockId) -> bool {
        self.blocks.contains_key(&block)
    }

    /// Access a stored replica.
    pub fn get(&self, block: BlockId) -> Option<&StoredBlock> {
        self.blocks.get(&block)
    }

    /// Drop a replica; returns the bytes freed.
    pub fn remove(&mut self, block: BlockId) -> u64 {
        match self.blocks.remove(&block) {
            Some(b) => {
                self.used_bytes -= b.len;
                b.len
            }
            None => 0,
        }
    }

    /// Bytes stored on this node.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Replica count.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// True while the daemon is serving.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Crash the daemon. Stored replicas survive (disk persists) but are
    /// unreadable until recovery.
    pub fn fail(&mut self) {
        self.up = false;
    }

    /// Restart the daemon.
    pub fn recover(&mut self) {
        self.up = true;
    }

    /// Wipe all replicas (a disk-loss failure, as opposed to a crash).
    pub fn wipe(&mut self) {
        self.blocks.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_retrieve_with_payload() {
        let mut d = DataNode::new(NodeId(3));
        d.store(BlockId(1), 5, Some(Bytes::from_static(b"hello")));
        assert!(d.has(BlockId(1)));
        assert_eq!(
            d.get(BlockId(1)).unwrap().payload.as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(d.used_bytes(), 5);
        assert_eq!(d.node(), NodeId(3));
    }

    #[test]
    fn overwrite_adjusts_usage() {
        let mut d = DataNode::new(NodeId(0));
        d.store(BlockId(1), 100, None);
        d.store(BlockId(1), 40, None);
        assert_eq!(d.used_bytes(), 40);
        assert_eq!(d.block_count(), 1);
    }

    #[test]
    fn remove_frees_bytes() {
        let mut d = DataNode::new(NodeId(0));
        d.store(BlockId(1), 100, None);
        assert_eq!(d.remove(BlockId(1)), 100);
        assert_eq!(d.remove(BlockId(1)), 0);
        assert_eq!(d.used_bytes(), 0);
    }

    #[test]
    fn crash_keeps_data_wipe_loses_it() {
        let mut d = DataNode::new(NodeId(0));
        d.store(BlockId(1), 10, None);
        d.fail();
        assert!(!d.is_up());
        assert!(d.has(BlockId(1)), "crash does not lose the disk");
        d.recover();
        assert!(d.is_up());
        d.wipe();
        assert!(!d.has(BlockId(1)));
        assert_eq!(d.used_bytes(), 0);
    }
}
