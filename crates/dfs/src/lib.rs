//! # dfs — a replicated block filesystem (the HDFS analog)
//!
//! HBase does not replicate data itself: it writes WALs and HFiles into
//! HDFS, and HDFS replicates the blocks. The paper varies the replication
//! factor *here* ("HBase uses HDFS to configure the replication factor and
//! save replicas"), so this substrate is where `hstore`'s RF knob lives.
//!
//! The crate is functional: a [`namenode::NameNode`] tracks files → blocks →
//! replica locations, [`datanode::DataNode`]s hold (optionally payload-
//! carrying) block replicas, and [`cluster::DfsCluster`] implements write
//! pipelines, local-first read replica selection (HBase's short-circuit
//! read), deletion, failure marking, and re-replication planning. Timing is
//! deliberately absent — `hstore` charges pipeline hops and disk transfers
//! against its simulated nodes using the placement facts this crate reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod datanode;
pub mod ids;
pub mod namenode;

pub use cluster::{BlockWrite, DfsCluster, ReplicationTask};
pub use datanode::DataNode;
pub use ids::{BlockId, FileId};
pub use namenode::{BlockMeta, FileMeta, NameNode};
