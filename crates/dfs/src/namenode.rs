//! The namenode: authoritative file → block → replica-location metadata.

use simkit::FastHashMap;

use simkit::NodeId;

use crate::ids::{BlockId, FileId};

/// Metadata for one block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// The block's identity.
    pub id: BlockId,
    /// Logical length in bytes.
    pub len: u64,
    /// Nodes currently holding a replica, pipeline order (first = primary).
    pub replicas: Vec<NodeId>,
    /// Replication factor this block wants.
    pub target_replication: u32,
}

impl BlockMeta {
    /// True when fewer live replicas exist than requested.
    pub fn under_replicated(&self) -> bool {
        (self.replicas.len() as u32) < self.target_replication
    }
}

/// Metadata for one file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// The file's identity.
    pub id: FileId,
    /// Human-readable name (e.g. `"/hstore/wal/n3"`).
    pub name: String,
    /// Ordered blocks.
    pub blocks: Vec<BlockId>,
    /// Total logical length.
    pub len: u64,
}

/// The metadata server.
#[derive(Debug, Clone, Default)]
pub struct NameNode {
    files: FastHashMap<FileId, FileMeta>,
    blocks: FastHashMap<BlockId, BlockMeta>,
    next_file: u64,
    next_block: u64,
}

impl NameNode {
    /// An empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty file.
    pub fn create_file(&mut self, name: &str) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id,
            FileMeta {
                id,
                name: name.to_owned(),
                blocks: Vec::new(),
                len: 0,
            },
        );
        id
    }

    /// Register a new block for `file`, placed on `replicas`.
    pub fn add_block(
        &mut self,
        file: FileId,
        len: u64,
        replicas: Vec<NodeId>,
        target_replication: u32,
    ) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        self.blocks.insert(
            id,
            BlockMeta {
                id,
                len,
                replicas,
                target_replication,
            },
        );
        let meta = self.files.get_mut(&file).expect("file exists");
        meta.blocks.push(id);
        meta.len += len;
        id
    }

    /// Look up a file.
    pub fn file(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(&id)
    }

    /// Look up a block.
    pub fn block(&self, id: BlockId) -> Option<&BlockMeta> {
        self.blocks.get(&id)
    }

    /// Mutable block access (re-replication bookkeeping).
    pub fn block_mut(&mut self, id: BlockId) -> Option<&mut BlockMeta> {
        self.blocks.get_mut(&id)
    }

    /// Delete a file, returning its (now orphaned) block metadata so the
    /// caller can free datanode space.
    pub fn delete_file(&mut self, id: FileId) -> Option<Vec<BlockMeta>> {
        let meta = self.files.remove(&id)?;
        Some(
            meta.blocks
                .iter()
                .filter_map(|b| self.blocks.remove(b))
                .collect(),
        )
    }

    /// Remove a dead node from every block's replica list; returns blocks
    /// that became under-replicated.
    pub fn drop_node(&mut self, node: NodeId) -> Vec<BlockId> {
        let mut damaged = Vec::new();
        for meta in self.blocks.values_mut() {
            let before = meta.replicas.len();
            meta.replicas.retain(|&n| n != node);
            if meta.replicas.len() != before && meta.under_replicated() {
                damaged.push(meta.id);
            }
        }
        damaged.sort();
        damaged
    }

    /// All blocks currently under-replicated.
    pub fn under_replicated(&self) -> Vec<BlockId> {
        let mut v: Vec<_> = self
            .blocks
            .values()
            .filter(|b| b.under_replicated())
            .map(|b| b.id)
            .collect();
        v.sort();
        v
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn create_and_grow_file() {
        let mut nn = NameNode::new();
        let f = nn.create_file("/wal/0");
        nn.add_block(f, 100, vec![n(0), n(1), n(2)], 3);
        nn.add_block(f, 50, vec![n(1), n(2), n(3)], 3);
        let meta = nn.file(f).unwrap();
        assert_eq!(meta.len, 150);
        assert_eq!(meta.blocks.len(), 2);
        assert_eq!(meta.name, "/wal/0");
        assert_eq!(nn.block_count(), 2);
    }

    #[test]
    fn delete_returns_orphans() {
        let mut nn = NameNode::new();
        let f = nn.create_file("/x");
        nn.add_block(f, 10, vec![n(0)], 1);
        let orphans = nn.delete_file(f).unwrap();
        assert_eq!(orphans.len(), 1);
        assert_eq!(nn.file_count(), 0);
        assert_eq!(nn.block_count(), 0);
        assert!(nn.delete_file(f).is_none());
    }

    #[test]
    fn drop_node_flags_under_replication() {
        let mut nn = NameNode::new();
        let f = nn.create_file("/x");
        let b1 = nn.add_block(f, 10, vec![n(0), n(1), n(2)], 3);
        let b2 = nn.add_block(f, 10, vec![n(3), n(4), n(5)], 3);
        let damaged = nn.drop_node(n(1));
        assert_eq!(damaged, vec![b1]);
        assert!(nn.block(b1).unwrap().under_replicated());
        assert!(!nn.block(b2).unwrap().under_replicated());
        assert_eq!(nn.under_replicated(), vec![b1]);
    }

    #[test]
    fn block_mut_allows_repair() {
        let mut nn = NameNode::new();
        let f = nn.create_file("/x");
        let b = nn.add_block(f, 10, vec![n(0), n(1)], 3);
        assert!(nn.block(b).unwrap().under_replicated());
        nn.block_mut(b).unwrap().replicas.push(n(2));
        assert!(!nn.block(b).unwrap().under_replicated());
        assert!(nn.under_replicated().is_empty());
    }
}
