//! Property-based tests for region routing and failover invariants.

use bytes::Bytes;
use proptest::prelude::*;
use simkit::NodeId;
use storage::LsmConfig;

use hstore::{Master, RegionMap};

fn k(id: u64) -> Bytes {
    Bytes::from(format!("user{id:08}").into_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key routes to exactly the region whose range contains it, and
    /// the regions partition the key space.
    #[test]
    fn regions_partition_the_key_space(
        split_ids in prop::collection::btree_set(1u64..10_000, 0..12),
        servers in 1usize..8,
        probe in 0u64..20_000,
    ) {
        let splits: Vec<Bytes> = split_ids.iter().map(|&s| k(s)).collect();
        let map = RegionMap::new(splits, servers, LsmConfig::default());
        let key = k(probe);
        let idx = map.region_of(&key);
        prop_assert!(map.get(idx).contains(&key));
        // No other region claims it.
        for other in 0..map.len() {
            if other != idx {
                prop_assert!(!map.get(other).contains(&key));
            }
        }
        // The empty key routes to region 0.
        prop_assert_eq!(map.region_of(b""), 0);
    }

    /// Region assignment is balanced to within one region per server.
    #[test]
    fn assignment_is_balanced(regions in 0usize..30, servers in 1usize..10) {
        let splits: Vec<Bytes> = (1..=regions as u64).map(k).collect();
        let map = RegionMap::new(splits, servers, LsmConfig::default());
        let counts: Vec<usize> = (0..servers as u32)
            .map(|s| map.on_server(NodeId(s)).len())
            .collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced: {counts:?}");
        prop_assert_eq!(counts.iter().sum::<usize>(), map.len());
    }

    /// Failover always empties the dead server and keeps every region
    /// assigned to a live server, balanced to within one.
    #[test]
    fn failover_preserves_coverage(
        regions in 1usize..25,
        servers in 2usize..8,
        dead in 0u32..8,
    ) {
        let splits: Vec<Bytes> = (1..=regions as u64).map(k).collect();
        let mut map = RegionMap::new(splits, servers, LsmConfig::default());
        let dead = NodeId(dead % servers as u32);
        let live: Vec<NodeId> = (0..servers as u32)
            .map(NodeId)
            .filter(|&n| n != dead)
            .collect();
        let total = map.len();
        let mut master = Master::new();
        let moves = master.fail_over(&mut map, dead, &live);
        prop_assert!(map.on_server(dead).is_empty());
        let live_counts: Vec<usize> = live.iter().map(|&s| map.on_server(s).len()).collect();
        prop_assert_eq!(live_counts.iter().sum::<usize>(), total, "regions lost");
        prop_assert_eq!(master.reassignments(), moves.len() as u64);
        for m in &moves {
            prop_assert!(live.contains(&m.to));
        }
    }
}
