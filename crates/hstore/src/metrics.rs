//! Cluster behaviour counters.

/// Counters accumulated by a [`crate::Cluster`] during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Point reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Scans served.
    pub scans: u64,
    /// Operations rejected because the serving region's server is down.
    pub server_down: u64,
    /// WAL group commits (pipeline round trips).
    pub wal_groups: u64,
    /// Mutations covered by those group commits.
    pub wal_entries: u64,
    /// WAL blocks rolled.
    pub wal_blocks_rolled: u64,
    /// Memstore flushes.
    pub flushes: u64,
    /// Compactions.
    pub compactions: u64,
    /// Regions moved by failover.
    pub regions_moved: u64,
    /// Stop-the-world pauses taken across the cluster.
    pub gc_pauses: u64,
    /// WAL groups shipped to follower regions (async cluster replication);
    /// one count per (group, follower) arrival.
    pub wal_ships: u64,
    /// Operations shed at the regionserver door by admission control.
    pub shed: u64,
}

impl Metrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean mutations per WAL group commit — >1 means group commit is
    /// actually batching.
    pub fn wal_batching(&self) -> f64 {
        if self.wal_groups == 0 {
            0.0
        } else {
            self.wal_entries as f64 / self.wal_groups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_ratio() {
        let m = Metrics {
            wal_groups: 10,
            wal_entries: 35,
            ..Metrics::new()
        };
        assert!((m.wal_batching() - 3.5).abs() < 1e-12);
        assert_eq!(Metrics::new().wal_batching(), 0.0);
    }
}
