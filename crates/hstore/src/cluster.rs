//! The assembled cluster: region servers, the WAL pipeline, reads, scans,
//! flushes, failover.
//!
//! A write: `Arrive` at the region's server → join the server's WAL group →
//! the group's pipeline round trip (in-memory ack at every replica, disk
//! bandwidth consumed in the background) → `WalFlushDone` applies every
//! mutation in the group to its memstore and answers the clients. A read
//! never leaves the region's server (strong consistency, short-circuit
//! local HFile access). A scan walks regions, one leg per region server.

use dfs::DfsCluster;
use obs::{Stage, Tracer};
use simkit::{NodeHw, NodeId, OpKey, OpTag, Sim, SimRng, SimTime, Slab};
use storage::types::entry_encoded_len;
use storage::{Cell, Completion, Key, OpError, OpResult, StoreOp, Value};

use crate::config::HStoreConfig;
use crate::event::Event;
use crate::master::Master;
use crate::metrics::Metrics;
use crate::region::RegionMap;

#[derive(Debug, Clone)]
struct WalState {
    file: dfs::FileId,
    pipeline: Vec<NodeId>,
    inflight: bool,
    /// Queued writers: `(slab key, driver token, enqueue time)` — the time
    /// marks where the op's WAL-queue stage starts.
    waiting: Vec<(OpKey, u64, SimTime)>,
    waiting_bytes: u64,
    block_bytes: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    token: u64,
    responded: bool,
    state: PendingState,
}

/// Per-op state machine. The submitted `StoreOp` lives in `Init` until the
/// arrival event dispatches it; write payloads then move (not clone) into
/// `Write` so the WAL flush can move them again into the memstore.
#[derive(Debug, Clone)]
enum PendingState {
    /// Submitted, not yet arrived at its region server.
    Init(StoreOp),
    /// Queued in the server's WAL; `None` value = delete (tombstone).
    Write { key: Key, value: Option<Value> },
    /// A scan walking regions.
    Scan(ScanState),
    /// Dispatched with no retained payload (reads, applied writes).
    Done,
}

#[derive(Debug, Clone)]
struct ScanState {
    collected: Vec<(Key, Cell)>,
    limit: usize,
}

/// A simulated HBase-analog cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: HStoreConfig,
    regions: RegionMap,
    master: Master,
    servers: Vec<NodeHw>,
    wals: Vec<WalState>,
    fs: DfsCluster,
    pending: Slab<Pending>,
    completed: Vec<Completion>,
    metrics: Metrics,
    rng: SimRng,
    bg_backlog: Vec<u64>,
    bg_active: Vec<bool>,
    pauses_started: bool,
    tracer: Tracer,
    /// Per-follower-region applied watermark: the latest primary commit
    /// time whose WAL bytes the follower has applied (async replication).
    follower_watermark: Vec<SimTime>,
    /// Accumulated `apply - commit` gap across all WAL ships, for the mean
    /// replication window.
    ship_window_sum: u64,
}

impl Cluster {
    /// Build a cluster. `seed` drives HDFS replica placement.
    pub fn new(config: HStoreConfig, seed: u64) -> Self {
        assert!(config.nodes > 0);
        assert!(config.replication_factor >= 1);
        let mut rng = SimRng::new(seed);
        let mut fs = DfsCluster::new(config.nodes, config.replication_factor);
        let servers: Vec<NodeHw> = (0..config.nodes)
            .map(|_| NodeHw::new(config.profile))
            .collect();
        let wals = (0..config.nodes)
            .map(|i| {
                let file = fs.create_file(&format!("/hstore/wal/{i}"));
                let w = fs.append_block(file, 0, None, NodeId(i as u32), &mut rng);
                WalState {
                    file,
                    pipeline: w.pipeline,
                    inflight: false,
                    waiting: Vec::new(),
                    waiting_bytes: 0,
                    block_bytes: 0,
                }
            })
            .collect();
        // The configured cache is per server; split it across the server's
        // regions since each region owns its own engine.
        let region_count = config.region_splits.len() + 1;
        let rps = region_count.div_ceil(config.nodes).max(1);
        let mut lsm = config.lsm;
        lsm.cache_bytes /= rps as u64;
        let regions = RegionMap::new(config.region_splits.clone(), config.nodes, lsm);
        let servers_len = config.nodes;
        let followers = config.follower_regions as usize;
        Self {
            config,
            regions,
            master: Master::new(),
            servers,
            wals,
            fs,
            pending: Slab::new(),
            completed: Vec::new(),
            metrics: Metrics::new(),
            rng,
            bg_backlog: vec![0; servers_len],
            bg_active: vec![false; servers_len],
            pauses_started: false,
            tracer: Tracer::new(),
            follower_watermark: vec![0; followers],
            ship_window_sum: 0,
        }
    }

    /// Start draining a server's background backlog if not already draining.
    fn kick_bg_io<W: From<Event>>(&mut self, sim: &mut Sim<W>, server: NodeId) {
        let i = server.index();
        if self.bg_backlog[i] > 0 && !self.bg_active[i] {
            self.bg_active[i] = true;
            sim.schedule_in(0, W::from(Event::BgIo { server }));
        }
    }

    fn on_bg_io<W: From<Event>>(&mut self, sim: &mut Sim<W>, server: NodeId) {
        let i = server.index();
        if self.bg_backlog[i] == 0 {
            self.bg_active[i] = false;
            return;
        }
        let chunk = self.bg_backlog[i].min(self.config.bg_chunk_bytes);
        self.bg_backlog[i] -= chunk;
        self.servers[i].disk.seq_write(sim.now(), chunk);
        if self.bg_backlog[i] > 0 {
            let interval = simkit::time::transfer_time(chunk, self.config.bg_io_rate);
            sim.schedule_in(interval, W::from(Event::BgIo { server }));
        } else {
            self.bg_active[i] = false;
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HStoreConfig {
        &self.config
    }

    /// The region map.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// A copy-on-write snapshot of the cluster. Every immutable SSTable run
    /// is shared behind an `Arc` (see [`storage::SsTable`]), so snapshotting
    /// a loaded cluster costs O(metadata) rather than O(data); the snapshot
    /// then diverges independently as it serves traffic.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// True when every region's runs are still shared with `other` — both
    /// are undiverged snapshots of one loaded state.
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        self.regions.len() == other.regions.len()
            && self
                .regions
                .iter()
                .zip(other.regions.iter())
                .all(|(a, b)| a.lsm.shares_tables_with(&b.lsm))
    }

    /// The underlying filesystem (assertions).
    pub fn fs(&self) -> &DfsCluster {
        &self.fs
    }

    /// Behaviour counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The span tracer (disabled by default; the driver enables it and
    /// registers which tokens to record).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Mean replication window, microseconds: the average gap between a WAL
    /// group's commit on the primary and its application at a follower
    /// region's sink. Zero when async cluster replication is off (or no
    /// group has shipped yet).
    pub fn mean_replication_window_us(&self) -> f64 {
        if self.metrics.wal_ships == 0 {
            0.0
        } else {
            self.ship_window_sum as f64 / self.metrics.wal_ships as f64
        }
    }

    /// A follower region's applied watermark: the latest primary commit
    /// time it has caught up to.
    pub fn follower_watermark(&self, follower: u32) -> SimTime {
        self.follower_watermark[follower as usize]
    }

    /// A server's hardware (utilization reports).
    pub fn server(&self, node: NodeId) -> &NodeHw {
        &self.servers[node.index()]
    }

    /// In-flight operation count.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Take all completions produced since the last drain.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    // ----- functional helpers -----

    /// Load a record directly into its region (bulk-load phases).
    pub fn load_direct(&mut self, key: Key, value: Key, ts: u64) {
        let idx = self.regions.region_of(&key);
        let region = self.regions.get_mut(idx);
        region.lsm.put(key, Cell::live(value, ts));
        if region.lsm.memtable_bytes() >= region.lsm.config().memtable_flush_bytes {
            self.flush_region_functional(idx);
        }
    }

    /// Flush every memstore into HFiles (functional; end of load phases).
    pub fn flush_all(&mut self) {
        for idx in 0..self.regions.len() {
            self.flush_region_functional(idx);
        }
    }

    fn flush_region_functional(&mut self, idx: usize) {
        let region = self.regions.get_mut(idx);
        let server = region.server;
        if let Some(receipt) = region.lsm.flush() {
            let file = self
                .fs
                .create_file(&format!("/hstore/hfile/{idx}/{}", receipt.table.0));
            self.fs
                .append_block(file, receipt.bytes, None, server, &mut self.rng);
            self.regions.get_mut(idx).hfiles.insert(receipt.table, file);
        }
        // Compact down to one file to start runs from a clean state
        // (operators major-compact after bulk loads).
        {
            let region = self.regions.get_mut(idx);
            let Some(c) = region.lsm.compact_all() else {
                let region = self.regions.get_mut(idx);
                region.lsm.sync_wal();
                return;
            };
            let file = self
                .fs
                .create_file(&format!("/hstore/hfile/{idx}/{}", c.output.0));
            self.fs
                .append_block(file, c.write_bytes, None, server, &mut self.rng);
            let region = self.regions.get_mut(idx);
            region.hfiles.insert(c.output, file);
            let dead: Vec<dfs::FileId> = c
                .inputs
                .iter()
                .filter_map(|t| region.hfiles.remove(t))
                .collect();
            for f in dead {
                self.fs.delete_file(f);
            }
        }
        let region = self.regions.get_mut(idx);
        region.lsm.sync_wal();
    }

    /// Warm every region's block cache to steady state (see
    /// [`storage::LsmTree::warm_cache`]).
    pub fn warm_caches(&mut self) {
        for region in self.regions.iter_mut() {
            region.lsm.warm_cache();
        }
    }

    /// Read a key directly from its region's storage (tests/diagnostics).
    pub fn read_local(&mut self, key: &[u8]) -> Option<Cell> {
        let idx = self.regions.region_of(key);
        self.regions.get_mut(idx).lsm.get(key).cell
    }

    // ----- sizing & plumbing -----

    fn overhead(&self) -> u64 {
        self.config.costs.msg_overhead_bytes
    }

    fn is_up(&self, node: NodeId) -> bool {
        self.servers[node.index()].is_up()
    }

    /// Sample a service time with the configured mean (see `cstore`'s
    /// counterpart): exponential at jitter 1, deterministic at 0.
    fn service<W>(&self, sim: &mut Sim<W>, mean_us: u64) -> u64 {
        let j = self.config.costs.jitter;
        if j <= 0.0 || mean_us == 0 {
            return mean_us;
        }
        let u = sim.rng().unit().max(1e-12);
        let exp = -u.ln() * mean_us as f64;
        (mean_us as f64 * (1.0 - j) + exp * j).round() as u64
    }

    fn client_delivery(&mut self, from: NodeId, bytes: u64, start: SimTime) -> SimTime {
        let tx = self.servers[from.index()].nic.tx(start, bytes);
        tx + self.config.profile.nic.prop_us
    }

    fn respond<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        from: NodeId,
        start: SimTime,
        result: OpResult,
    ) {
        let bytes = match &result {
            OpResult::Value(c) => self.overhead() + c.as_ref().map_or(0, Cell::encoded_len),
            OpResult::Rows(rows) => {
                self.overhead()
                    + rows
                        .iter()
                        .map(|(k, c)| entry_encoded_len(k, c))
                        .sum::<u64>()
            }
            _ => self.overhead(),
        };
        let at = self.client_delivery(from, bytes, start);
        self.tracer
            .record(token, Stage::RespSend, from.0, start, at);
        if let Some(p) = self.pending.get_mut(op) {
            p.responded = true;
        }
        sim.schedule_at(at, W::from(Event::Deliver { token, op, result }));
    }

    /// Push `bytes` through a replication pipeline starting at `start`:
    /// every hop pays CPU and background log-disk bandwidth; the return value
    /// is when the final in-memory acknowledgement reaches the head. When
    /// `hops_out` is given, each inter-node hop's `(node, start, end)`
    /// interval is appended to it (trace assembly only — no behaviour
    /// depends on it).
    fn pipeline_round_trip(
        &mut self,
        pipeline: &[NodeId],
        bytes: u64,
        start: SimTime,
        mut hops_out: Option<&mut Vec<(u32, SimTime, SimTime)>>,
    ) -> SimTime {
        let hop_us = self.config.costs.wal_hop_us;
        let prop = self.config.profile.nic.prop_us;
        let mut t = start;
        let mut prev: Option<NodeId> = None;
        let mut hops = 0u64;
        for &n in pipeline {
            if !self.is_up(n) {
                continue; // HDFS drops dead pipeline members
            }
            let hop_start = t;
            if let Some(p) = prev {
                let tx = self.servers[p.index()].nic.tx(t, bytes);
                let arr = tx + prop;
                t = self.servers[n.index()].nic.rx(arr, bytes);
                hops += 1;
            }
            t = self.servers[n.index()].cpu.acquire(t, hop_us);
            // Log bytes reach this replica's disk asynchronously.
            self.servers[n.index()].disk.seq_write(t, bytes);
            if prev.is_some() {
                if let Some(out) = hops_out.as_deref_mut() {
                    out.push((n.0, hop_start, t));
                }
            }
            prev = Some(n);
        }
        // Acks ripple back through the chain.
        t + hops * prop
    }

    // ----- public API -----

    /// Submit a client operation.
    pub fn submit<W: From<Event>>(&mut self, sim: &mut Sim<W>, token: u64, op: StoreOp) {
        self.submit_tagged(sim, token, op, OpTag::default());
    }

    /// [`Cluster::submit`] with client scheduling metadata. When admission
    /// control is enabled and the regionserver's in-flight bound sheds the
    /// op, the completion is an immediate [`OpError::Overloaded`] fast-fail:
    /// no events are scheduled and no RNG is drawn, mirroring the
    /// `ServerDown` fast-fail path.
    pub fn submit_tagged<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        token: u64,
        op: StoreOp,
        tag: OpTag,
    ) {
        if self.config.admission.enabled()
            && !self
                .config
                .admission
                .admits(self.pending.len(), tag, sim.now())
        {
            self.metrics.shed += 1;
            let now = sim.now();
            self.tracer
                .record(token, Stage::AdmissionQueue, 0, now, now);
            self.completed.push(Completion {
                token,
                result: OpResult::Error(OpError::Overloaded),
            });
            return;
        }
        if !self.pauses_started {
            self.pauses_started = true;
            if self.config.pause_interval_us > 0 {
                for i in 0..self.servers.len() {
                    let delay = self.rng.below(self.config.pause_interval_us);
                    sim.schedule_in(
                        delay,
                        W::from(Event::GcPause {
                            server: NodeId(i as u32),
                        }),
                    );
                }
            }
        }
        let idx = self.regions.region_of(op.key());
        let server = self.regions.get(idx).server;
        if !self.is_up(server) {
            self.metrics.server_down += 1;
            self.completed.push(Completion {
                token,
                result: OpResult::Error(OpError::ServerDown),
            });
            return;
        }
        let bytes = self.overhead() + op.key().len() as u64;
        let arr = sim.now() + self.config.profile.nic.prop_us;
        let rx = self.servers[server.index()].nic.rx(arr, bytes);
        self.tracer
            .record(token, Stage::ClientSend, server.0, sim.now(), rx);
        let key = self.pending.insert(Pending {
            token,
            responded: false,
            state: PendingState::Init(op),
        });
        sim.schedule_at(rx, W::from(Event::Arrive { op: key }));
        sim.schedule_at(
            rx + self.config.rpc_timeout_us,
            W::from(Event::Timeout { op: key }),
        );
    }

    /// Dispatch one internal event.
    pub fn handle<W: From<Event>>(&mut self, sim: &mut Sim<W>, ev: Event) {
        match ev {
            Event::Arrive { op } => self.on_arrive(sim, op),
            Event::WalFlushDone { server, group } => self.on_wal_flush_done(sim, server, group),
            Event::ScanExec { op, region, start } => self.on_scan_exec(sim, op, region, start),
            Event::Deliver { token, op, result } => {
                self.pending.remove(op);
                self.completed.push(Completion { token, result });
            }
            Event::Timeout { op } => self.on_timeout(sim, op),
            Event::BgIo { server } => self.on_bg_io(sim, server),
            Event::GcPause { server } => self.on_gc_pause(sim, server),
            Event::FailOver { server } => self.on_fail_over(server),
            Event::WalShip {
                follower,
                commit_ts,
            } => self.on_wal_ship(sim.now(), follower, commit_ts),
        }
    }

    /// A stop-the-world pause (JVM GC): every core blocked for the duration;
    /// runs only while requests are pending so the simulation can quiesce.
    fn on_gc_pause<W: From<Event>>(&mut self, sim: &mut Sim<W>, server: NodeId) {
        let dur = self.config.pause_duration_us;
        let interval = self.config.pause_interval_us;
        if dur == 0 || interval == 0 {
            return;
        }
        if self.pending.is_empty() {
            self.pauses_started = false;
            return;
        }
        {
            let n = &mut self.servers[server.index()];
            if n.is_up() {
                self.metrics.gc_pauses += 1;
                let now = sim.now();
                self.tracer
                    .record_bg(Stage::GcPause, server.0, now, now + dur);
                for _ in 0..n.cpu.servers() {
                    n.cpu.acquire(now, dur);
                }
            }
        }
        let jitter = interval / 2 + sim.rng().below(interval);
        sim.schedule_in(dur + jitter, W::from(Event::GcPause { server }));
    }

    fn on_arrive<W: From<Event>>(&mut self, sim: &mut Sim<W>, op: OpKey) {
        let Some(p) = self.pending.get_mut(op) else {
            return;
        };
        let token = p.token;
        // Move the submitted op out of its pending slot; write payloads are
        // parked back in `PendingState::Write` below without cloning.
        let kind = match std::mem::replace(&mut p.state, PendingState::Done) {
            PendingState::Init(kind) => kind,
            other => {
                p.state = other;
                return;
            }
        };
        let idx = self.regions.region_of(kind.key());
        let server = self.regions.get(idx).server;
        if !self.is_up(server) {
            self.metrics.server_down += 1;
            self.pending.remove(op);
            self.completed.push(Completion {
                token,
                result: OpResult::Error(OpError::ServerDown),
            });
            return;
        }
        let service = self.service(sim, self.config.costs.server_us);
        let t1 = self.servers[server.index()].cpu.acquire(sim.now(), service);
        self.tracer
            .record(token, Stage::ServerCpu, server.0, sim.now(), t1);
        match kind {
            StoreOp::Read { key } => {
                self.metrics.reads += 1;
                let t2 = self.read_region(idx, &key, t1, sim, op, token);
                let _ = t2;
            }
            StoreOp::Scan { start, limit } => {
                self.metrics.scans += 1;
                if let Some(p) = self.pending.get_mut(op) {
                    p.state = PendingState::Scan(ScanState {
                        collected: Vec::new(),
                        limit,
                    });
                }
                sim.schedule_at(
                    t1,
                    W::from(Event::ScanExec {
                        op,
                        region: idx,
                        start,
                    }),
                );
            }
            StoreOp::Insert { key, value } | StoreOp::Update { key, value } => {
                self.metrics.writes += 1;
                let bytes = entry_encoded_len(&key, &Cell::live(value.clone(), 0)) + 8;
                if let Some(p) = self.pending.get_mut(op) {
                    p.state = PendingState::Write {
                        key,
                        value: Some(value),
                    };
                }
                self.enqueue_wal(sim, op, token, server, t1, bytes);
            }
            StoreOp::Delete { key } => {
                self.metrics.writes += 1;
                let bytes = entry_encoded_len(&key, &Cell::tombstone(0)) + 8;
                if let Some(p) = self.pending.get_mut(op) {
                    p.state = PendingState::Write { key, value: None };
                }
                self.enqueue_wal(sim, op, token, server, t1, bytes);
            }
        }
    }

    /// Full read path: region engine + local (or post-failover remote) disk.
    fn read_region<W: From<Event>>(
        &mut self,
        idx: usize,
        key: &[u8],
        t1: SimTime,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
    ) -> SimTime {
        let server = self.regions.get(idx).server;
        let service = self.service(sim, self.config.costs.read_us);
        let t0 = t1;
        let t1 = self.servers[server.index()].cpu.acquire(t1, service);
        self.tracer
            .record(token, Stage::ServerCpu, server.0, t0, t1);
        let remote = self.region_remote_source(idx);
        let (cell, plan) = {
            let region = self.regions.get_mut(idx);
            let res = region.lsm.get(key);
            (res.cell, res.io)
        };
        let mut t = t1;
        for io in plan.iter() {
            match *io {
                storage::IoOp::DiskRead { bytes } => {
                    t = match remote {
                        // Short-circuit read from the local replica.
                        None => self.servers[server.index()].disk.random_read(t, bytes),
                        // Post-failover: fetch the block from a remote
                        // datanode's disk, then move it over the network.
                        Some(src) => {
                            let td = self.servers[src.index()].disk.random_read(t, bytes);
                            let tx = self.servers[src.index()].nic.tx(td, bytes);
                            let arr = tx + self.config.topology.prop_us(src, server);
                            self.servers[server.index()].nic.rx(arr, bytes)
                        }
                    };
                }
                storage::IoOp::DiskSeqRead { bytes } => {
                    t = match remote {
                        None => self.servers[server.index()].disk.seq_read(t, bytes),
                        Some(src) => {
                            let td = self.servers[src.index()].disk.seq_read(t, bytes);
                            let tx = self.servers[src.index()].nic.tx(td, bytes);
                            let arr = tx + self.config.topology.prop_us(src, server);
                            self.servers[server.index()].nic.rx(arr, bytes)
                        }
                    };
                }
                _ => {}
            }
        }
        self.tracer.record(token, Stage::DiskIo, server.0, t1, t);
        let client_cell = cell.filter(|c| !c.is_tombstone());
        self.respond(sim, op, token, server, t, OpResult::Value(client_cell));
        t
    }

    /// Where a region's HFile blocks must be fetched from when the serving
    /// server lacks a local replica (only after failover). `None` = local.
    fn region_remote_source(&self, idx: usize) -> Option<NodeId> {
        let region = self.regions.get(idx);
        let server = region.server;
        for file in region.hfiles.values() {
            let meta = self.fs.namenode().file(*file)?;
            for block in &meta.blocks {
                if self.fs.pick_read_replica(*block, server) != Some(server) {
                    return self.fs.pick_read_replica(*block, server);
                }
            }
        }
        None
    }

    fn enqueue_wal<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        token: u64,
        server: NodeId,
        t1: SimTime,
        bytes: u64,
    ) {
        let wal = &mut self.wals[server.index()];
        wal.waiting.push((op, token, t1));
        wal.waiting_bytes += bytes;
        if !wal.inflight {
            self.start_wal_group(sim, server, t1);
        }
    }

    fn start_wal_group<W: From<Event>>(&mut self, sim: &mut Sim<W>, server: NodeId, t: SimTime) {
        let (group, bytes, pipeline) = {
            let wal = &mut self.wals[server.index()];
            debug_assert!(!wal.inflight);
            let group = std::mem::take(&mut wal.waiting);
            let bytes = wal.waiting_bytes + self.config.costs.msg_overhead_bytes;
            wal.waiting_bytes = 0;
            wal.inflight = true;
            wal.block_bytes += bytes;
            // Borrow the pipeline by moving it out; restored below before
            // any WAL roll can replace it.
            (group, bytes, std::mem::take(&mut wal.pipeline))
        };
        self.metrics.wal_groups += 1;
        self.metrics.wal_entries += group.len() as u64;
        // Per-hop spans are collected only when some group member is traced;
        // the collection is bookkeeping, never behaviour.
        let want_hops = self.tracer.enabled()
            && group
                .iter()
                .any(|&(_, token, _)| self.tracer.watching(token));
        let mut hops: Vec<(u32, SimTime, SimTime)> = Vec::new();
        let done = self.pipeline_round_trip(&pipeline, bytes, t, want_hops.then_some(&mut hops));
        for &(_, token, enq) in &group {
            self.tracer.record(token, Stage::WalQueue, server.0, enq, t);
            self.tracer
                .record(token, Stage::WalCommit, server.0, t, done);
            for &(node, hs, he) in &hops {
                self.tracer.record(token, Stage::PipelineHop, node, hs, he);
            }
        }
        self.wals[server.index()].pipeline = pipeline;
        // Roll the WAL block when it fills (a fresh HDFS block and possibly
        // a fresh pipeline).
        if self.wals[server.index()].block_bytes >= self.config.wal_block_bytes {
            let file = self.wals[server.index()].file;
            let len = self.wals[server.index()].block_bytes;
            let w = self.fs.append_block(file, len, None, server, &mut self.rng);
            let wal = &mut self.wals[server.index()];
            wal.pipeline = w.pipeline;
            wal.block_bytes = 0;
            self.metrics.wal_blocks_rolled += 1;
        }
        let group: Vec<OpKey> = group.into_iter().map(|(op, _, _)| op).collect();
        sim.schedule_at(done, W::from(Event::WalFlushDone { server, group }));
        // Async cluster replication: the replication source tails the WAL
        // after commit (ship lag) and ships the group's bytes across the
        // WAN to every follower region. The primary's NIC transmit is
        // charged, so shipping competes with foreground traffic; the
        // follower side is a sink (no backpressure to the write path).
        if self.config.follower_regions > 0 {
            let mut t = done + self.config.ship_lag_us;
            for follower in 0..self.config.follower_regions {
                t = self.servers[server.index()].nic.tx(t, bytes);
                let arrive = t + self.config.ship_wan_us;
                self.tracer.record_bg(Stage::WanHop, server.0, t, arrive);
                sim.schedule_at(
                    arrive,
                    W::from(Event::WalShip {
                        follower,
                        commit_ts: done,
                    }),
                );
            }
        }
    }

    fn on_wal_ship(&mut self, now: SimTime, follower: u32, commit_ts: SimTime) {
        self.metrics.wal_ships += 1;
        let w = &mut self.follower_watermark[follower as usize];
        *w = (*w).max(commit_ts);
        self.ship_window_sum += now.saturating_sub(commit_ts);
    }

    fn on_wal_flush_done<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        server: NodeId,
        group: Vec<OpKey>,
    ) {
        self.wals[server.index()].inflight = false;
        let now = sim.now();
        let apply_us = self.config.costs.apply_us;
        for op in group {
            let Some(p) = self.pending.get_mut(op) else {
                continue; // timed out; the slot is gone
            };
            let token = p.token;
            // Move the parked write payload out; no clones on the apply path.
            let (key, cell) = match std::mem::replace(&mut p.state, PendingState::Done) {
                PendingState::Write {
                    key,
                    value: Some(v),
                } => (key, Cell::live(v, now)),
                PendingState::Write { key, value: None } => (key, Cell::tombstone(now)),
                other => {
                    p.state = other;
                    continue;
                }
            };
            let t_apply = self.servers[server.index()].cpu.acquire(now, apply_us);
            self.tracer
                .record(token, Stage::Apply, server.0, now, t_apply);
            let idx = self.regions.region_of(&key);
            self.regions.get_mut(idx).lsm.put(key, cell);
            self.maintain_region(sim, idx, t_apply);
            self.respond(
                sim,
                op,
                token,
                server,
                t_apply,
                OpResult::Written { ts: now },
            );
        }
        // More writers queued while this group was in flight?
        if !self.wals[server.index()].waiting.is_empty() && self.is_up(server) {
            self.start_wal_group(sim, server, now);
        }
    }

    /// Flush/compact a region when its memstore fills, charging the `dfs`
    /// pipeline: every replica's disk receives the HFile bytes (via the
    /// background-I/O throttle).
    fn maintain_region<W: From<Event>>(&mut self, sim: &mut Sim<W>, idx: usize, now: SimTime) {
        let threshold = self.regions.get(idx).lsm.config().memtable_flush_bytes;
        if self.regions.get(idx).lsm.memtable_bytes() < threshold {
            return;
        }
        let server = self.regions.get(idx).server;
        let Some(receipt) = self.regions.get_mut(idx).lsm.flush() else {
            return;
        };
        self.metrics.flushes += 1;
        let file = self
            .fs
            .create_file(&format!("/hstore/hfile/{idx}/{}", receipt.table.0));
        let w = self
            .fs
            .append_block(file, receipt.bytes, None, server, &mut self.rng);
        self.charge_replication(&w.pipeline, receipt.bytes, now);
        self.regions.get_mut(idx).hfiles.insert(receipt.table, file);
        if receipt.compaction_due {
            if let Some(c) = self.regions.get_mut(idx).lsm.maybe_compact() {
                self.metrics.compactions += 1;
                // Read inputs locally, write the output through the pipeline.
                self.bg_backlog[server.index()] += c.read_bytes;
                let out = self
                    .fs
                    .create_file(&format!("/hstore/hfile/{idx}/{}", c.output.0));
                let w = self
                    .fs
                    .append_block(out, c.write_bytes, None, server, &mut self.rng);
                self.charge_replication(&w.pipeline, c.write_bytes, now);
                let region = self.regions.get_mut(idx);
                region.hfiles.insert(c.output, out);
                let dead: Vec<dfs::FileId> = c
                    .inputs
                    .iter()
                    .filter_map(|t| region.hfiles.remove(t))
                    .collect();
                for f in dead {
                    self.fs.delete_file(f);
                }
            }
        }
        for i in 0..self.servers.len() {
            self.kick_bg_io(sim, NodeId(i as u32));
        }
    }

    /// Background replication traffic: bytes land in every pipeline node's
    /// background-I/O backlog (throttled onto its disk), moving over the
    /// network between consecutive members.
    fn charge_replication(&mut self, pipeline: &[NodeId], bytes: u64, now: SimTime) {
        let prop = self.config.profile.nic.prop_us;
        let mut t = now;
        let mut prev: Option<NodeId> = None;
        for &n in pipeline {
            if !self.is_up(n) {
                continue;
            }
            if let Some(p) = prev {
                let tx = self.servers[p.index()].nic.tx(t, bytes);
                t = self.servers[n.index()].nic.rx(tx + prop, bytes);
            }
            self.bg_backlog[n.index()] += bytes;
            prev = Some(n);
        }
    }

    fn on_scan_exec<W: From<Event>>(
        &mut self,
        sim: &mut Sim<W>,
        op: OpKey,
        idx: usize,
        start: Key,
    ) {
        let Some(p) = self.pending.get(op) else {
            return;
        };
        let token = p.token;
        let server = self.regions.get(idx).server;
        if !self.is_up(server) {
            self.metrics.server_down += 1;
            self.pending.remove(op);
            self.completed.push(Completion {
                token,
                result: OpResult::Error(OpError::ServerDown),
            });
            return;
        }
        let remaining = {
            let p = self.pending.get(op).expect("checked above");
            let PendingState::Scan(s) = &p.state else {
                unreachable!("scan state set at arrive")
            };
            s.limit - s.collected.len()
        };
        let costs = self.config.costs;
        let t1 = self.servers[server.index()]
            .cpu
            .acquire(sim.now(), costs.read_us);
        self.tracer
            .record(token, Stage::ServerCpu, server.0, sim.now(), t1);
        let (rows, plan) = {
            let region = self.regions.get_mut(idx);
            let res = region.lsm.scan(&start, remaining);
            (res.rows, res.io)
        };
        let mut t = t1;
        for io in plan.iter() {
            match *io {
                storage::IoOp::DiskRead { bytes } => {
                    t = self.servers[server.index()].disk.random_read(t, bytes);
                }
                storage::IoOp::DiskSeqRead { bytes } => {
                    t = self.servers[server.index()].disk.seq_read(t, bytes);
                }
                _ => {}
            }
        }
        let t_io = t;
        self.tracer.record(token, Stage::DiskIo, server.0, t1, t_io);
        let t = self.servers[server.index()]
            .cpu
            .acquire(t, costs.scan_row_us * rows.len() as u64);
        self.tracer
            .record(token, Stage::ScanRows, server.0, t_io, t);
        let exhausted = rows.len() < remaining;
        let (done, next_start) = {
            let p = self.pending.get_mut(op).expect("checked above");
            let PendingState::Scan(s) = &mut p.state else {
                unreachable!("scan state")
            };
            s.collected.extend(rows);
            let more = s.collected.len() < s.limit && exhausted && idx + 1 < self.regions.len();
            if more {
                (false, Some(self.regions.get(idx + 1).start.clone()))
            } else {
                (true, None)
            }
        };
        if done {
            let rows = {
                let p = self.pending.get_mut(op).expect("checked above");
                let PendingState::Scan(s) = &mut p.state else {
                    unreachable!("scan state")
                };
                std::mem::take(&mut s.collected)
            };
            self.respond(sim, op, token, server, t, OpResult::Rows(rows));
        } else if let Some(next) = next_start {
            // The client receives this leg's rows, then asks the next
            // region's server (client-mediated scanning, as in HBase).
            let leg_bytes = self.overhead();
            let back = self.client_delivery(server, leg_bytes, t);
            let next_server = self.regions.get(idx + 1).server;
            let arr = back + self.config.profile.nic.prop_us;
            let rx = self.servers[next_server.index()].nic.rx(arr, leg_bytes);
            self.tracer
                .record(token, Stage::RespSend, server.0, t, back);
            self.tracer
                .record(token, Stage::ClientSend, next_server.0, back, rx);
            sim.schedule_at(
                rx,
                W::from(Event::ScanExec {
                    op,
                    region: idx + 1,
                    start: next,
                }),
            );
        }
    }

    fn on_timeout<W: From<Event>>(&mut self, sim: &mut Sim<W>, op: OpKey) {
        let Some(p) = self.pending.get(op) else {
            return;
        };
        if p.responded {
            return; // Deliver is already scheduled; let it land.
        }
        let token = p.token;
        self.pending.remove(op);
        let at = sim.now() + self.config.profile.nic.prop_us;
        self.tracer
            .record(token, Stage::RespSend, obs::CLIENT_NODE, sim.now(), at);
        sim.schedule_at(
            at,
            W::from(Event::Deliver {
                token,
                op,
                // Distinct from `ServerDown`: the server accepted the
                // request and then went silent (crashed mid-flight), rather
                // than being known-dead at routing time.
                result: OpResult::Error(OpError::Timeout),
            }),
        );
    }

    // ----- failure handling -----

    /// Crash a region server: its regions fail over to the survivors
    /// immediately (no detection delay), each paying WAL-replay time and
    /// restarting with a cold cache; its HDFS blocks re-replicate in the
    /// background. Equivalent to [`Cluster::crash_server`] followed by the
    /// master's failover.
    pub fn fail_server(&mut self, node: NodeId) {
        self.crash_server(node);
        self.fail_over_from(node);
    }

    /// Crash a region server *without* failover: requests to its regions
    /// fail until the master notices (an `Event::FailOver`) or the server
    /// recovers. Used by deferred crash injection.
    pub fn crash_server(&mut self, node: NodeId) {
        self.servers[node.index()].fail();
    }

    /// The master detects the crash: a no-op when the server is back up.
    fn on_fail_over(&mut self, server: NodeId) {
        if self.is_up(server) {
            return;
        }
        self.fail_over_from(server);
    }

    /// Move the dead server's regions to the survivors and start HDFS
    /// re-replication.
    fn fail_over_from(&mut self, node: NodeId) {
        self.fs.fail_node(node);
        let live: Vec<NodeId> = (0..self.servers.len() as u32)
            .map(NodeId)
            .filter(|n| self.is_up(*n))
            .collect();
        if live.is_empty() {
            return;
        }
        let moves = self.master.fail_over(&mut self.regions, node, &live);
        self.metrics.regions_moved += moves.len() as u64;
        for m in &moves {
            let region = self.regions.get_mut(m.region);
            // The new server replays the region's WAL tail and starts cold.
            let replay_bytes = region.lsm.memtable_bytes();
            region.lsm.drop_cache();
            self.servers[m.to.index()].disk.seq_read(0, replay_bytes);
        }
        // HDFS restores the replication factor in the background.
        let tasks = self.fs.rereplicate(&mut self.rng);
        for t in tasks {
            self.servers[t.src.index()].disk.seq_read(0, t.len);
            self.servers[t.dst.index()].disk.seq_write(0, t.len);
        }
    }

    /// Bring a server back (it rejoins empty; regions stay where they are,
    /// as HBase does not auto-rebalance immediately).
    pub fn recover_server(&mut self, node: NodeId) {
        self.servers[node.index()].recover();
        self.fs.recover_node(node);
    }
}

/// The uniform fault surface. A crash honours `failover_delay_us`: with a
/// nonzero delay the server drops dead now and the master's failover runs
/// as a scheduled `Event::FailOver` — requests to its regions fail until
/// then, which is the availability gap fig4 measures.
impl faults::FaultTarget for Cluster {
    type Event = Event;

    fn fault_nodes(&self) -> usize {
        self.servers.len()
    }

    fn region_nodes(&self, region: u32) -> Vec<NodeId> {
        if region >= self.config.topology.num_regions() {
            return Vec::new();
        }
        self.config.topology.region_nodes(region).collect()
    }

    fn apply_crash<W: From<Event>>(&mut self, sim: &mut Sim<W>, node: NodeId) {
        if self.config.failover_delay_us == 0 {
            self.fail_server(node);
        } else {
            self.crash_server(node);
            sim.schedule_in(
                self.config.failover_delay_us,
                W::from(Event::FailOver { server: node }),
            );
        }
    }

    fn apply_recover<W: From<Event>>(&mut self, _sim: &mut Sim<W>, node: NodeId) {
        self.recover_server(node);
    }

    fn apply_slow_disk(&mut self, node: NodeId, factor: u32) {
        self.servers[node.index()].degrade_disk(factor);
    }

    fn apply_restore_disk(&mut self, node: NodeId) {
        self.servers[node.index()].restore_disk();
    }

    fn apply_net_delay(&mut self, node: NodeId, extra_us: u64) {
        self.servers[node.index()].delay_net(extra_us);
    }

    fn apply_restore_net(&mut self, node: NodeId) {
        self.servers[node.index()].restore_net();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[derive(Debug, Clone)]
    enum Ev {
        Store(Event),
    }
    impl From<Event> for Ev {
        fn from(e: Event) -> Self {
            Ev::Store(e)
        }
    }

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn key(i: u64) -> Bytes {
        Bytes::from(format!("user{i:012}").into_bytes())
    }

    fn config(rf: u32, nodes: usize, records: u64) -> HStoreConfig {
        let splits: Vec<Bytes> = (1..nodes as u64)
            .map(|i| key(i * records / nodes as u64))
            .collect();
        let mut c = HStoreConfig::paper_testbed(rf, splits);
        c.nodes = nodes;
        c.topology = simkit::Topology::single_rack(nodes, c.profile.nic.prop_us);
        c
    }

    struct Harness {
        cluster: Cluster,
        sim: Sim<Ev>,
        next_token: u64,
    }

    impl Harness {
        fn new(cfg: HStoreConfig) -> Self {
            Self {
                cluster: Cluster::new(cfg, 7),
                sim: Sim::new(42),
                next_token: 1,
            }
        }

        fn submit(&mut self, op: StoreOp) -> u64 {
            let t = self.next_token;
            self.next_token += 1;
            self.cluster.submit(&mut self.sim, t, op);
            t
        }

        fn run(&mut self) -> Vec<Completion> {
            let mut out = Vec::new();
            out.extend(self.cluster.drain_completions());
            while let Some(Ev::Store(ev)) = self.sim.next() {
                self.cluster.handle(&mut self.sim, ev);
                out.extend(self.cluster.drain_completions());
            }
            out
        }

        fn run_one(&mut self, op: StoreOp) -> Completion {
            let t = self.submit(op);
            let out = self.run();
            out.into_iter().find(|c| c.token == t).expect("completed")
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut h = Harness::new(config(3, 5, 1000));
        let w = h.run_one(StoreOp::Insert {
            key: key(10),
            value: k("hello"),
        });
        assert!(matches!(w.result, OpResult::Written { .. }));
        let r = h.run_one(StoreOp::Read { key: key(10) });
        match r.result {
            OpResult::Value(Some(cell)) => {
                assert_eq!(cell.value.as_deref(), Some(&b"hello"[..]));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reads_are_strongly_consistent_immediately() {
        // No consistency knob exists: a write acked is a write visible.
        let mut h = Harness::new(config(6, 5, 1000));
        for i in 0..50u64 {
            h.run_one(StoreOp::Update {
                key: key(i % 3),
                value: Bytes::from(format!("v{i}").into_bytes()),
            });
            let r = h.run_one(StoreOp::Read { key: key(i % 3) });
            match r.result {
                OpResult::Value(Some(cell)) => {
                    assert_eq!(cell.value.as_deref(), Some(format!("v{i}").as_bytes()));
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn delete_hides_value() {
        let mut h = Harness::new(config(2, 4, 1000));
        h.run_one(StoreOp::Insert {
            key: key(1),
            value: k("v"),
        });
        h.run_one(StoreOp::Delete { key: key(1) });
        let r = h.run_one(StoreOp::Read { key: key(1) });
        assert_eq!(r.result, OpResult::Value(None));
    }

    #[test]
    fn scan_crosses_region_boundaries_in_order() {
        let mut h = Harness::new(config(2, 4, 100));
        for i in 0..100u64 {
            h.run_one(StoreOp::Insert {
                key: key(i),
                value: k("v"),
            });
        }
        let r = h.run_one(StoreOp::Scan {
            start: key(20),
            limit: 40,
        });
        match r.result {
            OpResult::Rows(rows) => {
                assert_eq!(rows.len(), 40);
                assert_eq!(rows[0].0, key(20));
                assert_eq!(rows[39].0, key(59));
                let keys: Vec<_> = rows.iter().map(|(k, _)| k.clone()).collect();
                let mut sorted = keys.clone();
                sorted.sort();
                assert_eq!(keys, sorted);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn scan_stops_at_data_end() {
        let mut h = Harness::new(config(2, 4, 100));
        for i in 0..30u64 {
            h.run_one(StoreOp::Insert {
                key: key(i),
                value: k("v"),
            });
        }
        let r = h.run_one(StoreOp::Scan {
            start: key(25),
            limit: 50,
        });
        match r.result {
            OpResult::Rows(rows) => assert_eq!(rows.len(), 5),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn group_commit_batches_concurrent_writers() {
        let mut h = Harness::new(config(3, 2, 100));
        // Many writes to the same region submitted at once.
        let mut tokens = Vec::new();
        for i in 0..20u64 {
            tokens.push(h.submit(StoreOp::Insert {
                key: key(i), // region 0 holds 0..50
                value: k("v"),
            }));
        }
        let out = h.run();
        assert_eq!(out.len(), 20);
        assert!(out
            .iter()
            .all(|c| matches!(c.result, OpResult::Written { .. })));
        let m = h.cluster.metrics();
        assert!(
            m.wal_groups < 20,
            "expected batching, got {} groups",
            m.wal_groups
        );
        assert!(m.wal_batching() > 1.0);
    }

    #[test]
    fn wal_pipeline_replicates_log_bytes_to_rf_disks() {
        let mut h = Harness::new(config(3, 5, 1000));
        h.run_one(StoreOp::Insert {
            key: key(0),
            value: Bytes::from(vec![9u8; 500]),
        });
        let pipeline = h.cluster.wals[h.cluster.regions.get(0).server.index()]
            .pipeline
            .clone();
        assert_eq!(pipeline.len(), 3);
        for n in pipeline {
            assert!(
                h.cluster.server(n).disk.written_bytes() >= 500,
                "pipeline member {n} received no log bytes"
            );
        }
    }

    #[test]
    fn write_latency_grows_only_mildly_with_rf() {
        // The paper's key HBase observation: in-memory pipeline replication
        // keeps the write latency nearly flat as RF grows.
        let mut lats = Vec::new();
        for rf in [1u32, 6] {
            let mut h = Harness::new(config(rf, 8, 1000));
            let issue = h.sim.now();
            let t = h.submit(StoreOp::Insert {
                key: key(0),
                value: Bytes::from(vec![1u8; 1000]),
            });
            let mut done = 0;
            while let Some(Ev::Store(ev)) = h.sim.next() {
                h.cluster.handle(&mut h.sim, ev);
                if h.cluster.drain_completions().iter().any(|c| c.token == t) {
                    done = h.sim.now();
                }
            }
            lats.push(done - issue);
        }
        let (rf1, rf6) = (lats[0] as f64, lats[1] as f64);
        assert!(rf6 > rf1, "more hops must cost something");
        assert!(
            rf6 < rf1 * 3.0,
            "write latency should grow mildly, not proportionally: {lats:?}"
        );
    }

    #[test]
    fn flush_writes_hfiles_through_dfs() {
        let mut cfg = config(3, 4, 200);
        cfg.lsm.memtable_flush_bytes = 2_048;
        let mut h = Harness::new(cfg);
        for i in 0..200u64 {
            h.run_one(StoreOp::Insert {
                key: key(i),
                value: Bytes::from(vec![3u8; 100]),
            });
        }
        assert!(h.cluster.metrics().flushes > 0);
        // Each flushed HFile exists in dfs with RF replicas.
        let total_hfiles: usize = h.cluster.regions().iter().map(|r| r.hfiles.len()).sum();
        assert!(total_hfiles > 0);
        for region in h.cluster.regions().iter() {
            for file in region.hfiles.values() {
                let meta = h.cluster.fs().namenode().file(*file).expect("file exists");
                for b in &meta.blocks {
                    assert_eq!(h.cluster.fs().locations(*b).len(), 3);
                }
            }
        }
    }

    #[test]
    fn reads_stay_local_and_rf_blind() {
        // Read latency must be (statistically) identical across RF because
        // the read path never touches a replica.
        let mut lat_by_rf = Vec::new();
        for rf in [1u32, 6] {
            let mut cfg = config(rf, 5, 500);
            cfg.lsm.memtable_flush_bytes = 8 * 1024;
            let mut h = Harness::new(cfg);
            for i in 0..500u64 {
                h.cluster.load_direct(key(i), k("v"), 1);
            }
            h.cluster.flush_all();
            let issue = h.sim.now();
            let t = h.submit(StoreOp::Read { key: key(250) });
            let mut done = 0;
            while let Some(Ev::Store(ev)) = h.sim.next() {
                h.cluster.handle(&mut h.sim, ev);
                if h.cluster.drain_completions().iter().any(|c| c.token == t) {
                    done = h.sim.now();
                }
            }
            lat_by_rf.push(done - issue);
        }
        assert_eq!(
            lat_by_rf[0], lat_by_rf[1],
            "read path must be identical across RF"
        );
    }

    #[test]
    fn server_down_errors_without_failover() {
        let mut h = Harness::new(config(2, 4, 100));
        h.run_one(StoreOp::Insert {
            key: key(10),
            value: k("v"),
        });
        let server = h.cluster.regions().get(0).server;
        h.cluster.servers[server.index()].fail();
        let r = h.run_one(StoreOp::Read { key: key(10) });
        assert_eq!(r.result, OpResult::Error(OpError::ServerDown));
        assert!(OpError::ServerDown.is_retryable());
        assert!(h.cluster.metrics().server_down >= 1);
    }

    #[test]
    fn timeouts_fire_when_the_server_dies_mid_flight() {
        // Two writes to the same server submitted back to back: the first
        // opens a WAL group, the second queues behind it. Crashing the
        // server after both arrivals strands the queued writer — no new
        // group ever starts — so it must surface as a retryable `Timeout`
        // (server accepted, then went silent), not a `ServerDown` verdict.
        let mut cfg = config(1, 2, 100);
        cfg.rpc_timeout_us = 50_000;
        let mut h = Harness::new(cfg);
        let server = h.cluster.regions().get(0).server;
        let t1 = h.submit(StoreOp::Insert {
            key: key(1),
            value: k("a"),
        });
        let t2 = h.submit(StoreOp::Insert {
            key: key(2),
            value: k("b"),
        });
        let mut out = Vec::new();
        let mut arrivals = 0;
        while let Some(Ev::Store(ev)) = h.sim.next() {
            let was_arrive = matches!(ev, Event::Arrive { .. });
            h.cluster.handle(&mut h.sim, ev);
            out.extend(h.cluster.drain_completions());
            if was_arrive {
                arrivals += 1;
                if arrivals == 2 {
                    h.cluster.crash_server(server);
                }
            }
        }
        let first = out.iter().find(|c| c.token == t1).expect("first write");
        assert!(
            matches!(first.result, OpResult::Written { .. }),
            "in-flight group still commits: {first:?}"
        );
        let second = out.iter().find(|c| c.token == t2).expect("second write");
        assert_eq!(second.result, OpResult::Error(OpError::Timeout));
    }

    #[test]
    fn failover_moves_regions_and_keeps_data_readable() {
        let mut cfg = config(3, 4, 400);
        cfg.lsm.memtable_flush_bytes = 4 * 1024;
        let mut h = Harness::new(cfg);
        for i in 0..400u64 {
            h.cluster.load_direct(key(i), k("v"), 1);
        }
        h.cluster.flush_all();
        let victim = h.cluster.regions().get(0).server;
        h.cluster.fail_server(victim);
        assert!(h.cluster.metrics().regions_moved > 0);
        assert!(h.cluster.regions().on_server(victim).is_empty());
        // A key from the moved region is still readable (remote blocks).
        let r = h.run_one(StoreOp::Read { key: key(5) });
        assert!(matches!(r.result, OpResult::Value(Some(_))), "{r:?}");
    }

    #[test]
    fn failover_restores_dfs_replication() {
        let mut cfg = config(3, 6, 300);
        cfg.lsm.memtable_flush_bytes = 4 * 1024;
        let mut h = Harness::new(cfg);
        for i in 0..300u64 {
            h.cluster.load_direct(key(i), k("v"), 1);
        }
        h.cluster.flush_all();
        let victim = h.cluster.regions().get(0).server;
        h.cluster.fail_server(victim);
        assert!(
            h.cluster.fs().namenode().under_replicated().is_empty(),
            "re-replication should have healed all blocks"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut h = Harness::new(config(3, 5, 1000));
            for i in 0..20u64 {
                h.submit(StoreOp::Insert {
                    key: key(i),
                    value: k("v"),
                });
            }
            let out = h.run();
            (out.len(), h.sim.now(), h.cluster.metrics().wal_groups)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wal_ships_reach_every_follower_with_the_configured_lag() {
        let mut cfg = config(3, 5, 1000);
        cfg.follower_regions = 2;
        cfg.ship_wan_us = 25_000;
        cfg.ship_lag_us = 10_000;
        let mut h = Harness::new(cfg);
        for i in 0..20u64 {
            h.submit(StoreOp::Insert {
                key: key(i),
                value: k("v"),
            });
        }
        h.run();
        let m = h.cluster.metrics();
        assert_eq!(
            m.wal_ships,
            m.wal_groups * 2,
            "every committed group ships to both followers"
        );
        // The window is at least lag + WAN one-way; NIC transmit adds more.
        let window = h.cluster.mean_replication_window_us();
        assert!(window >= 35_000.0, "window {window} below lag+WAN floor");
        // Watermarks advanced to the last commit the followers have applied.
        for f in 0..2 {
            assert!(h.cluster.follower_watermark(f) > 0);
            assert!(h.cluster.follower_watermark(f) < h.sim.now());
        }
    }

    #[test]
    fn replication_window_tracks_ship_lag() {
        let run = |lag: u64| {
            let mut cfg = config(3, 5, 1000);
            cfg.follower_regions = 1;
            cfg.ship_lag_us = lag;
            let mut h = Harness::new(cfg);
            for i in 0..20u64 {
                h.submit(StoreOp::Insert {
                    key: key(i),
                    value: k("v"),
                });
            }
            h.run();
            h.cluster.mean_replication_window_us()
        };
        let short = run(10_000);
        let long = run(200_000);
        assert!(
            (long - short - 190_000.0).abs() < 1.0,
            "window grows exactly with the ship lag: {short} vs {long}"
        );
    }

    #[test]
    fn disabled_async_replication_is_bit_identical() {
        let run = |followers: u32| {
            let mut cfg = config(3, 5, 1000);
            cfg.follower_regions = followers;
            let mut h = Harness::new(cfg);
            for i in 0..30u64 {
                h.submit(StoreOp::Insert {
                    key: key(i),
                    value: k("v"),
                });
                h.submit(StoreOp::Read { key: key(i) });
            }
            let out = h.run();
            (out.len(), h.sim.now(), h.sim.dispatched())
        };
        // follower_regions = 0 must not change a single event relative to
        // the pre-geo code path (the seed determinism contract).
        assert_eq!(run(0), run(0));
        // And the foreground timeline is untouched by shipping: only the
        // extra ship events distinguish the runs.
        let (n0, _, d0) = run(0);
        let (n1, t1, d1) = run(1);
        assert_eq!(n0, n1);
        assert!(d1 > d0, "ship events were dispatched");
        assert!(t1 > 0);
    }
}
