//! The cluster's internal event vocabulary.

use simkit::NodeId;
use storage::{Key, OpResult};

/// An internal simulation event of the HBase-analog cluster.
#[derive(Debug, Clone)]
pub enum Event {
    /// A client request fully arrived at its region server.
    Arrive {
        /// Operation id (the driver token).
        op: u64,
    },
    /// A WAL group commit's pipeline round trip finished on a server.
    WalFlushDone {
        /// The region server whose WAL group completed.
        server: NodeId,
        /// The mutations covered by this group.
        group: Vec<u64>,
    },
    /// A scan leg arrived at the server of `region`.
    ScanExec {
        /// Operation id.
        op: u64,
        /// Region index to scan.
        region: usize,
        /// First key of this leg.
        start: Key,
    },
    /// The final response reached the client.
    Deliver {
        /// The driver token.
        token: u64,
        /// The outcome.
        result: OpResult,
    },
    /// Give up on an incomplete operation.
    Timeout {
        /// Operation id.
        op: u64,
    },
    /// Trickle one chunk of throttled background (flush/compaction) disk
    /// I/O on a server.
    BgIo {
        /// The server draining its backlog.
        server: NodeId,
    },
    /// A stop-the-world pause (JVM GC) begins on a server.
    GcPause {
        /// The pausing server.
        server: NodeId,
    },
    /// The master detects a crashed server (ZooKeeper session expiry) and
    /// starts region failover. Scheduled by deferred crash injection; a
    /// no-op if the server already recovered.
    FailOver {
        /// The server whose crash was detected.
        server: NodeId,
    },
}
