//! The cluster's internal event vocabulary.
//!
//! Internal events reference their operation by slab key ([`OpKey`], see
//! [`simkit::slab`]): a late event whose op already completed carries a
//! stale generation and resolves to nothing, replacing the old
//! `HashMap`-miss semantics.

use simkit::{NodeId, OpKey, SimTime};
use storage::{Key, OpResult};

/// An internal simulation event of the HBase-analog cluster.
#[derive(Debug, Clone)]
pub enum Event {
    /// A client request fully arrived at its region server.
    Arrive {
        /// Slab key of the pending op.
        op: OpKey,
    },
    /// A WAL group commit's pipeline round trip finished on a server.
    WalFlushDone {
        /// The region server whose WAL group completed.
        server: NodeId,
        /// The mutations covered by this group.
        group: Vec<OpKey>,
    },
    /// A scan leg arrived at the server of `region`.
    ScanExec {
        /// Slab key of the pending op.
        op: OpKey,
        /// Region index to scan.
        region: usize,
        /// First key of this leg.
        start: Key,
    },
    /// The final response reached the client.
    Deliver {
        /// The driver token.
        token: u64,
        /// Slab key of the pending op (stale when the op timed out first).
        op: OpKey,
        /// The outcome.
        result: OpResult,
    },
    /// Give up on an incomplete operation.
    Timeout {
        /// Slab key of the pending op.
        op: OpKey,
    },
    /// Trickle one chunk of throttled background (flush/compaction) disk
    /// I/O on a server.
    BgIo {
        /// The server draining its backlog.
        server: NodeId,
    },
    /// A stop-the-world pause (JVM GC) begins on a server.
    GcPause {
        /// The pausing server.
        server: NodeId,
    },
    /// The master detects a crashed server (ZooKeeper session expiry) and
    /// starts region failover. Scheduled by deferred crash injection; a
    /// no-op if the server already recovered.
    FailOver {
        /// The server whose crash was detected.
        server: NodeId,
    },
    /// A shipped WAL group arrives at a follower region's replication sink
    /// (async cluster replication). The follower applies it and advances
    /// its watermark; the gap `now - commit_ts` is the replication window.
    WalShip {
        /// Follower-region ordinal, `0..follower_regions`.
        follower: u32,
        /// When the group committed on the primary.
        commit_ts: SimTime,
    },
}
