//! Regions: contiguous key ranges with their storage engines.

use simkit::FastHashMap;

use dfs::FileId;
use simkit::NodeId;
use storage::{Key, LsmConfig, LsmTree, TableId};

/// One region: a key range `[start, end)` served by a single region server.
#[derive(Debug, Clone)]
pub struct Region {
    /// Inclusive start key (empty = from the beginning of the key space).
    pub start: Key,
    /// Exclusive end key; `None` = to the end of the key space.
    pub end: Option<Key>,
    /// The serving region server.
    pub server: NodeId,
    /// The region's storage engine (memstore + HFiles + cache slice).
    pub lsm: LsmTree,
    /// HFile SSTables mapped to their backing `dfs` files.
    pub hfiles: FastHashMap<TableId, FileId>,
}

impl Region {
    /// True when `key` falls inside this region.
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.start.as_ref() && self.end.as_ref().is_none_or(|e| key < e.as_ref())
    }
}

/// The sorted set of regions covering the whole key space.
#[derive(Debug, Clone)]
pub struct RegionMap {
    regions: Vec<Region>,
}

impl RegionMap {
    /// Build regions from sorted split keys, assigned round-robin over
    /// `servers` region servers. A leading empty-key region is added when
    /// the first split is not the empty key, so every key routes somewhere.
    pub fn new(mut splits: Vec<Key>, servers: usize, lsm: LsmConfig) -> Self {
        assert!(servers > 0);
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "region splits must be strictly sorted"
        );
        if splits.first().is_none_or(|k| !k.is_empty()) {
            splits.insert(0, Key::new());
        }
        let ends: Vec<Option<Key>> = splits
            .iter()
            .skip(1)
            .cloned()
            .map(Some)
            .chain(std::iter::once(None))
            .collect();
        let regions = splits
            .into_iter()
            .zip(ends)
            .enumerate()
            .map(|(i, (start, end))| Region {
                start,
                end,
                server: NodeId((i % servers) as u32),
                lsm: LsmTree::new(lsm),
                hfiles: FastHashMap::default(),
            })
            .collect();
        Self { regions }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// There is always at least one region.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the region containing `key`.
    pub fn region_of(&self, key: &[u8]) -> usize {
        match self.regions.binary_search_by(|r| r.start.as_ref().cmp(key)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Access a region.
    pub fn get(&self, idx: usize) -> &Region {
        &self.regions[idx]
    }

    /// Mutable region access.
    pub fn get_mut(&mut self, idx: usize) -> &mut Region {
        &mut self.regions[idx]
    }

    /// All regions.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    /// All regions, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Region> {
        self.regions.iter_mut()
    }

    /// Regions currently assigned to `server`.
    pub fn on_server(&self, server: NodeId) -> Vec<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.server == server)
            .map(|(i, _)| i)
            .collect()
    }

    /// Regions per server (for cache sizing).
    pub fn regions_per_server(&self, servers: usize) -> usize {
        self.regions.len().div_ceil(servers.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn map() -> RegionMap {
        RegionMap::new(vec![k("g"), k("n"), k("t")], 2, LsmConfig::default())
    }

    #[test]
    fn leading_region_is_added() {
        let m = map();
        assert_eq!(m.len(), 4, "implicit first region plus three splits");
        assert_eq!(m.get(0).start, Key::new());
        assert_eq!(m.get(0).end, Some(k("g")));
        assert_eq!(m.get(3).end, None);
    }

    #[test]
    fn every_key_routes_to_its_range() {
        let m = map();
        assert_eq!(m.region_of(b""), 0);
        assert_eq!(m.region_of(b"a"), 0);
        assert_eq!(m.region_of(b"g"), 1);
        assert_eq!(m.region_of(b"m"), 1);
        assert_eq!(m.region_of(b"n"), 2);
        assert_eq!(m.region_of(b"zzz"), 3);
        for key in [b"a".as_ref(), b"g", b"n", b"q", b"z"] {
            assert!(m.get(m.region_of(key)).contains(key));
        }
    }

    #[test]
    fn round_robin_assignment() {
        let m = map();
        assert_eq!(m.get(0).server, NodeId(0));
        assert_eq!(m.get(1).server, NodeId(1));
        assert_eq!(m.get(2).server, NodeId(0));
        assert_eq!(m.get(3).server, NodeId(1));
        assert_eq!(m.on_server(NodeId(0)), vec![0, 2]);
        assert_eq!(m.regions_per_server(2), 2);
    }

    #[test]
    fn contains_respects_bounds() {
        let m = map();
        let r = m.get(1); // [g, n)
        assert!(r.contains(b"g"));
        assert!(r.contains(b"m"));
        assert!(!r.contains(b"n"));
        assert!(!r.contains(b"f"));
        assert!(m.get(3).contains(b"~~~"), "last region is unbounded");
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_splits_rejected() {
        let _ = RegionMap::new(vec![k("n"), k("g")], 2, LsmConfig::default());
    }
}
