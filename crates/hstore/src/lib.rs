//! # hstore — the HBase analog
//!
//! A from-scratch implementation of the HBase-side machinery the paper
//! benchmarks:
//!
//! * **regions**: contiguous key ranges, each served by exactly one region
//!   server — the reason HBase reads are strongly consistent and blind to
//!   the replication factor;
//! * a **write-ahead log per region server stored in [`dfs`]**: appends are
//!   replicated through an in-memory pipeline (acknowledged before any disk
//!   sync, with group commit batching concurrent writers) — the mechanism
//!   the paper credits for HBase's flat write latency as RF grows;
//! * **memstores** that flush into HFiles written through the `dfs`
//!   pipeline, so flush/compaction disk traffic *does* scale with RF;
//! * **short-circuit local reads**: flushes place the first HFile replica on
//!   the writing server, so reads are always local disk + block cache;
//! * a **master** that assigns regions and, on server failure, reassigns
//!   them (with WAL-replay and cold-cache costs) for the availability
//!   extension experiments.
//!
//! As with `cstore`, everything is functionally real and temporally
//! simulated on `simkit` resources.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod config;
pub mod event;
pub mod master;
pub mod metrics;
pub mod region;

pub use cluster::Cluster;
pub use config::{HStoreConfig, ServiceCosts};
pub use event::Event;
pub use master::Master;
pub use metrics::Metrics;
pub use region::{Region, RegionMap};
