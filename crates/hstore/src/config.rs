//! Cluster configuration.

use simkit::{AdmissionConfig, NodeProfile, Topology};
use storage::{Key, LsmConfig};

/// CPU service times (microseconds) for the HBase-analog request path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCosts {
    /// Region-server request handling (parse, route to region).
    pub server_us: u64,
    /// Per-node cost of relaying one WAL pipeline packet.
    pub wal_hop_us: u64,
    /// Memstore apply cost per mutation.
    pub apply_us: u64,
    /// Replica-side read handling.
    pub read_us: u64,
    /// Per-row scan cost.
    pub scan_row_us: u64,
    /// Fixed per-message overhead bytes.
    pub msg_overhead_bytes: u64,
    /// Service-time variability: 0 = deterministic, 1 = exponential.
    pub jitter: f64,
}

impl Default for ServiceCosts {
    fn default() -> Self {
        // Calibrated to 2014-era request-path costs (JVM RPC stacks): a
        // full single-op handling path lands around a millisecond, which
        // keeps the WAL pipeline's per-hop delta proportionally small — the
        // paper's "no significant change" in HBase write latency vs RF.
        Self {
            server_us: 700,
            wal_hop_us: 20,
            apply_us: 200,
            read_us: 400,
            scan_row_us: 5,
            msg_overhead_bytes: 100,
            jitter: 1.0,
        }
    }
}

/// Full configuration of a simulated HBase-analog cluster.
#[derive(Debug, Clone)]
pub struct HStoreConfig {
    /// Number of region servers (the paper: 15; the master shares the
    /// client machine and is not on the serving path).
    pub nodes: usize,
    /// HDFS replication factor (the paper sweeps 1..=6).
    pub replication_factor: u32,
    /// Region start keys (sorted; the first region implicitly starts at the
    /// empty key if the list doesn't). One region per entry, assigned
    /// round-robin by the master.
    pub region_splits: Vec<Key>,
    /// Per-region storage tuning. `cache_bytes` is interpreted per *server*
    /// and divided among its regions.
    pub lsm: LsmConfig,
    /// Hardware of each node.
    pub profile: NodeProfile,
    /// Rack layout.
    pub topology: Topology,
    /// CPU service times.
    pub costs: ServiceCosts,
    /// Roll the WAL block after this many bytes (HDFS block size).
    pub wal_block_bytes: u64,
    /// Background (flush/compaction) disk-I/O throttle, bytes/second per
    /// node — real HBase/HDFS deployments rate-limit compaction similarly.
    pub bg_io_rate: u64,
    /// Mean interval between stop-the-world pauses per node (JVM garbage
    /// collection). 0 disables.
    pub pause_interval_us: u64,
    /// Duration of each pause.
    pub pause_duration_us: u64,
    /// Client give-up interval, microseconds: an operation still incomplete
    /// this long after submission fails with a `ServerDown` error (fault
    /// experiments shorten it so timeout behaviour is visible within one
    /// timeline window).
    pub rpc_timeout_us: u64,
    /// Regionserver admission control: bounded in-flight queue with load
    /// shedding (HBase's RPC call-queue bound). Disabled by default
    /// ([`AdmissionConfig::off`]) — off runs add zero events and zero RNG
    /// draws.
    pub admission: AdmissionConfig,
    /// Background-I/O chunk size, bytes. Flush/compaction backlogs drain in
    /// chunks of this size so foreground reads can interleave between
    /// chunks on the FIFO disk.
    pub bg_chunk_bytes: u64,
    /// Crash-detection delay, microseconds: how long after a server crash
    /// the master notices (ZooKeeper session expiry) and starts region
    /// failover. During this window requests to the dead server's regions
    /// fail immediately. `0` makes failover synchronous with the crash —
    /// the pre-existing `fail_server` behaviour.
    pub failover_delay_us: u64,
    /// Async cluster-replication (geo) mode: the number of follower
    /// regions (remote datacenters) this primary ships committed WAL
    /// groups to, HBase-replication style. The primary serves all client
    /// traffic; followers are modeled as replication sinks whose applied
    /// watermark trails the primary by the shipping delay. `0` (the
    /// default) disables shipping entirely — no events, no cost,
    /// bit-identical to the pre-geo behaviour.
    pub follower_regions: u32,
    /// One-way WAN delay from the primary to each follower region,
    /// microseconds.
    pub ship_wan_us: u64,
    /// Extra shipping lag before a committed group leaves the primary (the
    /// replication source tails the WAL asynchronously and batches).
    pub ship_lag_us: u64,
}

impl HStoreConfig {
    /// The paper's testbed shape: 15 region servers, one rack, defaults
    /// everywhere else. `region_splits` carves the key space.
    pub fn paper_testbed(replication_factor: u32, region_splits: Vec<Key>) -> Self {
        let profile = NodeProfile::paper_testbed();
        Self {
            nodes: 15,
            replication_factor,
            region_splits,
            lsm: LsmConfig::default(),
            profile,
            topology: Topology::single_rack(15, profile.nic.prop_us),
            costs: ServiceCosts::default(),
            wal_block_bytes: 4 * 1024 * 1024,
            bg_io_rate: 16_000_000,
            pause_interval_us: 0,
            pause_duration_us: 50_000,
            rpc_timeout_us: 2_000_000,
            admission: AdmissionConfig::off(),
            bg_chunk_bytes: 64 * 1024,
            failover_delay_us: 0,
            follower_regions: 0,
            ship_wan_us: geo::DEFAULT_INTER_REGION_US,
            ship_lag_us: 10_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn paper_testbed_shape() {
        let c = HStoreConfig::paper_testbed(3, vec![Bytes::from_static(b"m")]);
        assert_eq!(c.nodes, 15);
        assert_eq!(c.replication_factor, 3);
        assert_eq!(c.topology.len(), 15);
        assert_eq!(c.costs.server_us, 700);
        assert_eq!(c.rpc_timeout_us, 2_000_000);
        assert_eq!(c.failover_delay_us, 0, "failover is synchronous by default");
        assert_eq!(c.follower_regions, 0, "async replication is off by default");
        assert_eq!(c.ship_wan_us, 25_000);
    }
}
