//! The master: region assignment and failover planning.
//!
//! The master is off the serving path (clients cache region locations, as
//! with HBase's META table); it matters when a region server dies and its
//! regions must move.

use simkit::NodeId;

use crate::region::RegionMap;

/// One region move decided by the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reassignment {
    /// The region being moved.
    pub region: usize,
    /// The server it was on.
    pub from: NodeId,
    /// Its new server.
    pub to: NodeId,
}

/// The cluster master.
#[derive(Debug, Clone, Default)]
pub struct Master {
    reassignments: u64,
}

impl Master {
    /// A fresh master.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total region moves performed.
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    /// Move every region off `dead`, spreading them over the `live` servers
    /// with the fewest regions. Updates the region map and returns the moves.
    pub fn fail_over(
        &mut self,
        regions: &mut RegionMap,
        dead: NodeId,
        live: &[NodeId],
    ) -> Vec<Reassignment> {
        assert!(!live.is_empty(), "no live servers to fail over to");
        let mut load: Vec<(usize, NodeId)> = live
            .iter()
            .map(|&s| (regions.on_server(s).len(), s))
            .collect();
        let mut moves = Vec::new();
        for idx in regions.on_server(dead) {
            load.sort_by_key(|&(n, s)| (n, s.0));
            let (count, target) = load[0];
            load[0] = (count + 1, target);
            regions.get_mut(idx).server = target;
            moves.push(Reassignment {
                region: idx,
                from: dead,
                to: target,
            });
            self.reassignments += 1;
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use storage::LsmConfig;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn failover_moves_all_regions_off_dead_server() {
        let mut regions = RegionMap::new(
            vec![k("d"), k("h"), k("m"), k("r"), k("w")],
            3,
            LsmConfig::default(),
        );
        let mut master = Master::new();
        let dead = NodeId(0);
        let live = [NodeId(1), NodeId(2)];
        let owned_before = regions.on_server(dead).len();
        assert!(owned_before > 0);
        let moves = master.fail_over(&mut regions, dead, &live);
        assert_eq!(moves.len(), owned_before);
        assert!(regions.on_server(dead).is_empty());
        assert_eq!(master.reassignments(), owned_before as u64);
        for m in &moves {
            assert!(live.contains(&m.to));
            assert_eq!(m.from, dead);
        }
    }

    #[test]
    fn failover_balances_targets() {
        // Nine regions over three servers; kill one, its three regions
        // should split as evenly as possible over the two survivors.
        let splits: Vec<Bytes> = (1..9)
            .map(|i| Bytes::from(format!("{i}").into_bytes()))
            .collect();
        let mut regions = RegionMap::new(splits, 3, LsmConfig::default());
        let mut master = Master::new();
        master.fail_over(&mut regions, NodeId(0), &[NodeId(1), NodeId(2)]);
        let a = regions.on_server(NodeId(1)).len();
        let b = regions.on_server(NodeId(2)).len();
        assert_eq!(a + b, 9);
        assert!(a.abs_diff(b) <= 1, "unbalanced: {a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "no live servers")]
    fn failover_needs_survivors() {
        let mut regions = RegionMap::new(vec![k("m")], 1, LsmConfig::default());
        Master::new().fail_over(&mut regions, NodeId(0), &[]);
    }
}
