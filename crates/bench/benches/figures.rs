//! Criterion wrappers over whole figure cells at smoke scale: one
//! representative (store, workload) end-to-end simulated run per figure, so
//! regressions in harness wall-time are caught by `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bench_core::driver::{self, DriverConfig};
use bench_core::setup::{build_cstore, build_hstore, Scale};
use cstore::Consistency;
use ycsb::WorkloadSpec;

fn quick_driver(workload: WorkloadSpec, scale: &Scale) -> DriverConfig {
    DriverConfig {
        threads: 8,
        warmup_ops: 100,
        measure_ops: 1_000,
        value_len: scale.value_len,
        ..DriverConfig::new(workload, scale.records)
    }
}

fn bench_fig1_cell(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut base = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut base, scale.records, scale.value_len, 1);
    c.bench_function("fig1_cell/cstore_rf3_read_round", |b| {
        let cfg = quick_driver(WorkloadSpec::micro(storage::OpKind::Read), &scale);
        b.iter(|| {
            let mut snapshot = base.clone();
            black_box(driver::run(&mut snapshot, &cfg).throughput)
        });
    });
}

fn bench_fig2_cell(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut base = build_hstore(&scale, 3);
    driver::load(&mut base, scale.records, scale.value_len, 1);
    c.bench_function("fig2_cell/hstore_rf3_read_mostly", |b| {
        let cfg = quick_driver(WorkloadSpec::read_mostly(), &scale);
        b.iter(|| {
            let mut snapshot = base.clone();
            black_box(driver::run(&mut snapshot, &cfg).throughput)
        });
    });
}

fn bench_fig3_cell(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut base = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
    driver::load(&mut base, scale.records, scale.value_len, 1);
    c.bench_function("fig3_cell/cstore_quorum_read_update", |b| {
        let cfg = quick_driver(WorkloadSpec::read_update(), &scale);
        b.iter(|| {
            let mut snapshot = base.clone();
            black_box(driver::run(&mut snapshot, &cfg).throughput)
        });
    });
}

fn bench_load_phase(c: &mut Criterion) {
    let scale = Scale::tiny();
    c.bench_function("load/cstore_tiny", |b| {
        b.iter(|| {
            let mut store = build_cstore(&scale, 3, Consistency::One, Consistency::One);
            driver::load(&mut store, scale.records, scale.value_len, 1);
            black_box(store.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_cell, bench_fig2_cell, bench_fig3_cell, bench_load_phase
}
criterion_main!(benches);
