//! Criterion microbenches for the hot components of the simulation stack:
//! the costs here bound how fast the figure harnesses can run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::RngCore;

use simkit::{EventQueue, SimRng};
use storage::bloom::BloomFilter;
use storage::cache::{BlockCache, BlockKey};
use storage::{Cell, LsmConfig, LsmTree, Memtable, SsTable, TableId};
use ycsb::generator::Zipfian;
use ycsb::Histogram;

fn key(i: u64) -> bytes::Bytes {
    bytes::Bytes::from(format!("user{i:012}").into_bytes())
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("simrng/next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.push((i * 7) % 997, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        });
    });
}

fn bench_zipfian(c: &mut Criterion) {
    c.bench_function("zipfian/next", |b| {
        let z = Zipfian::new(1_000_000);
        let mut rng = SimRng::new(2);
        b.iter(|| black_box(z.next(&mut rng)));
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v % 10_000_000));
        });
    });
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable/insert", |b| {
        let mut m = Memtable::new();
        let mut i = 0u64;
        let value = bytes::Bytes::from(vec![7u8; 100]);
        b.iter(|| {
            i += 1;
            m.insert(key(i % 100_000), Cell::live(value.clone(), i));
        });
    });
}

fn bench_sstable_get(c: &mut Criterion) {
    let entries: Vec<_> = (0..100_000u64)
        .map(|i| (key(i), Cell::live(bytes::Bytes::from_static(b"v"), i)))
        .collect();
    let table = SsTable::build(TableId(1), entries, 8 * 1024);
    c.bench_function("sstable/get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(table.get(&key(i)))
        });
    });
    c.bench_function("sstable/get_bloom_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(table.get(format!("ghost{i}").as_bytes()))
        });
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut f = BloomFilter::with_capacity(100_000, 10);
    for i in 0..100_000u64 {
        f.insert(&key(i));
    }
    c.bench_function("bloom/may_contain", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.may_contain(&key(i % 200_000)))
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("block_cache/get_insert", |b| {
        let mut cache = BlockCache::new(1 << 20);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let k = BlockKey {
                table: TableId(u64::from(i % 7)),
                block: i % 300,
            };
            if cache.get(k).is_none() {
                cache.insert(k, 4_096);
            }
        });
    });
}

fn bench_lsm_read_path(c: &mut Criterion) {
    let mut tree = LsmTree::new(LsmConfig::default());
    for i in 0..50_000u64 {
        tree.put(key(i), Cell::live(bytes::Bytes::from(vec![1u8; 100]), i));
        if i % 10_000 == 9_999 {
            tree.flush();
        }
    }
    c.bench_function("lsm/get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            black_box(tree.get(&key(i)).cell.is_some())
        });
    });
    c.bench_function("lsm/scan_50", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 104_729) % 40_000;
            black_box(tree.scan(&key(i), 50).rows.len())
        });
    });
}

fn bench_lsm_get_hot(c: &mut Criterion) {
    // Steady-state point read with the block cache warm: memtable miss →
    // bloom pass → cache hit, the zero-copy get path end to end.
    let mut tree = LsmTree::new(LsmConfig {
        cache_bytes: 16 << 20,
        ..LsmConfig::default()
    });
    for i in 0..50_000u64 {
        tree.put(key(i), Cell::live(bytes::Bytes::from(vec![1u8; 100]), i));
        if i % 10_000 == 9_999 {
            tree.flush();
        }
    }
    tree.flush();
    // Warm the hot set.
    for i in 0..512u64 {
        tree.get(&key(i));
    }
    c.bench_function("lsm/get_hot", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(tree.get(&key(i % 512)).cell.is_some())
        });
    });
}

fn bench_lsm_get_cold(c: &mut Criterion) {
    // Cache-starved point read: nearly every get fetches a block from
    // "disk" and churns the LRU.
    let mut tree = LsmTree::new(LsmConfig {
        cache_bytes: 8 << 10,
        ..LsmConfig::default()
    });
    for i in 0..50_000u64 {
        tree.put(key(i), Cell::live(bytes::Bytes::from(vec![1u8; 100]), i));
    }
    tree.flush();
    c.bench_function("lsm/get_cold", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(2_654_435_761);
            black_box(tree.get(&key(i % 50_000)).cell.is_some())
        });
    });
}

fn bench_compact_merge(c: &mut Criterion) {
    // The streaming k-way merge at compaction fan-ins from routine
    // (size-tiered minor) to worst-case (major over a wide tier).
    use storage::merge::merge_runs;
    use storage::Key;

    let value = bytes::Bytes::from(vec![7u8; 100]);
    for runs_n in [4usize, 16, 64] {
        let per_run = 32_768 / runs_n;
        let runs: Vec<Vec<(Key, Cell)>> = (0..runs_n)
            .map(|r| {
                (0..per_run)
                    .map(|i| {
                        let id = (i * 2 + (r & 1)) as u64;
                        (key(id), Cell::live(value.clone(), r as u64))
                    })
                    .collect()
            })
            .collect();
        let views: Vec<&[(Key, Cell)]> = runs.iter().map(Vec::as_slice).collect();
        c.bench_function(&format!("lsm/compact_merge_{runs_n}"), |b| {
            b.iter(|| black_box(merge_runs(&views, true).len()));
        });
    }
}

fn bench_snapshot_vs_reload(c: &mut Criterion) {
    // The sweep engine's economics: stamping a copy-on-write snapshot out
    // of a loaded base state vs rebuilding and bulk-loading from scratch,
    // as every experiment cell did before base states were shared.
    use bench_core::driver;
    use bench_core::setup::{build_cstore, Scale};
    use cstore::Consistency;

    let scale = Scale::tiny();
    let mut base = build_cstore(&scale, 3, Consistency::One, Consistency::One);
    driver::load(&mut base, scale.records, scale.value_len, 42);

    c.bench_function("sweep/snapshot_clone", |b| {
        b.iter(|| black_box(base.snapshot()));
    });
    c.bench_function("sweep/full_build_and_load", |b| {
        b.iter(|| {
            let mut fresh = build_cstore(&scale, 3, Consistency::One, Consistency::One);
            driver::load(&mut fresh, scale.records, scale.value_len, 42);
            black_box(fresh)
        });
    });
}

criterion_group!(
    benches,
    bench_rng,
    bench_event_queue,
    bench_zipfian,
    bench_histogram,
    bench_memtable,
    bench_sstable_get,
    bench_bloom,
    bench_cache,
    bench_lsm_read_path,
    bench_lsm_get_hot,
    bench_lsm_get_cold,
    bench_compact_merge,
    bench_snapshot_vs_reload,
);
criterion_main!(benches);
