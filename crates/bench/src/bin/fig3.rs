//! Regenerates Fig. 3: the stress benchmark for consistency.
//!
//! Cassandra analog at RF=3, consistency ONE vs QUORUM vs write-ALL, the
//! five Table 1 workloads, runtime throughput vs target throughput. Writes
//! `results/fig3_consistency.csv`.

use bench_core::consistency::{run_consistency, ConsistencyConfig};
use bench_core::report::AsciiChart;

fn main() {
    let cfg = if bench::quick_requested() {
        ConsistencyConfig::quick()
    } else {
        ConsistencyConfig::default()
    };
    eprintln!(
        "fig3: {} records, rf {}, {} levels × {} workloads × {} targets",
        cfg.scale.records,
        cfg.rf,
        cfg.levels.len(),
        cfg.workloads.len(),
        cfg.targets.len()
    );
    let started = std::time::Instant::now();
    let result = run_consistency(&cfg);
    eprintln!("fig3: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig3: {}", result.telemetry.summary());

    println!("{}", result.render());
    for w in &cfg.workloads {
        let mut chart = AsciiChart::new(
            &format!(
                "\"{}\" peak runtime throughput by consistency level",
                w.name
            ),
            "ops/s",
        );
        for level in &cfg.levels {
            chart.point(level.name, result.peak(level.name, &w.name));
        }
        println!("{}", chart.render());
    }
    let path = bench::results_dir().join("fig3_consistency.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
