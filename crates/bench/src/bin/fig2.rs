//! Regenerates Fig. 2: the stress benchmark for replication.
//!
//! Both stores, RF 1..6, the five Table 1 workloads; constant threads,
//! peak runtime throughput with its latency. Writes
//! `results/fig2_stress.csv`.

use bench_core::report::AsciiChart;
use bench_core::setup::StoreKind;
use bench_core::stress::{run_stress, StressConfig};

fn main() {
    let cfg = if bench::quick_requested() {
        StressConfig::quick()
    } else {
        StressConfig::default()
    };
    eprintln!(
        "fig2: {} records, rf {:?}, {} workloads, {} threads",
        cfg.scale.records,
        cfg.rfs,
        cfg.workloads.len(),
        cfg.threads
    );
    let started = std::time::Instant::now();
    let result = run_stress(&cfg);
    eprintln!("fig2: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig2: {}", result.telemetry.summary());

    println!("{}", result.render());
    let workload_names: Vec<String> = cfg.workloads.iter().map(|w| w.name.clone()).collect();
    for store in [StoreKind::HStore, StoreKind::CStore] {
        for w in &workload_names {
            let mut chart = AsciiChart::new(
                &format!("{} \"{w}\" peak throughput vs RF", store.short()),
                "ops/s",
            );
            for (rf, tp) in result.throughput_series(store, w) {
                chart.point(&format!("rf={rf}"), tp);
            }
            println!("{}", chart.render());
        }
    }
    let path = bench::results_dir().join("fig2_stress.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
