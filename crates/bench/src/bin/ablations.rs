//! Runs the beyond-paper ablations: read-repair chance, commit-log
//! durability, and failover phases. Writes CSVs under `results/`.

use bench_core::ablation::{
    ablate_commitlog, ablate_partitioner, ablate_read_repair, failover_phases, AblationConfig,
};

fn main() {
    let cfg = if bench::quick_requested() {
        AblationConfig::quick()
    } else {
        AblationConfig::default()
    };
    let started = std::time::Instant::now();

    let rr = ablate_read_repair(&cfg, 6);
    println!("{}", rr.render());
    rr.write_csv(&bench::results_dir().join("ablation_read_repair.csv"))
        .expect("write csv");

    let cl = ablate_commitlog(&cfg);
    println!("{}", cl.render());
    cl.write_csv(&bench::results_dir().join("ablation_commitlog.csv"))
        .expect("write csv");

    let fo = failover_phases(&cfg);
    println!("{}", fo.render());
    fo.write_csv(&bench::results_dir().join("extension_failover.csv"))
        .expect("write csv");

    let part = ablate_partitioner(&cfg);
    println!("{}", part.render());
    part.write_csv(&bench::results_dir().join("ablation_partitioner.csv"))
        .expect("write csv");

    eprintln!("ablations: done in {:.1}s", started.elapsed().as_secs_f64());
}
