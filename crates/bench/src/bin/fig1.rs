//! Regenerates Fig. 1: the micro benchmark for replication.
//!
//! Both stores, RF 1..6, one atomic-operation round each for
//! update/read/insert/scan at an unsaturated load. Prints the latency
//! tables, ASCII latency curves, and writes `results/fig1_micro.csv`.

use bench_core::micro::{run_micro, MicroConfig, MICRO_OPS};
use bench_core::report::AsciiChart;
use bench_core::setup::StoreKind;

fn main() {
    let cfg = if bench::quick_requested() {
        MicroConfig::quick()
    } else {
        MicroConfig::default()
    };
    eprintln!(
        "fig1: {} records, rf {:?}, {} threads, target {} ops/s",
        cfg.scale.records, cfg.rfs, cfg.threads, cfg.target_ops_per_sec
    );
    let started = std::time::Instant::now();
    let result = run_micro(&cfg);
    eprintln!("fig1: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig1: {}", result.telemetry.summary());

    println!("{}", result.render());
    for store in [StoreKind::HStore, StoreKind::CStore] {
        for op in MICRO_OPS {
            let mut chart = AsciiChart::new(
                &format!("{} {} mean latency vs RF", store.short(), op.label()),
                "us",
            );
            for (rf, mean) in result.series(store, op) {
                chart.point(&format!("rf={rf}"), mean);
            }
            println!("{}", chart.render());
        }
    }
    let path = bench::results_dir().join("fig1_micro.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
