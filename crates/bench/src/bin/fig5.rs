//! Regenerates Fig. 5: availability under failure with a resilient client.
//!
//! The Fig. 4 crash/recover plan rerun at RF=3 for every consistency level
//! under three client policies — `none` (fair-weather), `retry` (bounded
//! attempts, jittered exponential backoff, deadline budget), and
//! `retry+hedge` (plus speculative second reads). Prints the phase-summary
//! table (goodput split into first-try and retried, error counts, and the
//! attempts-per-op cost) and writes the per-window timeline to
//! `results/fig5_availability.csv`.

use bench_core::availability::{run_availability, AvailabilityConfig};

fn main() {
    let cfg = if bench::quick_requested() {
        AvailabilityConfig::quick()
    } else {
        AvailabilityConfig::default()
    };
    eprintln!(
        "fig5: {} records, rf {}, {} threads, target {} ops/s, crash {:.1}s..{:.1}s, retry {} attempts / {}us base / {}us budget, hedge {}us",
        cfg.scale.records,
        cfg.rf,
        cfg.threads,
        cfg.target_ops_per_sec,
        cfg.crash_at_us as f64 / 1e6,
        cfg.recover_at_us as f64 / 1e6,
        cfg.retry.max_attempts,
        cfg.retry.base_backoff_us,
        cfg.retry.deadline_us,
        cfg.hedge_after_us,
    );
    let started = std::time::Instant::now();
    let result = run_availability(&cfg);
    eprintln!("fig5: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig5: {}", result.telemetry.summary());

    println!("{}", result.render());
    let path = bench::results_dir().join("fig5_availability.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
