//! Regenerates Fig. 10: graceful degradation under overload.
//!
//! An open-loop (Poisson) offered-load sweep across the capacity knee for
//! both stores, with and without server-side admission control. The
//! uncontrolled arm accepts every arrival and its tail diverges past the
//! knee; the admission arm bounds the entry queue under a strict-priority
//! policy and sheds the batch tenant first, keeping the admitted p99 and
//! the interactive tenant's SLA. Prints one panel per store and writes
//! every cell to `results/fig10_overload.csv`.

use bench_core::overload::{run_overload, OverloadConfig};

fn main() {
    let cfg = if bench::quick_requested() {
        OverloadConfig::quick()
    } else {
        OverloadConfig::default()
    };
    eprintln!(
        "fig10: {} records, loads {:?} ops/s, rf {}, admission depth {} ({:?}), {} tenants",
        cfg.scale.records,
        cfg.offered_loads,
        cfg.rf,
        cfg.admission.max_in_flight,
        cfg.admission.policy,
        cfg.tenants.len(),
    );
    let started = std::time::Instant::now();
    let result = run_overload(&cfg);
    eprintln!("fig10: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig10: {}", result.telemetry.summary());

    println!("{}", result.render());
    let path = bench::results_dir().join("fig10_overload.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
