//! BENCH_006: the engine-speed trajectory of the event core.
//!
//! Measures queue-churn events/sec (calendar wheel vs reference binary
//! heap at several pending-event populations) and whole-driver runs on
//! either backend, then writes `results/BENCH_006.json`. With `--gate`
//! (what CI passes), the new calendar churn rate is compared against the
//! committed baseline's `gate_events_per_sec` and the process exits 1 on
//! a >20% regression.
//!
//! `--quick` shrinks populations and op counts for the CI smoke run.

use std::process::ExitCode;

use bench_core::perf::{self, PerfReport};
use bench_core::setup::StoreKind;
use simkit::QueueKind;

/// Fraction of the baseline events/sec the new measurement must reach.
const GATE_FLOOR: f64 = 0.8;

fn main() -> ExitCode {
    let quick = bench::quick_requested();
    let gate = std::env::args().any(|a| a == "--gate");
    let out_path = bench::results_dir().join("BENCH_006.json");
    let baseline = std::fs::read_to_string(&out_path).ok();

    let populations: &[usize] = &[1_000, 100_000, 1_000_000];
    let churn_events: u64 = if quick { 1_000_000 } else { 4_000_000 };

    let mut report = PerfReport {
        quick,
        churn: Vec::new(),
        driver: Vec::new(),
        peak_rss_bytes: 0,
    };

    // Best-of-3 per point: wall-clock microbenches on shared machines see
    // scheduler and frequency noise well above the 20% gate threshold; the
    // best sample tracks the machine's actual capability.
    for &pending in populations {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let s = (0..3)
                .map(|_| perf::queue_churn(kind, pending, churn_events))
                .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
                .unwrap_or_else(|| perf::queue_churn(kind, pending, churn_events));
            eprintln!(
                "perfbench: churn {:>8} pending {:?}: {:.2}M events/s ({:.2}s, best of 3)",
                pending,
                kind,
                s.events_per_sec() / 1e6,
                s.wall.as_secs_f64(),
            );
            report.churn.push(s);
        }
    }

    for store in [StoreKind::HStore, StoreKind::CStore] {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let s = (0..3)
                .map(|_| perf::driver_run(store, kind, quick))
                .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
                .unwrap_or_else(|| perf::driver_run(store, kind, quick));
            eprintln!(
                "perfbench: driver {} {:?}: {} events, {:.2}M events/s, {:.0} sim-ops/s ({:.2}s, best of 3)",
                store.short(),
                kind,
                s.events,
                s.events_per_sec() / 1e6,
                s.ops_per_sec(),
                s.wall.as_secs_f64(),
            );
            report.driver.push(s);
        }
    }

    report.peak_rss_bytes = perf::peak_rss_bytes();

    if let Some(speedup) = report.churn_speedup() {
        println!("perfbench: calendar over heap at 1M pending: {speedup:.1}x events/sec");
    }
    // Both backends dispatch the same virtual schedule, so driver events
    // match exactly; wall-clock is where they differ.
    for store in [StoreKind::HStore, StoreKind::CStore] {
        let eps = |kind: QueueKind| {
            report
                .driver
                .iter()
                .find(|d| d.store == store && d.backend == kind)
                .map(|d| d.events_per_sec())
        };
        if let (Some(cal), Some(heap)) = (eps(QueueKind::Calendar), eps(QueueKind::Heap)) {
            if heap > 0.0 {
                println!(
                    "perfbench: {} driver calendar over heap: {:.2}x",
                    store.short(),
                    cal / heap
                );
            }
        }
    }

    let verdict = gate_verdict(gate, baseline.as_deref(), &report);

    let json = report.to_json();
    if let Err(e) = std::fs::create_dir_all(bench::results_dir()) {
        eprintln!("perfbench: cannot create results dir: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perfbench: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("perfbench: wrote {}", out_path.display());

    match verdict {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

/// Compare the fresh measurement against the committed baseline (when
/// gating is requested and a baseline exists). The baseline is read before
/// the report overwrites the file.
fn gate_verdict(gate: bool, baseline: Option<&str>, report: &PerfReport) -> Result<String, String> {
    if !gate {
        return Ok("perfbench: gate not requested (--gate to enable)".to_owned());
    }
    let Some(base) = baseline else {
        return Ok("perfbench: no committed baseline; gate passes vacuously".to_owned());
    };
    let Some(base_eps) = perf::extract_number(base, "gate_events_per_sec") else {
        return Ok(
            "perfbench: baseline has no gate_events_per_sec; gate passes vacuously".to_owned(),
        );
    };
    let now_eps = report.gate_events_per_sec();
    let floor = base_eps * GATE_FLOOR;
    if now_eps < floor {
        Err(format!(
            "perfbench: REGRESSION: calendar churn {:.0} events/s is below {:.0} \
             (80% of committed baseline {:.0})",
            now_eps, floor, base_eps
        ))
    } else {
        Ok(format!(
            "perfbench: gate passed: {:.0} events/s vs baseline {:.0} (floor {:.0})",
            now_eps, base_eps, floor
        ))
    }
}
