//! BENCH_009: engine speed across the event core and the storage engine.
//!
//! Measures queue-churn events/sec (calendar wheel vs reference binary
//! heap at several pending-event populations), LSM storage microbenches
//! (hot/cold point reads, flush cycles, streaming compaction merge), and
//! whole-driver runs on either backend, then writes
//! `results/BENCH_009.json`. With `--gate` (what CI passes), the fresh
//! measurement is compared against the committed baseline on two floors —
//! calendar churn `gate_events_per_sec` and whole-driver cstore
//! `gate_ops_per_sec` — and the process exits 1 when either falls more
//! than 20% short. A missing `BENCH_009.json` baseline falls back to the
//! BENCH_006 artifact (which carries the events/sec number only).
//!
//! `--quick` shrinks populations and op counts for the CI smoke run.

use std::process::ExitCode;

use bench_core::perf::{self, PerfReport};
use bench_core::setup::StoreKind;
use simkit::QueueKind;

/// Fraction of the baseline events/sec the new measurement must reach.
const GATE_FLOOR: f64 = 0.8;

fn main() -> ExitCode {
    let quick = bench::quick_requested();
    let gate = std::env::args().any(|a| a == "--gate");
    // Iteration aid: skip the churn + storage stages and measure only the
    // whole-driver runs (the report is not written in this mode).
    let driver_only = std::env::args().any(|a| a == "--driver-only");
    let out_path = bench::results_dir().join("BENCH_009.json");
    let baseline = std::fs::read_to_string(&out_path)
        .or_else(|_| std::fs::read_to_string(bench::results_dir().join("BENCH_006.json")))
        .ok();

    let populations: &[usize] = &[1_000, 100_000, 1_000_000];
    // Quick mode trims the heap backend only: heap churn at 1M pending is
    // the slow point (~5 s per rep), while calendar finishes 4M events in
    // under a second. The calendar numbers must keep the full event count
    // either way — the gate compares `gate_events_per_sec` (calendar at the
    // largest population) against a full-run baseline, and a shorter run
    // amortizes the wheel's narrow-rebuild over fewer events, reading ~40%
    // low and tripping the floor with no real regression.
    let churn_events = |kind: QueueKind| -> u64 {
        if quick && kind == QueueKind::Heap {
            1_000_000
        } else {
            4_000_000
        }
    };

    let mut report = PerfReport {
        quick,
        churn: Vec::new(),
        storage: Vec::new(),
        driver: Vec::new(),
        peak_rss_bytes: 0,
    };

    // Best-of-3 per point: wall-clock microbenches on shared machines see
    // scheduler and frequency noise well above the 20% gate threshold; the
    // best sample tracks the machine's actual capability.
    for &pending in if driver_only { &[][..] } else { populations } {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let s = (0..3)
                .map(|_| perf::queue_churn(kind, pending, churn_events(kind)))
                .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
                .unwrap_or_else(|| perf::queue_churn(kind, pending, churn_events(kind)));
            eprintln!(
                "perfbench: churn {:>8} pending {:?}: {:.2}M events/s ({:.2}s, best of 3)",
                pending,
                kind,
                s.events_per_sec() / 1e6,
                s.wall.as_secs_f64(),
            );
            report.churn.push(s);
        }
    }

    // Storage microbenches: best-of-3 full suites, keeping per-name bests
    // (setup is re-done each round; only the timed loops count).
    let mut storage_best: Vec<perf::StorageSample> = if driver_only {
        Vec::new()
    } else {
        perf::storage_microbench(quick)
    };
    for _ in 0..2 {
        for (best, fresh) in storage_best.iter_mut().zip(perf::storage_microbench(quick)) {
            if fresh.ops_per_sec() > best.ops_per_sec() {
                *best = fresh;
            }
        }
    }
    for s in &storage_best {
        eprintln!(
            "perfbench: storage {:<16} {:>8} ops: {:.2}M ops/s ({:.3}s, best of 3)",
            s.name,
            s.ops,
            s.ops_per_sec() / 1e6,
            s.wall.as_secs_f64(),
        );
    }
    report.storage = storage_best;

    for store in [StoreKind::HStore, StoreKind::CStore] {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let s = (0..3)
                .map(|_| perf::driver_run(store, kind, quick))
                .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
                .unwrap_or_else(|| perf::driver_run(store, kind, quick));
            eprintln!(
                "perfbench: driver {} {:?}: {} events, {:.2}M events/s, {:.0} sim-ops/s ({:.2}s, best of 3)",
                store.short(),
                kind,
                s.events,
                s.events_per_sec() / 1e6,
                s.ops_per_sec(),
                s.wall.as_secs_f64(),
            );
            report.driver.push(s);
        }
    }

    report.peak_rss_bytes = perf::peak_rss_bytes();

    if let Some(speedup) = report.churn_speedup() {
        println!("perfbench: calendar over heap at 1M pending: {speedup:.1}x events/sec");
    }
    // Both backends dispatch the same virtual schedule, so driver events
    // match exactly; wall-clock is where they differ.
    for store in [StoreKind::HStore, StoreKind::CStore] {
        let eps = |kind: QueueKind| {
            report
                .driver
                .iter()
                .find(|d| d.store == store && d.backend == kind)
                .map(|d| d.events_per_sec())
        };
        if let (Some(cal), Some(heap)) = (eps(QueueKind::Calendar), eps(QueueKind::Heap)) {
            if heap > 0.0 {
                println!(
                    "perfbench: {} driver calendar over heap: {:.2}x",
                    store.short(),
                    cal / heap
                );
            }
        }
    }

    if driver_only {
        println!("perfbench: driver-only run; report not written");
        return ExitCode::SUCCESS;
    }

    let verdict = gate_verdict(gate, baseline.as_deref(), &report);

    let json = report.to_json();
    if let Err(e) = std::fs::create_dir_all(bench::results_dir()) {
        eprintln!("perfbench: cannot create results dir: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perfbench: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("perfbench: wrote {}", out_path.display());

    match verdict {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

/// Compare the fresh measurement against the committed baseline (when
/// gating is requested and a baseline exists). Two floors: calendar churn
/// events/sec and whole-driver cstore ops/sec — either regressing >20%
/// fails the gate. The baseline is read before the report overwrites the
/// file; a baseline lacking one of the keys (the BENCH_006 fallback has no
/// `gate_ops_per_sec`) skips that floor.
fn gate_verdict(gate: bool, baseline: Option<&str>, report: &PerfReport) -> Result<String, String> {
    if !gate {
        return Ok("perfbench: gate not requested (--gate to enable)".to_owned());
    }
    let Some(base) = baseline else {
        return Ok("perfbench: no committed baseline; gate passes vacuously".to_owned());
    };
    let mut passed = Vec::new();
    for (key, label, now) in [
        (
            "gate_events_per_sec",
            "calendar churn events/s",
            report.gate_events_per_sec(),
        ),
        (
            "gate_ops_per_sec",
            "cstore driver ops/s",
            report.gate_ops_per_sec(),
        ),
    ] {
        let Some(base_val) = perf::extract_number(base, key) else {
            continue;
        };
        let floor = base_val * GATE_FLOOR;
        if now < floor {
            return Err(format!(
                "perfbench: REGRESSION: {label} {now:.0} is below {floor:.0} \
                 (80% of committed baseline {base_val:.0})"
            ));
        }
        passed.push(format!("{label} {now:.0} vs baseline {base_val:.0}"));
    }
    if passed.is_empty() {
        return Ok("perfbench: baseline has no gate keys; gate passes vacuously".to_owned());
    }
    Ok(format!("perfbench: gate passed: {}", passed.join("; ")))
}
