//! Calibration probe: decomposes the read path of both stores at one scale
//! so the hardware/cost model can be sanity-checked (table counts, cache
//! hit rates, disk traffic, latency means). Not part of the paper's
//! artifacts; useful when retuning `Scale` or `ServiceCosts`.

use bench_core::driver::{self, DriverConfig};
use bench_core::resilience::RetryPolicy;
use bench_core::setup::{build_cstore, build_hstore, Scale};
use cstore::Consistency;
use simkit::NodeId;
use storage::OpKind;
use ycsb::WorkloadSpec;

fn main() {
    if std::env::args().nth(1).as_deref() == Some("cl") {
        consistency_probe();
        return;
    }
    let rf: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let scale = Scale::micro();
    let dcfg = DriverConfig {
        workload: WorkloadSpec::micro(OpKind::Read),
        threads: 48,
        target_ops_per_sec: 1_500.0,
        records: scale.records,
        value_len: scale.value_len,
        warmup_ops: 1_000,
        measure_ops: 8_000,
        seed: 42,
        faults: Default::default(),
        timeline_window_us: 0,
        retry: RetryPolicy::none(),
        trace: Default::default(),
        audit: Default::default(),
        arrival: Default::default(),
    };

    {
        let mut h = build_hstore(&scale, rf);
        driver::load(&mut h, scale.records, scale.value_len, 42);
        let tables: usize = h.regions().iter().map(|r| r.lsm.table_count()).sum();
        let out = driver::run(&mut h, &dcfg);
        let node0 = h.server(NodeId(0));
        let hits: u64 = h.regions().iter().map(|r| r.lsm.cache_stats().hits).sum();
        let misses: u64 = h.regions().iter().map(|r| r.lsm.cache_stats().misses).sum();
        println!(
            "hstore rf={rf}: mean={:.0}us tput={:.0} tables={tables} cache_hit={:.2} disk0_util={:.2} disk0_reads={}B",
            out.mean_latency_us,
            out.throughput,
            hits as f64 / (hits + misses).max(1) as f64,
            node0.disk.utilization(out.sim_duration_us),
            node0.disk.read_bytes(),
        );
    }
    {
        let mut c = build_cstore(&scale, rf, Consistency::One, Consistency::One);
        driver::load(&mut c, scale.records, scale.value_len, 42);
        let tables: usize = (0..c.len())
            .map(|i| c.node(NodeId(i as u32)).lsm.table_count())
            .sum();
        let out = driver::run(&mut c, &dcfg);
        let node0 = c.node(NodeId(0));
        let (hits, misses) = (0..c.len()).fold((0u64, 0u64), |(h, m), i| {
            let s = c.node(NodeId(i as u32)).lsm.cache_stats();
            (h + s.hits, m + s.misses)
        });
        println!(
            "cstore rf={rf}: mean={:.0}us tput={:.0} tables={tables} cache_hit={:.2} disk0_util={:.2} disk0_reads={}B repair_fanouts={} repair_writes={} pauses={}",
            out.mean_latency_us,
            out.throughput,
            hits as f64 / (hits + misses).max(1) as f64,
            node0.hw.disk.utilization(out.sim_duration_us),
            node0.hw.disk.read_bytes(),
            c.metrics().repair_fanouts,
            c.metrics().repair_writes,
            c.metrics().gc_pauses,
        );
    }
}

/// Per-op-type latency decomposition across consistency levels at the
/// stress scale (diagnostic for Fig. 3 calibration).
fn consistency_probe() {
    let scale = Scale::stress();
    for (name, rcl, wcl) in [
        ("ONE", Consistency::One, Consistency::One),
        ("QUORUM", Consistency::Quorum, Consistency::Quorum),
        ("writeALL", Consistency::One, Consistency::All),
    ] {
        let mut c = build_cstore(&scale, 3, rcl, wcl);
        driver::load(&mut c, scale.records, scale.value_len, 42);
        let dcfg = DriverConfig {
            workload: WorkloadSpec::read_update(),
            threads: 64,
            target_ops_per_sec: 0.0,
            records: scale.records,
            value_len: scale.value_len,
            warmup_ops: 2_000,
            measure_ops: 15_000,
            seed: 42,
            faults: Default::default(),
            timeline_window_us: 0,
            retry: RetryPolicy::none(),
            trace: Default::default(),
            audit: Default::default(),
            arrival: Default::default(),
        };
        let out = driver::run(&mut c, &dcfg);
        let (hits, misses) = (0..c.len()).fold((0u64, 0u64), |(h, m), i| {
            let st = c.node(simkit::NodeId(i as u32)).lsm.cache_stats();
            (h + st.hits, m + st.misses)
        });
        let read = out
            .metrics
            .for_op(OpKind::Read)
            .map(|h| h.mean())
            .unwrap_or(0.0);
        let upd = out
            .metrics
            .for_op(OpKind::Update)
            .map(|h| h.mean())
            .unwrap_or(0.0);
        println!(
            "{name}: tput={:.0} read_mean={read:.0}us update_mean={upd:.0}us hit={:.2} pauses={} mismatches={} repairs={}",
            out.throughput,
            hits as f64 / (hits + misses).max(1) as f64,
            c.metrics().gc_pauses,
            c.metrics().digest_mismatches,
            c.metrics().repair_writes,
        );
    }
}
