//! Regenerates Fig. 7: the geo-replication PACELC experiment.
//!
//! Region counts {1, 2, 3} × consistency levels ONE / LOCAL_QUORUM /
//! QUORUM / EACH_QUORUM / write-ALL (Cassandra analog, NetworkTopology
//! placement with per-DC replica quotas) plus the HBase analog's async
//! cluster-replication mode (primary region serves, WAL ships to follower
//! regions). Prints one panel per region count and writes every cell to
//! `results/fig7_geo.csv`.

use bench_core::geo_experiment::{run_geo, GeoExperimentConfig};

fn main() {
    let cfg = if bench::quick_requested() {
        GeoExperimentConfig::quick()
    } else {
        GeoExperimentConfig::default()
    };
    eprintln!(
        "fig7: {} records, regions {:?}, {} nodes/region, rf {}/dc, wan {}µs (±{:.0}%), {} threads",
        cfg.scale.records,
        cfg.region_counts,
        cfg.nodes_per_region,
        cfg.rf_per_dc,
        cfg.inter_region_us,
        cfg.wan_jitter * 100.0,
        cfg.threads,
    );
    let started = std::time::Instant::now();
    let result = run_geo(&cfg);
    eprintln!("fig7: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig7: {}", result.telemetry.summary());

    println!("{}", result.render());
    let path = bench::results_dir().join("fig7_geo.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
