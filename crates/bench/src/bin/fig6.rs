//! Regenerates Fig. 6: the latency-decomposition experiment.
//!
//! Both stores, RF {1, 3, 5}, consistency levels ONE / QUORUM / write-ALL
//! (Cassandra analog) and the implicit strong level (HBase analog), with
//! every operation span-traced. Prints the stage-attribution summary and
//! writes the per-stage table to `results/fig6_decomposition.csv` plus a
//! sample of full span traces to `results/fig6_traces.jsonl`.

use bench_core::decomposition::{run_decomposition, DecompositionConfig};
use bench_core::setup::StoreKind;

fn main() {
    let cfg = if bench::quick_requested() {
        DecompositionConfig::quick()
    } else {
        DecompositionConfig::default()
    };
    eprintln!(
        "fig6: {} records, rf {:?}, {} threads, tracing every {} op(s)",
        cfg.scale.records, cfg.rfs, cfg.threads, cfg.sample_every,
    );
    let started = std::time::Instant::now();
    let result = run_decomposition(&cfg);
    eprintln!("fig6: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig6: {}", result.telemetry.summary());
    for c in &result.cells {
        assert!(
            c.exact,
            "critical-path sums must equal measured latency ({}/{}/{})",
            c.store, c.rf, c.cl
        );
    }
    let traced: u64 = result.cells.iter().map(|c| c.ops_traced).sum();
    println!(
        "critical paths exact: yes ({} cells, {} traced ops)",
        result.cells.len(),
        traced
    );

    println!("{}", result.render());
    let path = bench::results_dir().join("fig6_decomposition.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());

    // A handful of full span trees from the most interesting cell —
    // quorum writes at the paper's standard RF=3 — for trace tooling.
    if let Some(trace) = result.sample_trace(StoreKind::CStore, 3, "QUORUM") {
        let path = bench::results_dir().join("fig6_traces.jsonl");
        trace.write_jsonl(&path).expect("write jsonl");
        println!("sample traces written to {}", path.display());
    }
}
