//! Regenerates Fig. 8: the client-centric consistency audit.
//!
//! Both stores, RF {1, 3, 5}, consistency levels ONE / QUORUM / write-ALL
//! (Cassandra analog) and the implicit strong level (HBase analog), run
//! through the Fig. 4 crash/recover plan with full per-client history
//! recording. The histories are replayed through the session-guarantee
//! checkers, the (Δ,p)-staleness curves, and the bounded linearizability
//! check, split by fault phase. Prints the summary table and writes the
//! per-(cell, phase) audit to `results/fig8_audit.csv`.

use bench_core::audit_experiment::{run_audit, AuditExperimentConfig};

fn main() {
    let cfg = if bench::quick_requested() {
        AuditExperimentConfig::quick()
    } else {
        AuditExperimentConfig::default()
    };
    eprintln!(
        "fig8: {} records, rf {:?}, {} threads, target {} ops/s, crash {:.1}s..{:.1}s, {} lin keys",
        cfg.scale.records,
        cfg.rfs,
        cfg.threads,
        cfg.target_ops_per_sec,
        cfg.crash_at_us as f64 / 1e6,
        cfg.recover_at_us as f64 / 1e6,
        cfg.lin_keys,
    );
    let started = std::time::Instant::now();
    let result = run_audit(&cfg);
    eprintln!("fig8: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig8: {}", result.telemetry.summary());

    println!("{}", result.render());
    let path = bench::results_dir().join("fig8_audit.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
