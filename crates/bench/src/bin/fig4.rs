//! Regenerates Fig. 4: the failure-timeline experiment.
//!
//! Both stores, RF {1, 3, 5}, consistency levels ONE / QUORUM / write-ALL
//! (Cassandra analog) and the implicit strong level (HBase analog), under
//! a constant-rate workload while one node crashes and later recovers.
//! Prints the phase-summary table and writes the per-window timeline to
//! `results/fig4_failure.csv`.

use bench_core::failure::{run_failure, FailureConfig};

fn main() {
    let cfg = if bench::quick_requested() {
        FailureConfig::quick()
    } else {
        FailureConfig::default()
    };
    eprintln!(
        "fig4: {} records, rf {:?}, {} threads, target {} ops/s, crash {:.1}s..{:.1}s",
        cfg.scale.records,
        cfg.rfs,
        cfg.threads,
        cfg.target_ops_per_sec,
        cfg.crash_at_us as f64 / 1e6,
        cfg.recover_at_us as f64 / 1e6,
    );
    let started = std::time::Instant::now();
    let result = run_failure(&cfg);
    eprintln!("fig4: done in {:.1}s", started.elapsed().as_secs_f64());
    eprintln!("fig4: {}", result.telemetry.summary());

    println!("{}", result.render());
    let path = bench::results_dir().join("fig4_failure.csv");
    result.table().write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
