//! Regenerates the paper's Table 1: "Workloads of the stress benchmarks for
//! replication and consistency".

use bench_core::report::Table;
use storage::OpKind;
use ycsb::WorkloadSpec;

fn mix_description(w: &WorkloadSpec) -> String {
    let m = w.mix;
    let mut parts = Vec::new();
    for (frac, label) in [
        (m.read, "read"),
        (m.update, "update"),
        (m.insert, "insert"),
        (m.scan, "scan"),
        (m.rmw, "read-modify-write"),
    ] {
        if frac > 0.0 {
            parts.push(format!("{label} {:.0}%", frac * 100.0));
        }
    }
    parts.join(" / ")
}

fn main() {
    let mut t = Table::new(
        "Table 1 — workloads of the stress benchmarks for replication and consistency",
        &[
            "workload",
            "typical usage",
            "operations",
            "records distribution",
        ],
    );
    for w in WorkloadSpec::paper_stress_workloads() {
        t.row(vec![
            w.name.clone(),
            w.typical_usage.clone(),
            mix_description(&w),
            format!("{:?}", w.distribution),
        ]);
    }
    println!("{}", t.render());
    let path = bench::results_dir().join("table1_workloads.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());

    // The micro rounds, for completeness (the paper describes them in §3.3).
    let mut m = Table::new(
        "Micro benchmark rounds (1-byte records, uniform requests)",
        &["round", "operation"],
    );
    for (i, op) in [OpKind::Update, OpKind::Read, OpKind::Insert, OpKind::Scan]
        .iter()
        .enumerate()
    {
        m.row(vec![(i + 1).to_string(), op.label().into()]);
    }
    println!("{}", m.render());
}
