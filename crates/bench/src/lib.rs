//! # bench — harness regenerating every evaluation artifact
//!
//! Binaries (run with `--release`; each also writes CSV under `results/`):
//!
//! * `table1` — the paper's Table 1 (workload definitions).
//! * `fig1` — micro benchmark for replication (latency vs RF, both stores).
//! * `fig2` — stress benchmark for replication (peak throughput + latency
//!   vs RF, five workloads, both stores).
//! * `fig3` — stress benchmark for consistency (runtime vs target under
//!   ONE / QUORUM / write-ALL, Cassandra analog, RF=3).
//! * `fig4` — failure timeline (throughput dip, error spike, and recovery
//!   around a crash/recover fault, both stores × RF × consistency).
//! * `fig5` — availability under failure with a resilient client (the
//!   Fig. 4 crash under `none` / `retry` / `retry+hedge` policies:
//!   goodput split, client-visible errors, attempts-per-op cost).
//! * `fig6` — latency decomposition (every op span-traced, critical paths
//!   extracted, virtual time attributed to pipeline stages — where does
//!   the time go, both stores × RF × consistency).
//! * `fig7` — geo-replication PACELC sweep (region count × consistency
//!   level over multi-datacenter topologies: DC-aware quorums on the
//!   Cassandra analog, async WAL shipping on the HBase analog).
//! * `fig8` — client-centric consistency audit (per-client operation
//!   histories recorded through the Fig. 4 crash plan, replayed through
//!   session-guarantee checkers, (Δ,p)-staleness curves, and a bounded
//!   linearizability check, split by fault phase).
//! * `ablations` — beyond-paper ablations (read repair, commit-log
//!   durability, failover phases).
//!
//! Pass `--quick` to any figure binary for a fast smoke-scale run.
//! Criterion microbenches for the hot components live in `benches/`.

/// True when the CLI asked for the smoke-scale variant.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The directory figure CSVs are written into (`RESULTS_DIR` overrides).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(std::env::var("RESULTS_DIR").unwrap_or_else(|_| "results".to_owned()))
}
