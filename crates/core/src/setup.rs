//! Calibrated cluster builders: the paper's testbed, scaled.
//!
//! The paper loads 100 M × 1 KB records (stress) and 1 B × 1 B records
//! (micro) onto 15 machines with 32 GB RAM each. We scale record counts
//! down by a factor recorded in [`Scale`] and shrink per-node cache capacity
//! by the same factor, so the *cache-hit regime* — the property that decides
//! whether a read costs 8 ms of disk or microseconds of RAM, i.e. the
//! paper's "fit-in-memory problem" — is preserved. Values are 100 B instead
//! of 1 KB: on the simulated HDD the per-record transfer time is seek-
//! dominated either way, and the smaller footprint keeps host memory sane.

use cstore::{CStoreConfig, Consistency, Partitioner};
use hstore::HStoreConfig;
use storage::compaction::SizeTieredPolicy;
use storage::{Key, LsmConfig};
use ycsb::balanced_tokens;

/// Which store an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// The HBase analog.
    HStore,
    /// The Cassandra analog.
    CStore,
}

impl StoreKind {
    /// Display label ("HBase"-side vs "Cassandra"-side analog).
    pub fn label(self) -> &'static str {
        match self {
            StoreKind::HStore => "hstore (HBase analog)",
            StoreKind::CStore => "cstore (Cassandra analog)",
        }
    }

    /// Short name for file paths and table cells.
    pub fn short(self) -> &'static str {
        match self {
            StoreKind::HStore => "hstore",
            StoreKind::CStore => "cstore",
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short())
    }
}

/// One experiment scale: record count, record size, and the per-node
/// storage budgets that keep cache-hit regimes in the paper's range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Records preloaded before the measured run.
    pub records: u64,
    /// Value bytes per record.
    pub value_len: usize,
    /// Per-node block-cache bytes.
    pub node_cache_bytes: u64,
    /// Memtable/memstore flush threshold.
    pub memtable_flush_bytes: u64,
    /// SSTable/HFile block size (the disk-I/O unit).
    pub block_size: u64,
    /// Cluster size (the paper: 15 servers).
    pub nodes: usize,
}

impl Scale {
    /// The stress-benchmark scale: the paper's 100 M × 1 KB records scaled
    /// by 500× to 200 k records; per-node cache scaled like the paper's
    /// *block cache plus OS page cache* (≈20 of 32 GB), which held all of a
    /// node's data at RF ≤ 2 and a shrinking fraction as RF grows — the
    /// regime in which HBase stays flat and Cassandra's replica traffic
    /// starts paying for disk.
    pub fn stress() -> Self {
        Self {
            records: 200_000,
            value_len: 100,
            node_cache_bytes: 6 * 1024 * 1024,
            memtable_flush_bytes: 256 * 1024,
            // ~9 rows per block: the same rows-per-cache-unit ratio as the
            // paper's 1 KB rows in 4 KB OS pages.
            block_size: 1024,
            nodes: 15,
        }
    }

    /// The micro-benchmark scale: the paper's 1 B × 1 B records scaled to
    /// 400 k tiny records with a deliberately small cache, so reads are
    /// disk-bound (the paper sizes micro data to force "disk access on the
    /// whole cluster evenly").
    pub fn micro() -> Self {
        Self {
            records: 400_000,
            value_len: 1,
            node_cache_bytes: 448 * 1024,
            memtable_flush_bytes: 256 * 1024,
            block_size: 8 * 1024,
            nodes: 15,
        }
    }

    /// A miniature scale for tests and the quickstart example.
    pub fn tiny() -> Self {
        Self {
            records: 2_000,
            value_len: 32,
            node_cache_bytes: 64 * 1024,
            memtable_flush_bytes: 32 * 1024,
            block_size: 2 * 1024,
            nodes: 5,
        }
    }

    pub(crate) fn lsm(&self) -> LsmConfig {
        LsmConfig {
            block_size: self.block_size,
            memtable_flush_bytes: self.memtable_flush_bytes,
            cache_bytes: self.node_cache_bytes,
            compaction: SizeTieredPolicy::default(),
        }
    }

    /// Evenly spaced ordered-partitioner tokens over the (hashed) key
    /// space (one per node).
    pub fn tokens(&self) -> Vec<Key> {
        balanced_tokens(self.nodes)
    }

    /// Region split keys (one region per node, aligned with the tokens so
    /// the two stores shard identically).
    pub fn region_splits(&self) -> Vec<Key> {
        self.tokens().into_iter().skip(1).collect()
    }
}

/// Build a Cassandra-analog cluster at this scale with the given RF and
/// consistency levels.
pub fn build_cstore(
    scale: &Scale,
    rf: u32,
    read_cl: Consistency,
    write_cl: Consistency,
) -> cstore::Cluster {
    let mut cfg = CStoreConfig::paper_testbed(rf, Partitioner::order_preserving(scale.tokens()));
    cfg.nodes = scale.nodes;
    cfg.topology = simkit::Topology::single_rack(scale.nodes, cfg.profile.nic.prop_us);
    cfg.lsm = scale.lsm();
    cfg.read_cl = read_cl;
    cfg.write_cl = write_cl;
    cstore::Cluster::new(cfg)
}

/// Build a Cassandra-analog cluster with a configuration hook applied
/// before construction (ablations: read-repair chance, commit-log mode…).
pub fn build_cstore_with(
    scale: &Scale,
    rf: u32,
    read_cl: Consistency,
    write_cl: Consistency,
    tweak: impl FnOnce(&mut CStoreConfig),
) -> cstore::Cluster {
    let mut cfg = CStoreConfig::paper_testbed(rf, Partitioner::order_preserving(scale.tokens()));
    cfg.nodes = scale.nodes;
    cfg.topology = simkit::Topology::single_rack(scale.nodes, cfg.profile.nic.prop_us);
    cfg.lsm = scale.lsm();
    cfg.read_cl = read_cl;
    cfg.write_cl = write_cl;
    tweak(&mut cfg);
    cstore::Cluster::new(cfg)
}

/// Build an HBase-analog cluster at this scale with the given HDFS
/// replication factor.
pub fn build_hstore(scale: &Scale, rf: u32) -> hstore::Cluster {
    let mut cfg = HStoreConfig::paper_testbed(rf, scale.region_splits());
    cfg.nodes = scale.nodes;
    cfg.topology = simkit::Topology::single_rack(scale.nodes, cfg.profile.nic.prop_us);
    cfg.lsm = scale.lsm();
    hstore::Cluster::new(cfg, 0xB0A7 ^ u64::from(rf))
}

/// Build an HBase-analog cluster with a configuration hook applied before
/// construction (failure experiments: RPC timeout, failover delay…).
pub fn build_hstore_with(
    scale: &Scale,
    rf: u32,
    tweak: impl FnOnce(&mut HStoreConfig),
) -> hstore::Cluster {
    let mut cfg = HStoreConfig::paper_testbed(rf, scale.region_splits());
    cfg.nodes = scale.nodes;
    cfg.topology = simkit::Topology::single_rack(scale.nodes, cfg.profile.nic.prop_us);
    cfg.lsm = scale.lsm();
    tweak(&mut cfg);
    hstore::Cluster::new(cfg, 0xB0A7 ^ u64::from(rf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_sorted_and_one_per_node() {
        let s = Scale::stress();
        let t = s.tokens();
        assert_eq!(t.len(), 15);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.region_splits().len(), 14);
    }

    #[test]
    fn builders_produce_matching_shards() {
        let s = Scale::tiny();
        let c = build_cstore(&s, 3, Consistency::One, Consistency::One);
        let h = build_hstore(&s, 3);
        assert_eq!(c.len(), s.nodes);
        assert_eq!(h.regions().len(), s.nodes);
        // Any key routes to the same shard index in both stores.
        for id in [0u64, 7, 99] {
            let key = ycsb::encode_key(id);
            assert_eq!(c.ring().primary(&key), h.regions().region_of(&key));
        }
    }

    #[test]
    fn scales_are_ordered_sanely() {
        assert!(Scale::tiny().records < Scale::stress().records);
        assert!(Scale::micro().value_len < Scale::stress().value_len);
    }
}
