//! # bench-core — the paper's benchmarking methodology as a library
//!
//! This crate is the reproduction of the paper's *contribution*: the
//! methodology of §3 ("Benchmarking Replication and Consistency") and the
//! experiments of §4, runnable against the simulated stores.
//!
//! * [`store`] — the [`store::SimStore`] abstraction over the two database
//!   analogs plus the driver-facing event wrapper.
//! * [`driver`] — the closed-loop YCSB client: thread pacing, target
//!   throughput, warm-up separation, RMW composition, latency histograms,
//!   and stale-read measurement.
//! * [`setup`] — calibrated cluster builders: the paper's testbed scaled
//!   down by a documented factor (record counts and cache sizes shrink
//!   together so cache-hit regimes are preserved).
//! * [`micro`] — Fig. 1: per-operation latency vs replication factor at an
//!   unsaturated load, both stores.
//! * [`stress`] — Fig. 2: peak runtime throughput and latency vs
//!   replication factor for the five Table 1 workloads, both stores.
//! * [`consistency`] — Fig. 3: runtime vs target throughput under ONE /
//!   QUORUM / write-ALL, Cassandra analog at RF=3.
//! * [`failure`] — Fig. 4: the failure timeline — a declarative fault
//!   plan crashes a node mid-run and per-window metrics trace the
//!   throughput dip, error spike, and recovery for every (store, RF,
//!   consistency) combination.
//! * [`resilience`] — the client-side resilience policy: bounded retries
//!   with jittered exponential backoff, per-operation deadline budgets, and
//!   hedged reads — pure decision logic the driver schedules through the
//!   simulation event queue, so resilient runs stay deterministic.
//! * [`geo_experiment`] — Fig. 7: the geo-replication PACELC sweep —
//!   region count × consistency level over multi-datacenter topologies;
//!   the Cassandra analog runs NetworkTopology placement with the
//!   DC-aware levels, the HBase analog runs async WAL shipping, and the
//!   output traces latency vs staleness as WAN links enter the quorum.
//! * [`availability`] — Fig. 5: availability under failure — the Fig. 4
//!   crash/recover plan rerun under each retry policy, tracing goodput
//!   (first-try vs retried successes), error rate, and attempts per op.
//! * [`decomposition`] — Fig. 6: latency decomposition — every op traced
//!   through the span tracer, its critical path extracted, and virtual
//!   time attributed to pipeline stages, so each (store, RF, CL) cell
//!   shows exactly where the time goes (HBase: in-memory WAL ack, flat in
//!   RF; Cassandra: quorum wait growing with RF and CL).
//! * [`overload`] — Fig. 10: graceful degradation under overload — an
//!   open-loop offered-load sweep across the capacity knee, with and
//!   without server-side admission control, tracing goodput, shed rate,
//!   per-tenant p99, and SLA attainment per load step.
//! * [`audit_experiment`] — Fig. 8: client-centric consistency auditing —
//!   every client's operation history recorded through the zero-cost audit
//!   hook, then replayed through the session-guarantee checkers, the
//!   (Δ,p)-staleness curves, and a bounded linearizability check, per
//!   fault phase of the Fig. 4 crash plan.
//! * [`ablation`] — beyond-paper experiments: read repair on/off,
//!   commit-log durability modes, node failure/failover.
//! * [`perf`] — engine-speed measurement (`BENCH_009.json`): queue-churn
//!   hold-model benchmarks of the calendar queue against the reference
//!   heap, LSM storage microbenches (hot/cold gets, flush cycles, the
//!   streaming compaction merge), timed whole-driver runs on either
//!   backend, and peak-RSS capture, feeding the CI events/sec and
//!   ops/sec regression gates.
//! * [`sla`] — the paper's §6 future work: SLA-based stress specification
//!   (bisection search for the highest throughput meeting a latency SLA).
//! * [`sweep`] — the shared experiment engine every module above runs on:
//!   deterministic per-cell seed derivation, a self-scheduling parallel
//!   executor, ordered result collection with wall-time telemetry, and
//!   load-once base-state pools handing out copy-on-write store snapshots.
//! * [`report`] — text tables, ASCII charts, and CSV emission.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod audit_experiment;
pub mod availability;
pub mod consistency;
pub mod decomposition;
pub mod driver;
pub mod failure;
pub mod geo_experiment;
pub mod micro;
pub mod overload;
pub mod perf;
pub mod report;
pub mod resilience;
pub mod setup;
pub mod sla;
pub mod store;
pub mod stress;
pub mod sweep;

pub use audit_experiment::{AuditCell, AuditExperimentConfig, AuditResult, PhaseAudit};
pub use availability::{AvailabilityConfig, AvailabilityResult};
pub use decomposition::{DecompositionConfig, DecompositionResult};
pub use driver::{ArrivalMode, DriverConfig, RunOutcome};
pub use failure::{FailureConfig, FailureResult};
pub use geo_experiment::{GeoExperimentConfig, GeoResult};
pub use overload::{OverloadConfig, OverloadResult};
pub use report::{AsciiChart, Table};
pub use resilience::{GiveUpReason, RetryDecision, RetryPolicy};
pub use setup::{build_cstore, build_hstore, Scale, StoreKind};
pub use store::{DriverEvent, SimStore};
pub use sweep::{BasePool, Sweep, SweepOutcome, Telemetry};
