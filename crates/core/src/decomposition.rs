//! Figure 6: latency decomposition — where does the time go?
//!
//! The paper reports *end-to-end* latencies and argues from architecture
//! why they differ: HBase acknowledges writes once the WAL append is in
//! the memory of every pipeline datanode, so write latency is flat in the
//! replication factor; Cassandra's coordinator waits for a consistency
//! quota of replica acks, so write latency grows with RF and CL. This
//! experiment *measures* that argument. Every operation is traced through
//! the span tracer ([`obs`]), its critical path extracted, and virtual
//! time attributed to pipeline stages — so each cell shows not just how
//! long an op took but exactly which stage the time went to.
//!
//! Because the simulation is deterministic and the critical path tiles
//! `[issued, settled)` by construction, the per-op stage sums equal the
//! measured client latency *exactly*, in virtual µs — checked for every
//! traced op and surfaced as [`DecompositionCell::exact`].

use obs::{critical_path, OpTrace, Stage, StageAgg, TraceConfig};
use storage::OpKind;
use ycsb::WorkloadSpec;

use crate::consistency::PAPER_LEVELS;
use crate::driver::{self, DriverConfig};
use crate::failure::HSTORE_CL;
use crate::report::{fmt_us, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore, build_hstore, Scale, StoreKind};
use crate::sweep::{BasePool, Sweep, Telemetry};
use faults::FaultPlan;

/// Configuration of the Fig. 6 experiment.
#[derive(Debug, Clone)]
pub struct DecompositionConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Replication factors to sweep.
    pub rfs: Vec<u32>,
    /// Client threads.
    pub threads: usize,
    /// Warm-up completions (excluded from the aggregation).
    pub warmup_ops: u64,
    /// Measured completions.
    pub measure_ops: u64,
    /// Trace every Nth issued op (1 = every op).
    pub sample_every: u64,
    /// Full span trees kept per cell for the JSONL exporter (the stage
    /// aggregation always covers every traced op).
    pub keep_traces: usize,
    /// The workload to decompose.
    pub workload: WorkloadSpec,
    /// Seed.
    pub seed: u64,
}

impl Default for DecompositionConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            rfs: vec![1, 3, 5],
            threads: 32,
            warmup_ops: 2_000,
            measure_ops: 20_000,
            sample_every: 1,
            keep_traces: 8,
            workload: WorkloadSpec::read_update(),
            seed: 42,
        }
    }
}

impl DecompositionConfig {
    /// A fast variant for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            rfs: vec![1, 3, 5],
            threads: 8,
            warmup_ops: 200,
            measure_ops: 2_000,
            sample_every: 1,
            keep_traces: 4,
            workload: WorkloadSpec::read_update(),
            seed: 42,
        }
    }
}

/// One (store, RF, consistency) cell: per-stage time attribution over
/// every traced op's critical path.
#[derive(Debug, Clone)]
pub struct DecompositionCell {
    /// Which store.
    pub store: StoreKind,
    /// Replication factor.
    pub rf: u32,
    /// Consistency strategy name ([`HSTORE_CL`] for the HBase analog).
    pub cl: &'static str,
    /// Per-(op kind, stage) critical-path time.
    pub agg: StageAgg,
    /// Ops whose critical path was extracted and aggregated.
    pub ops_traced: u64,
    /// Whether every traced op's critical-path stage sum equalled its
    /// measured client latency exactly (the tracing soundness invariant).
    pub exact: bool,
    /// The first [`DecompositionConfig::keep_traces`] successful op
    /// traces, kept for the JSONL exporter.
    pub sample: Vec<OpTrace>,
}

impl DecompositionCell {
    /// Mean critical-path time in `stage` for ops of `kind`, µs.
    pub fn stage_mean_us(&self, kind: OpKind, stage: Stage) -> f64 {
        self.agg.mean_us(kind, stage)
    }

    /// The stage with the largest total time for ops of `kind`.
    pub fn top_stage(&self, kind: OpKind) -> Option<(Stage, f64)> {
        Stage::ALL
            .iter()
            .filter_map(|&s| {
                let share = self.agg.share(kind, s);
                (share > 0.0).then_some((s, share))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// The full Fig. 6 result.
#[derive(Debug, Clone)]
pub struct DecompositionResult {
    /// All measured cells.
    pub cells: Vec<DecompositionCell>,
    /// Workload name (for rendering).
    pub workload: String,
    /// What the sweep cost (wall time, utilization, base loads).
    pub telemetry: Telemetry,
}

impl DecompositionResult {
    /// The cell for a specific point.
    pub fn cell(&self, store: StoreKind, rf: u32, cl: &str) -> Option<&DecompositionCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.rf == rf && c.cl == cl)
    }

    /// Render the summary table — one row per (store, RF, CL, op kind)
    /// with the mean latency and the two dominant critical-path stages.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            &format!("Fig. 6 — latency decomposition ({})", self.workload),
            &[
                "store",
                "rf",
                "cl",
                "op",
                "ops",
                "mean",
                "top stage",
                "share",
                "2nd stage",
                "share",
            ],
        );
        for c in &self.cells {
            for kind in c.agg.kinds() {
                let ops = c.agg.ops(kind);
                if ops == 0 {
                    continue;
                }
                let mean = c.agg.total_us(kind) as f64 / ops as f64;
                let mut stages: Vec<(Stage, f64)> = Stage::ALL
                    .iter()
                    .filter_map(|&s| {
                        let share = c.agg.share(kind, s);
                        (share > 0.0).then_some((s, share))
                    })
                    .collect();
                stages.sort_by(|a, b| b.1.total_cmp(&a.1));
                let fmt = |i: usize| -> (String, String) {
                    stages.get(i).map_or(("-".into(), "-".into()), |(s, sh)| {
                        (s.label().into(), format!("{:.0}%", sh * 100.0))
                    })
                };
                let (top, top_share) = fmt(0);
                let (second, second_share) = fmt(1);
                t.row(vec![
                    c.store.short().into(),
                    c.rf.to_string(),
                    c.cl.into(),
                    kind.label().into(),
                    ops.to_string(),
                    fmt_us(mean),
                    top,
                    top_share,
                    second,
                    second_share,
                ]);
            }
        }
        t.render()
    }

    /// CSV table: one row per (store, RF, CL, op kind, stage).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fig6_decomposition",
            &[
                "store", "rf", "cl", "op", "stage", "ops", "total_us", "mean_us", "share",
            ],
        );
        for c in &self.cells {
            for (kind, stage, cell) in c.agg.iter() {
                t.row(vec![
                    c.store.short().into(),
                    c.rf.to_string(),
                    c.cl.into(),
                    kind.label().into(),
                    stage.label().into(),
                    c.agg.ops(kind).to_string(),
                    cell.total_us.to_string(),
                    format!("{:.1}", c.agg.mean_us(kind, stage)),
                    format!("{:.4}", c.agg.share(kind, stage)),
                ]);
            }
        }
        t
    }

    /// The kept sample traces of one cell, assembled for JSONL export.
    pub fn sample_trace(&self, store: StoreKind, rf: u32, cl: &str) -> Option<obs::RunTrace> {
        self.cell(store, rf, cl).map(|c| obs::RunTrace {
            ops: c.sample.clone(),
            background: Vec::new(),
        })
    }
}

/// Run the full Fig. 6 experiment through the sweep engine.
pub fn run_decomposition(cfg: &DecompositionConfig) -> DecompositionResult {
    run_decomposition_with(cfg, &Sweep::from_env())
}

/// [`run_decomposition`] on a caller-configured engine.
pub fn run_decomposition_with(cfg: &DecompositionConfig, sweep: &Sweep) -> DecompositionResult {
    // One cell per (store, RF, consistency level), exactly the Fig. 4
    // grid: the HBase analog's single implicit strong level plus the
    // Cassandra analog's three paper levels.
    let specs: Vec<(StoreKind, u32, usize)> = cfg
        .rfs
        .iter()
        .flat_map(|&rf| {
            std::iter::once((StoreKind::HStore, rf, 0))
                .chain((0..PAPER_LEVELS.len()).map(move |l| (StoreKind::CStore, rf, l)))
        })
        .collect();
    let hpool: BasePool<u32, hstore::Cluster> = BasePool::new(cfg.rfs.iter().copied());
    let cpool: BasePool<(u32, usize), cstore::Cluster> = BasePool::new(
        cfg.rfs
            .iter()
            .flat_map(|&rf| (0..PAPER_LEVELS.len()).map(move |l| (rf, l))),
    );

    let outcome = sweep.run(cfg.seed, &specs, |ctx, &(store, rf, l)| {
        let dcfg = DriverConfig {
            workload: cfg.workload.clone(),
            threads: cfg.threads,
            target_ops_per_sec: 0.0,
            records: cfg.scale.records,
            value_len: cfg.scale.value_len,
            warmup_ops: cfg.warmup_ops,
            measure_ops: cfg.measure_ops,
            seed: ctx.seed,
            faults: FaultPlan::new(),
            timeline_window_us: 0,
            retry: RetryPolicy::none(),
            trace: TraceConfig::every(cfg.sample_every),
            audit: audit::AuditConfig::off(),
            arrival: crate::driver::ArrivalMode::ClosedLoop,
        };
        let (cl, out) = match store {
            StoreKind::HStore => {
                let mut snapshot = hpool
                    .get_or_load(&rf, || {
                        let mut base = build_hstore(&cfg.scale, rf);
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (HSTORE_CL, driver::run(&mut snapshot, &dcfg))
            }
            StoreKind::CStore => {
                let level = PAPER_LEVELS[l];
                let mut snapshot = cpool
                    .get_or_load(&(rf, l), || {
                        let mut base = build_cstore(&cfg.scale, rf, level.read, level.write);
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (level.name, driver::run(&mut snapshot, &dcfg))
            }
        };
        let trace = out.trace.unwrap_or_default();
        let mut agg = StageAgg::new();
        let mut exact = true;
        let mut ops_traced = 0u64;
        let mut sample = Vec::new();
        for op in &trace.ops {
            if !op.ok {
                continue;
            }
            let path = critical_path(op.issued, op.settled, &op.spans);
            let path_sum: u64 = path.iter().map(|seg| seg.len()).sum();
            exact &= path_sum == op.latency_us();
            agg.record_path(op.kind, &path);
            ops_traced += 1;
            if sample.len() < cfg.keep_traces {
                sample.push(op.clone());
            }
        }
        DecompositionCell {
            store,
            rf,
            cl,
            agg,
            ops_traced,
            exact,
            sample,
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&hpool);
    telemetry.record_pool(&cpool);
    let mut cells = outcome.results;
    cells.sort_by(|a, b| (a.store.short(), a.rf, a.cl).cmp(&(b.store.short(), b.rf, b.cl)));
    DecompositionResult {
        cells,
        workload: cfg.workload.name.clone(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> DecompositionResult {
        run_decomposition(&DecompositionConfig::quick())
    }

    #[test]
    fn quick_decomposition_produces_all_cells_exactly() {
        let res = res();
        // 3 RFs × (1 hstore level + 3 cstore levels).
        assert_eq!(res.cells.len(), 12);
        for c in &res.cells {
            assert!(c.ops_traced > 0, "{}/{}/{}", c.store, c.rf, c.cl);
            // The soundness invariant: every traced op's critical-path
            // stage sum equals its measured latency, exactly.
            assert!(
                c.exact,
                "inexact decomposition: {}/{}/{}",
                c.store, c.rf, c.cl
            );
            assert!(!c.sample.is_empty());
        }
        let rendered = res.render();
        assert!(rendered.contains("Fig. 6"));
        assert!(rendered.contains("strong"));
        // Every aggregated (kind, stage) pair becomes one CSV row.
        let entries: usize = res.cells.iter().map(|c| c.agg.iter().count()).sum();
        assert_eq!(res.table().rows.len(), entries);
    }

    #[test]
    fn hstore_write_path_is_in_memory_wal_ack_at_every_rf() {
        let res = res();
        let mut wal_commit_means = Vec::new();
        for &rf in &[1u32, 3, 5] {
            let c = res.cell(StoreKind::HStore, rf, HSTORE_CL).expect("cell");
            // The write ack is in-memory end to end: the WAL pipeline acks
            // from datanode memory, so no disk stage ever appears on the
            // write critical path, at any replication factor.
            assert_eq!(
                c.agg.share(OpKind::Update, Stage::DiskIo),
                0.0,
                "rf={rf}: disk on the write critical path"
            );
            // The WAL ack stages are always present on that path.
            let wal = c.agg.share(OpKind::Update, Stage::WalQueue)
                + c.agg.share(OpKind::Update, Stage::WalCommit);
            assert!(wal > 0.0, "rf={rf}: no WAL time on the write path");
            wal_commit_means.push(c.stage_mean_us(OpKind::Update, Stage::WalCommit));
        }
        // What does grow with RF is exactly the pipeline commit (one more
        // serial in-memory hop per extra replica) — nothing else.
        assert!(wal_commit_means[0] < wal_commit_means[1]);
        assert!(wal_commit_means[1] < wal_commit_means[2]);
    }

    #[test]
    fn hstore_writes_flatter_in_rf_than_cstore_write_all() {
        let res = res();
        // The paper's architectural contrast, measured: replication makes
        // the HBase analog's writes only mildly slower (serial in-memory
        // pipeline hops), while the Cassandra analog's write-ALL quorum
        // wait — waiting on the slowest of RF replica round trips — grows
        // much faster.
        let mean = |store, cl: &str, rf| {
            let c = res.cell(store, rf, cl).expect("cell");
            c.agg.total_us(OpKind::Update) as f64 / c.agg.ops(OpKind::Update) as f64
        };
        let h_growth =
            mean(StoreKind::HStore, HSTORE_CL, 5) / mean(StoreKind::HStore, HSTORE_CL, 1);
        let qw = |rf| {
            res.cell(StoreKind::CStore, rf, "write ALL")
                .expect("cell")
                .stage_mean_us(OpKind::Update, Stage::QuorumWait)
        };
        let c_growth = qw(5) / qw(1);
        assert!(
            h_growth < c_growth,
            "hstore write growth {h_growth:.2}x should undercut write-ALL quorum growth {c_growth:.2}x"
        );
    }

    #[test]
    fn cstore_quorum_wait_grows_with_rf_and_cl() {
        let res = res();
        let qw = |rf: u32, cl: &str| -> f64 {
            res.cell(StoreKind::CStore, rf, cl)
                .expect("cell")
                .stage_mean_us(OpKind::Update, Stage::QuorumWait)
        };
        // More required acks at fixed RF: ONE ≤ QUORUM ≤ ALL (strict at
        // the endpoints).
        assert!(qw(3, "ONE") < qw(3, "write ALL"));
        assert!(qw(3, "ONE") <= qw(3, "QUORUM"));
        assert!(qw(3, "QUORUM") <= qw(3, "write ALL"));
        // Waiting for all of more replicas takes longer: RF 1 < 3 ≤ 5.
        assert!(qw(1, "write ALL") < qw(3, "write ALL"));
        assert!(qw(3, "write ALL") <= qw(5, "write ALL"));
    }

    #[test]
    fn sample_traces_export_deterministically() {
        let res = res();
        let trace = res
            .sample_trace(StoreKind::CStore, 3, "QUORUM")
            .expect("cell");
        let jsonl = trace.to_jsonl();
        assert!(jsonl.contains("\"spans\""));
        assert!(jsonl.contains("quorum_wait"));
        let again = run_decomposition(&DecompositionConfig::quick());
        let jsonl2 = again
            .sample_trace(StoreKind::CStore, 3, "QUORUM")
            .expect("cell")
            .to_jsonl();
        assert_eq!(jsonl, jsonl2, "same seed must export identical traces");
    }
}
