//! Figure 8: client-centric consistency auditing under the crash plan.
//!
//! The paper measures consistency server-side (stale fractions against
//! acked-write watermarks); this experiment asks the client's version of
//! the question. Every operation of every client is recorded as an
//! invocation/response interval ([`audit::History`]), the Fig. 4
//! crash/recover plan runs underneath, and the recorded histories are
//! replayed through the pure checkers in `crates/audit`:
//!
//! * session guarantees (read-your-writes, monotonic reads, monotonic
//!   writes, writes-follow-reads) per fault phase — healthy before the
//!   crash, crash while the victim is down, recovery after it returns
//!   (hinted handoff replays while CL=ONE reads already hit the stale
//!   returnee, which is where the violations concentrate);
//! * PBS-style (Δ,p)-staleness — the empirical probability that a read
//!   issued Δ after a write's ack returns it, with margin quantiles;
//! * a budget-capped Wing&Gong linearizability check on the hottest keys.
//!
//! The driver's own staleness tracker runs concurrently over the same
//! ops, and every cell cross-checks the two views: replaying the history
//! must reproduce `RunMetrics::staleness()` exactly — the recorded
//! history provably carries the information the live tracker saw.

use audit::{check_key, check_sessions, key_ops, staleness, PhaseWindow, SessionCounts, Verdict};
use faults::FaultPlan;
use simkit::NodeId;
use ycsb::WorkloadSpec;

use crate::consistency::PAPER_LEVELS;
use crate::driver::{self, DriverConfig};
use crate::failure::HSTORE_CL;
use crate::report::Table;
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore_with, build_hstore_with, Scale, StoreKind};
use crate::sweep::{BasePool, Sweep, Telemetry};

/// The version timestamp the driver's preload assigns every record —
/// the register's initial state for the linearizability checker.
const PRELOAD_TS: u64 = 1;

/// Configuration of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct AuditExperimentConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Replication factors to sweep.
    pub rfs: Vec<u32>,
    /// Client threads.
    pub threads: usize,
    /// Cluster-wide target throughput (constant-rate, like Fig. 4).
    pub target_ops_per_sec: f64,
    /// Warm-up completions.
    pub warmup_ops: u64,
    /// Measured completions.
    pub measure_ops: u64,
    /// Virtual time at which the victim crashes, µs from sim start.
    pub crash_at_us: u64,
    /// Virtual time at which the victim comes back, µs from sim start.
    pub recover_at_us: u64,
    /// Client RPC timeout applied to both stores.
    pub rpc_timeout_us: u64,
    /// HBase-analog failure-detection window before region failover.
    pub failover_delay_us: u64,
    /// The node that crashes.
    pub victim: NodeId,
    /// The workload under which the failure happens.
    pub workload: WorkloadSpec,
    /// Seed.
    pub seed: u64,
    /// The Δ grid (µs) for the (Δ,p)-staleness columns.
    pub deltas_us: Vec<u64>,
    /// How many of the hottest keys get the linearizability check.
    pub lin_keys: usize,
    /// Search-node budget per checked key.
    pub lin_budget: u64,
}

impl Default for AuditExperimentConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            rfs: vec![1, 3, 5],
            threads: 48,
            target_ops_per_sec: 3_000.0,
            warmup_ops: 2_000,
            measure_ops: 40_000,
            crash_at_us: 4_000_000,
            recover_at_us: 9_000_000,
            rpc_timeout_us: 250_000,
            failover_delay_us: 2_000_000,
            victim: NodeId(0),
            workload: WorkloadSpec::read_update(),
            seed: 42,
            deltas_us: vec![0, 1_000, 10_000, 100_000, 1_000_000],
            lin_keys: 8,
            lin_budget: 500_000,
        }
    }
}

impl AuditExperimentConfig {
    /// A fast variant for tests and smoke runs — the Fig. 4 quick plan.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            rfs: vec![1, 3, 5],
            threads: 8,
            target_ops_per_sec: 2_000.0,
            warmup_ops: 400,
            measure_ops: 5_600,
            crash_at_us: 900_000,
            recover_at_us: 1_800_000,
            rpc_timeout_us: 120_000,
            failover_delay_us: 300_000,
            victim: NodeId(0),
            workload: WorkloadSpec::read_update(),
            seed: 42,
            deltas_us: vec![0, 1_000, 10_000, 100_000, 1_000_000],
            lin_keys: 4,
            lin_budget: 200_000,
        }
    }

    /// The three fault-phase windows of the plan, in run order.
    pub fn phases(&self) -> Vec<PhaseWindow> {
        vec![
            PhaseWindow {
                label: "healthy",
                start_us: 0,
                end_us: self.crash_at_us,
            },
            PhaseWindow {
                label: "crash",
                start_us: self.crash_at_us,
                end_us: self.recover_at_us,
            },
            PhaseWindow {
                label: "recovery",
                start_us: self.recover_at_us,
                end_us: u64::MAX,
            },
        ]
    }
}

/// One fault phase of one cell: session-guarantee counts plus the
/// (Δ,p)-staleness summary of the phase's reads.
#[derive(Debug, Clone)]
pub struct PhaseAudit {
    /// Phase label ("healthy", "crash", "recovery").
    pub phase: &'static str,
    /// Session-guarantee accounting for the phase.
    pub counts: SessionCounts,
    /// Staleness-margin quantiles (µs): p50, p95, p99, max.
    pub margin_p50_us: u64,
    /// 95th-percentile staleness margin, µs.
    pub margin_p95_us: u64,
    /// 99th-percentile staleness margin, µs.
    pub margin_p99_us: u64,
    /// Worst staleness margin, µs.
    pub margin_max_us: u64,
    /// The (Δ, p) curve on the configured grid: fraction of the phase's
    /// reads with staleness margin ≤ Δ. Monotone non-decreasing in Δ.
    pub curve: Vec<(u64, f64)>,
}

/// One (store, RF, consistency) audit cell.
#[derive(Debug, Clone)]
pub struct AuditCell {
    /// Which store.
    pub store: StoreKind,
    /// Replication factor.
    pub rf: u32,
    /// Consistency strategy name ([`HSTORE_CL`] for the HBase analog).
    pub cl: &'static str,
    /// Per-phase audits, in plan order (healthy, crash, recovery).
    pub phases: Vec<PhaseAudit>,
    /// Linearizability verdict over the checked keys: `yes` only when
    /// every key linearizes; `violation` as soon as one key cannot.
    pub linearizable: Verdict,
    /// Hot keys the linearizability checker examined.
    pub lin_keys_checked: usize,
    /// The live tracker's `(stale, checked)` over the measured window.
    pub tracker_stale: u64,
    /// Reads the live tracker checked in the measured window.
    pub tracker_checked: u64,
    /// The live tracker's missing-read count (lost writes).
    pub tracker_missing: u64,
    /// Fault events the injector applied (crash + recover = 2).
    pub faults_injected: u64,
}

impl AuditCell {
    /// The phase audit with the given label, if present.
    pub fn phase(&self, label: &str) -> Option<&PhaseAudit> {
        self.phases.iter().find(|p| p.phase == label)
    }
}

/// The full Fig. 8 result.
#[derive(Debug, Clone)]
pub struct AuditResult {
    /// All measured cells.
    pub cells: Vec<AuditCell>,
    /// Crash time, µs (for rendering).
    pub crash_at_us: u64,
    /// Recovery time, µs (for rendering).
    pub recover_at_us: u64,
    /// The Δ grid the curves were evaluated on.
    pub deltas_us: Vec<u64>,
    /// Workload name (for rendering).
    pub workload: String,
    /// What the sweep cost (wall time, utilization, base loads).
    pub telemetry: Telemetry,
}

impl AuditResult {
    /// The cell for a specific point.
    pub fn cell(&self, store: StoreKind, rf: u32, cl: &str) -> Option<&AuditCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.rf == rf && c.cl == cl)
    }

    /// Render the summary table: one row per cell with the crash- and
    /// recovery-phase session-violation rates and the linearizability
    /// verdict.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            &format!(
                "Fig. 8 — consistency audit: crash t={:.1}s, recover t={:.1}s ({})",
                self.crash_at_us as f64 / 1e6,
                self.recover_at_us as f64 / 1e6,
                self.workload,
            ),
            &[
                "store",
                "rf",
                "cl",
                "stale%",
                "ryw viol (h/c/r)",
                "mr viol (h/c/r)",
                "margin p99 (r)",
                "linearizable",
            ],
        );
        for c in &self.cells {
            let reads: u64 = c.phases.iter().map(|p| p.counts.reads).sum();
            let stale: u64 = c.phases.iter().map(|p| p.counts.stale).sum();
            let tri = |f: &dyn Fn(&PhaseAudit) -> u64| {
                c.phases
                    .iter()
                    .map(|p| f(p).to_string())
                    .collect::<Vec<_>>()
                    .join("/")
            };
            t.row(vec![
                c.store.short().into(),
                c.rf.to_string(),
                c.cl.into(),
                if reads == 0 {
                    "-".into()
                } else {
                    format!("{:.2}%", stale as f64 / reads as f64 * 100.0)
                },
                tri(&|p| p.counts.ryw_violations),
                tri(&|p| p.counts.mr_violations),
                c.phases
                    .last()
                    .map_or("-".into(), |p| format!("{}µs", p.margin_p99_us)),
                c.linearizable.label().into(),
            ]);
        }
        t.render()
    }

    /// CSV table: one row per (cell, phase).
    pub fn table(&self) -> Table {
        let mut headers = vec![
            "store",
            "rf",
            "cl",
            "phase",
            "reads",
            "writes",
            "stale",
            "missing",
            "stale_rate",
            "ryw_checked",
            "ryw_violations",
            "ryw_rate",
            "mr_checked",
            "mr_violations",
            "mr_rate",
            "mw_violations",
            "wfr_violations",
            "margin_p50_us",
            "margin_p95_us",
            "margin_p99_us",
            "margin_max_us",
        ];
        let deltas: Vec<String> = self
            .deltas_us
            .iter()
            .map(|d| format!("p_le_{d}us"))
            .collect();
        headers.extend(deltas.iter().map(String::as_str));
        headers.push("linearizable");
        let mut t = Table::new("fig8_audit", &headers);
        for c in &self.cells {
            for p in &c.phases {
                let mut row = vec![
                    c.store.short().to_owned(),
                    c.rf.to_string(),
                    c.cl.into(),
                    p.phase.into(),
                    p.counts.reads.to_string(),
                    p.counts.writes.to_string(),
                    p.counts.stale.to_string(),
                    p.counts.missing.to_string(),
                    format!("{:.5}", p.counts.stale_rate()),
                    p.counts.ryw_checked.to_string(),
                    p.counts.ryw_violations.to_string(),
                    format!("{:.5}", p.counts.ryw_rate()),
                    p.counts.mr_checked.to_string(),
                    p.counts.mr_violations.to_string(),
                    format!("{:.5}", p.counts.mr_rate()),
                    p.counts.mw_violations.to_string(),
                    p.counts.wfr_violations.to_string(),
                    p.margin_p50_us.to_string(),
                    p.margin_p95_us.to_string(),
                    p.margin_p99_us.to_string(),
                    p.margin_max_us.to_string(),
                ];
                row.extend(p.curve.iter().map(|&(_, pr)| format!("{pr:.5}")));
                row.push(c.linearizable.label().into());
                t.row(row);
            }
        }
        t
    }
}

/// Audit one run's recorded history into per-phase summaries plus the
/// linearizability verdict. Pure over the history.
fn audit_history(
    history: &audit::History,
    phases: &[PhaseWindow],
    deltas_us: &[u64],
    lin_keys: usize,
    lin_budget: u64,
) -> (Vec<PhaseAudit>, Verdict, usize) {
    let counts = check_sessions(history, phases);
    let margins = staleness::margins(history, phases);
    let audits: Vec<PhaseAudit> = phases
        .iter()
        .zip(counts)
        .zip(&margins)
        .map(|((w, counts), m)| PhaseAudit {
            phase: w.label,
            counts,
            margin_p50_us: staleness::quantile(m, 0.50),
            margin_p95_us: staleness::quantile(m, 0.95),
            margin_p99_us: staleness::quantile(m, 0.99),
            margin_max_us: m.iter().copied().max().unwrap_or(0),
            curve: staleness::curve(m, deltas_us),
        })
        .collect();
    let keys: Vec<_> = history
        .keys_by_activity()
        .into_iter()
        .take(lin_keys)
        .collect();
    let mut verdict = Verdict::Linearizable;
    for key in &keys {
        let v = match key_ops(history, key) {
            Some(ops) => check_key(&ops, Some(PRELOAD_TS), lin_budget),
            None => Verdict::Inconclusive,
        };
        match v {
            Verdict::Violation => {
                verdict = Verdict::Violation;
                break;
            }
            Verdict::Inconclusive => verdict = Verdict::Inconclusive,
            Verdict::Linearizable => {}
        }
    }
    (audits, verdict, keys.len())
}

/// Run the full Fig. 8 experiment through the sweep engine.
pub fn run_audit(cfg: &AuditExperimentConfig) -> AuditResult {
    run_audit_with(cfg, &Sweep::from_env())
}

/// [`run_audit`] on a caller-configured engine.
pub fn run_audit_with(cfg: &AuditExperimentConfig, sweep: &Sweep) -> AuditResult {
    // One cell per (store, RF, consistency level), exactly the Fig. 4
    // grid: the HBase analog's single implicit level plus the paper's
    // three Cassandra levels.
    let specs: Vec<(StoreKind, u32, usize)> = cfg
        .rfs
        .iter()
        .flat_map(|&rf| {
            std::iter::once((StoreKind::HStore, rf, 0))
                .chain((0..PAPER_LEVELS.len()).map(move |l| (StoreKind::CStore, rf, l)))
        })
        .collect();
    let hpool: BasePool<u32, hstore::Cluster> = BasePool::new(cfg.rfs.iter().copied());
    let cpool: BasePool<(u32, usize), cstore::Cluster> = BasePool::new(
        cfg.rfs
            .iter()
            .flat_map(|&rf| (0..PAPER_LEVELS.len()).map(move |l| (rf, l))),
    );
    let phases = cfg.phases();

    let outcome = sweep.run(cfg.seed, &specs, |ctx, &(store, rf, l)| {
        let dcfg = DriverConfig {
            workload: cfg.workload.clone(),
            threads: cfg.threads,
            target_ops_per_sec: cfg.target_ops_per_sec,
            records: cfg.scale.records,
            value_len: cfg.scale.value_len,
            warmup_ops: cfg.warmup_ops,
            measure_ops: cfg.measure_ops,
            seed: ctx.seed,
            faults: FaultPlan::new().crash_window(cfg.victim, cfg.crash_at_us, cfg.recover_at_us),
            timeline_window_us: 0,
            // The paper's fair-weather client, like Fig. 4: what the
            // client *sees* without resilience machinery in the way.
            retry: RetryPolicy::none(),
            trace: obs::TraceConfig::off(),
            audit: audit::AuditConfig::all(),
            arrival: crate::driver::ArrivalMode::ClosedLoop,
        };
        let (cl, out) = match store {
            StoreKind::HStore => {
                let mut snapshot = hpool
                    .get_or_load(&rf, || {
                        let mut base = build_hstore_with(&cfg.scale, rf, |c| {
                            c.rpc_timeout_us = cfg.rpc_timeout_us;
                            c.failover_delay_us = cfg.failover_delay_us;
                        });
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (HSTORE_CL, driver::run(&mut snapshot, &dcfg))
            }
            StoreKind::CStore => {
                let level = PAPER_LEVELS[l];
                let mut snapshot = cpool
                    .get_or_load(&(rf, l), || {
                        let mut base =
                            build_cstore_with(&cfg.scale, rf, level.read, level.write, |c| {
                                c.rpc_timeout_us = cfg.rpc_timeout_us;
                            });
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (level.name, driver::run(&mut snapshot, &dcfg))
            }
        };
        let history = out.audit.clone().unwrap_or_default();
        // Cross-check invariant: replaying the recorded history must
        // reproduce the live tracker's accounting exactly. A mismatch
        // means the history is missing operations the tracker saw.
        let replay = history.stale_counts();
        let (tracker_stale, tracker_checked) = out.metrics.staleness();
        assert_eq!(
            (replay.stale, replay.checked, replay.missing),
            (tracker_stale, tracker_checked, out.metrics.missing_reads()),
            "audit history disagrees with the staleness tracker: {}/{rf}/{cl}",
            store.short()
        );
        let (phase_audits, linearizable, lin_keys_checked) = audit_history(
            &history,
            &phases,
            &cfg.deltas_us,
            cfg.lin_keys,
            cfg.lin_budget,
        );
        AuditCell {
            store,
            rf,
            cl,
            phases: phase_audits,
            linearizable,
            lin_keys_checked,
            tracker_stale,
            tracker_checked,
            tracker_missing: out.metrics.missing_reads(),
            faults_injected: out.faults_injected,
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&hpool);
    telemetry.record_pool(&cpool);
    let mut cells = outcome.results;
    cells.sort_by(|a, b| (a.store.short(), a.rf, a.cl).cmp(&(b.store.short(), b.rf, b.cl)));
    AuditResult {
        cells,
        crash_at_us: cfg.crash_at_us,
        recover_at_us: cfg.recover_at_us,
        deltas_us: cfg.deltas_us.clone(),
        workload: cfg.workload.name.clone(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_audit_matches_the_acceptance_shape() {
        let cfg = AuditExperimentConfig::quick();
        let res = run_audit(&cfg);
        // 3 RFs × (1 hstore level + 3 cstore levels).
        assert_eq!(res.cells.len(), 12);
        for c in &res.cells {
            assert_eq!(
                c.faults_injected,
                2,
                "{}/{}/{}",
                c.store.short(),
                c.rf,
                c.cl
            );
            assert_eq!(c.phases.len(), 3);
            // The (Δ,p) curve is monotone non-decreasing in Δ, everywhere.
            for p in &c.phases {
                for w in p.curve.windows(2) {
                    assert!(
                        w[1].1 >= w[0].1,
                        "curve not monotone: {}/{}/{} {}",
                        c.store.short(),
                        c.rf,
                        c.cl,
                        p.phase
                    );
                }
            }
            // Quorum overlap and the HBase analog's single-master reads
            // never violate a session guarantee, in any phase.
            if c.cl == "QUORUM" || c.cl == HSTORE_CL {
                assert_eq!(c.tracker_stale, 0, "{}/{}/{}", c.store.short(), c.rf, c.cl);
                for p in &c.phases {
                    assert_eq!(
                        p.counts.total_violations(),
                        0,
                        "{}/{}/{} {}",
                        c.store.short(),
                        c.rf,
                        c.cl,
                        p.phase
                    );
                }
            }
        }
        // The client-visible cost of CL=ONE: session guarantees break
        // around the crash. RF=3 rides through the outage on live
        // replicas, then reads the stale returnee before hints replay.
        let one = res.cell(StoreKind::CStore, 3, "ONE").expect("cell exists");
        let crash_ryw: u64 = one
            .phases
            .iter()
            .filter(|p| p.phase != "healthy")
            .map(|p| p.counts.ryw_violations)
            .sum();
        let crash_mr: u64 = one
            .phases
            .iter()
            .filter(|p| p.phase != "healthy")
            .map(|p| p.counts.mr_violations)
            .sum();
        assert!(crash_ryw > 0, "ONE must break read-your-writes: {one:?}");
        assert!(crash_mr > 0, "ONE must break monotonic reads: {one:?}");
        // Strong (HBase analog) runs linearize; some ONE-under-crash run
        // does not.
        for rf in [1, 3, 5] {
            let h = res.cell(StoreKind::HStore, rf, HSTORE_CL).expect("hstore");
            assert_eq!(h.linearizable, Verdict::Linearizable, "rf={rf}");
            assert!(h.lin_keys_checked > 0);
        }
        assert!(
            res.cells
                .iter()
                .any(|c| c.cl == "ONE" && c.linearizable == Verdict::Violation),
            "some CL=ONE cell must catch a linearizability violation"
        );
        // Rendering smoke.
        assert!(res.render().contains("Fig. 8"));
        let rows = res.table().rows.len();
        assert_eq!(rows, 12 * 3);
    }
}
