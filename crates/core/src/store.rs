//! The driver-facing store abstraction.
//!
//! Both database analogs expose the same asynchronous submit/handle/drain
//! surface; [`SimStore`] unifies them so the YCSB driver, the experiments,
//! and the examples are written once.

use simkit::Sim;
use storage::{Completion, Key, StoreOp, Value};

/// The event payload the driver runs its simulation over: client-side
/// wake-ups interleaved with the store's internal events.
#[derive(Debug, Clone)]
pub enum DriverEvent<E> {
    /// A client thread is due to issue its next operation.
    Issue {
        /// The client thread.
        thread: usize,
    },
    /// An internal store event.
    Store(E),
}

impl<E> From<E> for DriverEvent<E> {
    fn from(e: E) -> Self {
        DriverEvent::Store(e)
    }
}

/// A simulated cloud serving database, as the benchmark driver sees it.
pub trait SimStore {
    /// The store's internal event type.
    type Event;

    /// Short display name (`"hstore"` / `"cstore"`).
    fn name(&self) -> &'static str;

    /// Submit a client operation; its completion surfaces via
    /// [`SimStore::drain_completions`] at the virtual time the response
    /// reaches the client.
    fn submit(&mut self, sim: &mut Sim<DriverEvent<Self::Event>>, token: u64, op: StoreOp);

    /// Dispatch one internal event.
    fn handle(&mut self, sim: &mut Sim<DriverEvent<Self::Event>>, ev: Self::Event);

    /// Take completions produced since the last drain.
    fn drain_completions(&mut self) -> Vec<Completion>;

    /// Bulk-load one record functionally (no virtual time).
    fn load_direct(&mut self, key: Key, value: Value, ts: u64);

    /// Flush memtables/memstores to sorted runs functionally.
    fn flush_all(&mut self);

    /// Warm block caches to steady state (post-load, pre-measurement).
    fn warm_caches(&mut self);

    /// Behaviour counters for reports: `(label, value)` pairs.
    fn counters(&self) -> Vec<(&'static str, u64)>;
}

impl SimStore for cstore::Cluster {
    type Event = cstore::Event;

    fn name(&self) -> &'static str {
        "cstore"
    }

    fn submit(&mut self, sim: &mut Sim<DriverEvent<Self::Event>>, token: u64, op: StoreOp) {
        cstore::Cluster::submit(self, sim, token, op);
    }

    fn handle(&mut self, sim: &mut Sim<DriverEvent<Self::Event>>, ev: Self::Event) {
        cstore::Cluster::handle(self, sim, ev);
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        cstore::Cluster::drain_completions(self)
    }

    fn load_direct(&mut self, key: Key, value: Value, ts: u64) {
        cstore::Cluster::load_direct(self, key, value, ts);
    }

    fn flush_all(&mut self) {
        cstore::Cluster::flush_all(self);
    }

    fn warm_caches(&mut self) {
        cstore::Cluster::warm_caches(self);
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let m = self.metrics();
        vec![
            ("reads", m.reads),
            ("writes", m.writes),
            ("scans", m.scans),
            ("unavailable", m.unavailable),
            ("timeouts", m.timeouts),
            ("digest_mismatches", m.digest_mismatches),
            ("repair_fanouts", m.repair_fanouts),
            ("repair_writes", m.repair_writes),
            ("hints_stored", m.hints_stored),
            ("hints_replayed", m.hints_replayed),
            ("flushes", m.flushes),
            ("compactions", m.compactions),
        ]
    }
}

impl SimStore for hstore::Cluster {
    type Event = hstore::Event;

    fn name(&self) -> &'static str {
        "hstore"
    }

    fn submit(&mut self, sim: &mut Sim<DriverEvent<Self::Event>>, token: u64, op: StoreOp) {
        hstore::Cluster::submit(self, sim, token, op);
    }

    fn handle(&mut self, sim: &mut Sim<DriverEvent<Self::Event>>, ev: Self::Event) {
        hstore::Cluster::handle(self, sim, ev);
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        hstore::Cluster::drain_completions(self)
    }

    fn load_direct(&mut self, key: Key, value: Value, ts: u64) {
        hstore::Cluster::load_direct(self, key, value, ts);
    }

    fn flush_all(&mut self) {
        hstore::Cluster::flush_all(self);
    }

    fn warm_caches(&mut self) {
        hstore::Cluster::warm_caches(self);
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let m = self.metrics();
        vec![
            ("reads", m.reads),
            ("writes", m.writes),
            ("scans", m.scans),
            ("server_down", m.server_down),
            ("wal_groups", m.wal_groups),
            ("wal_entries", m.wal_entries),
            ("flushes", m.flushes),
            ("compactions", m.compactions),
            ("regions_moved", m.regions_moved),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_event_wraps_store_events() {
        let ev: DriverEvent<u32> = 7u32.into();
        assert!(matches!(ev, DriverEvent::Store(7)));
        let issue: DriverEvent<u32> = DriverEvent::Issue { thread: 3 };
        assert!(matches!(issue, DriverEvent::Issue { thread: 3 }));
    }
}
