//! Report rendering: aligned text tables, CSV emission, ASCII charts.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table that can also emit CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must match the header count).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the CSV form to `path` (creating parent directories).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// A horizontal-bar ASCII chart: one labelled bar per data point, grouped
/// by series — enough to eyeball the reproduced figure shapes in a
/// terminal.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    unit: String,
    points: Vec<(String, f64)>,
}

impl AsciiChart {
    /// An empty chart.
    pub fn new(title: &str, unit: &str) -> Self {
        Self {
            title: title.to_owned(),
            unit: unit.to_owned(),
            points: Vec::new(),
        }
    }

    /// Append a labelled value.
    pub fn point(&mut self, label: &str, value: f64) {
        self.points.push((label.to_owned(), value));
    }

    /// Render with bars scaled to the maximum value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} [{}]", self.title, self.unit);
        let max = self
            .points
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::EPSILON, f64::max);
        let wlabel = self.points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.points {
            let bar = ((value / max) * 50.0).round().max(0.0) as usize;
            let _ = writeln!(
                out,
                "{label:<wlabel$} | {} {value:.1}",
                "#".repeat(bar.min(50))
            );
        }
        out
    }
}

/// Format microseconds compactly for table cells.
pub fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.0}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

/// Format an ops/second figure compactly.
pub fn fmt_ops(ops: f64) -> String {
    if ops >= 1_000.0 {
        format!("{:.1}k", ops / 1_000.0)
    } else {
        format!("{ops:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| a   | long-header |"));
        assert!(s.contains("| 333 | 4           |"));
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["v,1".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"v,1\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn chart_scales_bars() {
        let mut c = AsciiChart::new("lat", "us");
        c.point("rf=1", 10.0);
        c.point("rf=6", 50.0);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        let bars: Vec<usize> = lines[1..].iter().map(|l| l.matches('#').count()).collect();
        assert!(bars[1] > bars[0]);
        assert_eq!(bars[1], 50);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_us(412.0), "412us");
        assert_eq!(fmt_us(3_200.0), "3.20ms");
        assert_eq!(fmt_us(1_500_000.0), "1.50s");
        assert_eq!(fmt_ops(25_300.0), "25.3k");
        assert_eq!(fmt_ops(412.0), "412");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("bench_core_test_csv");
        let path = dir.join("sub/out.csv");
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
