//! Figure 3: the stress benchmark for consistency.
//!
//! "In this benchmark, we use a replication factor of 3, a constant number
//! of test threads and a variety of target throughputs to detect the
//! runtime throughput of Cassandra. ... We conduct three rounds of testing,
//! the consistency levels of which are respectively ONE, write ALL and
//! QUORUM." (HBase has no consistency knob, so only the Cassandra analog
//! participates — same as the paper.)

use cstore::Consistency;
use ycsb::WorkloadSpec;

use crate::driver::{self, DriverConfig};
use crate::report::{fmt_ops, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore, Scale};
use crate::sweep::{BasePool, Sweep, Telemetry};

/// One consistency strategy of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level {
    /// Display name ("ONE", "QUORUM", "write ALL").
    pub name: &'static str,
    /// Read consistency.
    pub read: Consistency,
    /// Write consistency.
    pub write: Consistency,
}

/// The paper's three strategies (§2): ONE, QUORUM, and "Write ALL" (write
/// to all replicas, read from one).
pub const PAPER_LEVELS: [Level; 3] = [
    Level {
        name: "ONE",
        read: Consistency::One,
        write: Consistency::One,
    },
    Level {
        name: "QUORUM",
        read: Consistency::Quorum,
        write: Consistency::Quorum,
    },
    Level {
        name: "write ALL",
        read: Consistency::One,
        write: Consistency::All,
    },
];

/// Configuration of the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct ConsistencyConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Replication factor (the paper: 3).
    pub rf: u32,
    /// Consistency strategies to compare.
    pub levels: Vec<Level>,
    /// The workloads (default: the paper's five).
    pub workloads: Vec<WorkloadSpec>,
    /// Constant client thread count.
    pub threads: usize,
    /// Target throughputs swept (the x-axis of Fig. 3); `0.0` probes the
    /// unthrottled peak.
    pub targets: Vec<f64>,
    /// Warm-up completions per run.
    pub warmup_ops: u64,
    /// Measured completions per run.
    pub measure_ops: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for ConsistencyConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            rf: 3,
            levels: PAPER_LEVELS.to_vec(),
            workloads: WorkloadSpec::paper_stress_workloads(),
            threads: 64,
            targets: vec![5_000.0, 10_000.0, 20_000.0, 40_000.0, 0.0],
            warmup_ops: 2_000,
            measure_ops: 30_000,
            seed: 42,
        }
    }
}

impl ConsistencyConfig {
    /// A fast variant for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            rf: 3,
            levels: PAPER_LEVELS.to_vec(),
            workloads: vec![WorkloadSpec::read_update()],
            threads: 8,
            targets: vec![500.0, 0.0],
            warmup_ops: 100,
            measure_ops: 800,
            seed: 42,
        }
    }
}

/// One point of Fig. 3: runtime throughput at one target under one level.
#[derive(Debug, Clone)]
pub struct ConsistencyCell {
    /// Consistency strategy name.
    pub level: &'static str,
    /// Workload name.
    pub workload: String,
    /// Target throughput (0 = unthrottled probe).
    pub target: f64,
    /// Achieved runtime throughput, ops/s.
    pub runtime: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Stale-read fraction.
    pub stale_fraction: f64,
    /// Fraction of checked reads that found *no* value after an
    /// acknowledged write — lost writes, split out of the stale fraction
    /// (missing ⊂ stale).
    pub missing_fraction: f64,
    /// Background repair mutations the level generated (cumulative counter
    /// at run end; compare across levels, not across workloads).
    pub repair_writes: u64,
}

/// The full Fig. 3 result.
#[derive(Debug, Clone)]
pub struct ConsistencyResult {
    /// Every (level, workload, target) point.
    pub cells: Vec<ConsistencyCell>,
    /// What the sweep cost (wall time, utilization, base loads).
    pub telemetry: Telemetry,
}

impl ConsistencyResult {
    /// Runtime-vs-target series for `(level, workload)`, target order;
    /// the unthrottled probe (target 0) sorts last.
    pub fn series(&self, level: &str, workload: &str) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self
            .cells
            .iter()
            .filter(|c| c.level == level && c.workload == workload)
            .map(|c| (c.target, c.runtime))
            .collect();
        v.sort_by(|a, b| {
            let ka = if a.0 == 0.0 { f64::MAX } else { a.0 };
            let kb = if b.0 == 0.0 { f64::MAX } else { b.0 };
            ka.partial_cmp(&kb).expect("no NaN targets")
        });
        v
    }

    /// Peak runtime throughput for `(level, workload)` across all targets.
    pub fn peak(&self, level: &str, workload: &str) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.level == level && c.workload == workload)
            .map(|c| c.runtime)
            .fold(0.0, f64::max)
    }

    /// Render one table per workload: target rows × level columns
    /// (runtime throughput) — the shape of each Fig. 3 sub-plot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut workloads: Vec<String> = self.cells.iter().map(|c| c.workload.clone()).collect();
        workloads.sort();
        workloads.dedup();
        let mut levels: Vec<&'static str> = self.cells.iter().map(|c| c.level).collect();
        levels.dedup();
        let mut level_names: Vec<&'static str> = Vec::new();
        for l in levels {
            if !level_names.contains(&l) {
                level_names.push(l);
            }
        }
        for workload in &workloads {
            let mut headers: Vec<String> = vec!["target".into()];
            headers.extend(level_names.iter().map(|l| format!("{l} runtime")));
            let mut t = Table::new(
                &format!("Fig. 3 — consistency stress: {workload} (Cassandra analog, RF=3)"),
                &headers.iter().map(String::as_str).collect::<Vec<_>>(),
            );
            let mut targets: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| &c.workload == workload)
                .map(|c| c.target)
                .collect();
            targets.sort_by(|a, b| {
                let ka = if *a == 0.0 { f64::MAX } else { *a };
                let kb = if *b == 0.0 { f64::MAX } else { *b };
                ka.partial_cmp(&kb).expect("no NaN")
            });
            targets.dedup();
            for target in targets {
                let mut row = vec![if target == 0.0 {
                    "unthrottled".to_owned()
                } else {
                    fmt_ops(target)
                }];
                for level in &level_names {
                    let cell = self
                        .cells
                        .iter()
                        .find(|c| {
                            c.level == *level && &c.workload == workload && c.target == target
                        })
                        .map_or("-".to_owned(), |c| fmt_ops(c.runtime));
                    row.push(cell);
                }
                t.row(row);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// CSV table of every cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fig3_stress_consistency",
            &[
                "level",
                "workload",
                "target",
                "runtime",
                "mean_us",
                "stale_fraction",
                "missing_fraction",
                "repair_writes",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.level.into(),
                c.workload.clone(),
                format!("{:.0}", c.target),
                format!("{:.1}", c.runtime),
                format!("{:.1}", c.mean_us),
                format!("{:.5}", c.stale_fraction),
                format!("{:.5}", c.missing_fraction),
                c.repair_writes.to_string(),
            ]);
        }
        t
    }
}

/// Run the full Fig. 3 experiment through the sweep engine.
pub fn run_consistency(cfg: &ConsistencyConfig) -> ConsistencyResult {
    run_consistency_with(cfg, &Sweep::from_env())
}

/// [`run_consistency`] on a caller-configured engine.
pub fn run_consistency_with(cfg: &ConsistencyConfig, sweep: &Sweep) -> ConsistencyResult {
    // One cell per (level, workload, target), in that nested order — the
    // cell order of the result (no final sort, matching the original
    // per-level serial loops). Each level's base state loads once.
    let specs: Vec<(usize, usize, f64)> = cfg
        .levels
        .iter()
        .enumerate()
        .flat_map(|(l, _)| {
            (0..cfg.workloads.len())
                .flat_map(move |w| cfg.targets.iter().map(move |&target| (l, w, target)))
        })
        .collect();
    let pool: BasePool<usize, cstore::Cluster> = BasePool::new(0..cfg.levels.len());

    let outcome = sweep.run(cfg.seed, &specs, |ctx, &(l, w, target)| {
        let level = cfg.levels[l];
        let workload = &cfg.workloads[w];
        let mut snapshot = pool
            .get_or_load(&l, || {
                let mut base = build_cstore(&cfg.scale, cfg.rf, level.read, level.write);
                driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                base
            })
            .snapshot();
        let dcfg = DriverConfig {
            workload: workload.clone(),
            threads: cfg.threads,
            target_ops_per_sec: target,
            records: cfg.scale.records,
            value_len: cfg.scale.value_len,
            warmup_ops: cfg.warmup_ops,
            measure_ops: cfg.measure_ops,
            seed: ctx.seed,
            faults: Default::default(),
            timeline_window_us: 0,
            retry: RetryPolicy::none(),
            trace: obs::TraceConfig::off(),
            audit: audit::AuditConfig::off(),
            arrival: crate::driver::ArrivalMode::ClosedLoop,
        };
        let run = driver::run(&mut snapshot, &dcfg);
        let repair_writes = run
            .counters
            .iter()
            .find(|(k, _)| *k == "repair_writes")
            .map_or(0, |(_, v)| *v);
        let (_, checked) = run.metrics.staleness();
        ConsistencyCell {
            level: level.name,
            workload: workload.name.clone(),
            target,
            runtime: run.throughput,
            mean_us: run.mean_latency_us,
            stale_fraction: run.stale_fraction,
            missing_fraction: if checked == 0 {
                0.0
            } else {
                run.metrics.missing_reads() as f64 / checked as f64
            },
            repair_writes,
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&pool);
    ConsistencyResult {
        cells: outcome.results,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_consistency_produces_all_cells() {
        let cfg = ConsistencyConfig::quick();
        let res = run_consistency(&cfg);
        // 3 levels × 1 workload × 2 targets.
        assert_eq!(res.cells.len(), 6);
        for c in &res.cells {
            assert!(c.runtime > 0.0, "{c:?}");
        }
        assert!(res.render().contains("Fig. 3"));
        let series = res.series("ONE", "read & update");
        assert_eq!(series.len(), 2);
        assert!(res.peak("ONE", "read & update") > 0.0);
        // One base state per level, each loaded exactly once.
        assert_eq!(res.telemetry.base_loads, 3);
    }
}
