//! Figure 10: graceful degradation under overload.
//!
//! The paper's stress experiments (§4.2) drive the stores with a *closed*
//! loop: clients wait for completions before reissuing, so offered load can
//! never exceed capacity and saturation shows up only as flattening
//! throughput. Production overload looks different — traffic is open-loop,
//! arrivals keep coming when the store slows down, queues grow without
//! bound, and tail latency diverges. This experiment sweeps an open-loop
//! offered load across the capacity knee, with and without server-side
//! admission control, and traces what each strategy gives up:
//!
//! * **No control** — every arrival is accepted. Below the knee this is
//!   free; past it, queueing delay grows with the length of the run and
//!   p99 diverges (the classic congestion-collapse signature).
//! * **Admission + shed** — a bounded entry queue fast-fails the excess
//!   ([`storage::OpError::Overloaded`]) under a strict-priority policy, so
//!   admitted operations see bounded queueing and the high-priority tenant
//!   keeps its latency SLA while the batch tenant is shed first.
//!
//! Per load step the output reports goodput, shed rate, overall and
//! per-tenant p99, and whether the run met its [`Sla`] (shed operations
//! consume the error budget but are not latency samples).
//!
//! This is the control plane's showcase artifact, so unwraps are banned in
//! the non-test code (CI greps for the attribute below staying in place).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use cstore::Consistency;
use faults::FaultPlan;
use simkit::{AdmissionConfig, AdmissionPolicy};
use ycsb::{FlashCrowd, OpenLoop, Tenant, WorkloadSpec};

use crate::driver::{self, ArrivalMode, DriverConfig};
use crate::report::{fmt_ops, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{self, Scale, StoreKind};
use crate::sla::Sla;
use crate::sweep::{BasePool, Sweep, Telemetry};

/// Row label for the uncontrolled arm.
pub const CONTROL_OFF: &str = "none";
/// Row label for the admission-control arm.
pub const CONTROL_ON: &str = "shed";

/// Configuration of the Fig. 10 experiment.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Record/cache scale and cluster size.
    pub scale: Scale,
    /// Replication factor.
    pub rf: u32,
    /// Read consistency (Cassandra analog).
    pub read_cl: Consistency,
    /// Write consistency (Cassandra analog).
    pub write_cl: Consistency,
    /// Offered loads swept (the x-axis), arrivals/sec of virtual time.
    /// Should straddle the cluster's closed-loop capacity.
    pub offered_loads: Vec<f64>,
    /// Tenant mix: weights split the arrival stream, priorities feed the
    /// strict-priority shedder (0 = shed last).
    pub tenants: Vec<Tenant>,
    /// The admission controller used by the [`CONTROL_ON`] arm (the
    /// [`CONTROL_OFF`] arm always runs [`AdmissionConfig::off`]).
    pub admission: AdmissionConfig,
    /// Per-op deadline budget stamped into each op's tag, µs (`0` = none).
    /// Enables deadline-aware early drop when the policy uses it.
    pub deadline_us: u64,
    /// Diurnal modulation amplitude of the arrival rate (`0` = flat).
    pub diurnal_amplitude: f64,
    /// Diurnal period, µs of virtual time.
    pub diurnal_period_us: u64,
    /// Optional flash-crowd window layered on every load step.
    pub flash: Option<FlashCrowd>,
    /// The SLA each cell is judged against (shed ops consume the error
    /// budget; latency is judged over admitted successes only).
    pub sla: Sla,
    /// The workload (default per-tenant mix; tenants may override).
    pub workload: WorkloadSpec,
    /// Warm-up completions per run.
    pub warmup_ops: u64,
    /// Measured completions per run.
    pub measure_ops: u64,
    /// Seed. Cells at the same offered load share their driver seed across
    /// the control arms, so both arms face the identical arrival sequence.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            rf: 3,
            read_cl: Consistency::One,
            write_cl: Consistency::One,
            // Straddles both stores' open-loop capacity knees at the
            // stress scale (hstore ≈ 50 kops/s; cstore, which batches
            // better under deep concurrency, ≈ 200 kops/s).
            offered_loads: vec![
                32_000.0,
                64_000.0,
                128_000.0,
                256_000.0,
                512_000.0,
                1_024_000.0,
            ],
            tenants: default_tenants(),
            admission: AdmissionConfig {
                max_in_flight: 384,
                policy: AdmissionPolicy::StrictPriority,
                est_service_us: 1_000,
            },
            deadline_us: 100_000,
            diurnal_amplitude: 0.0,
            diurnal_period_us: 0,
            flash: None,
            sla: Sla {
                percentile: 0.99,
                latency_us: 50_000,
                error_budget: 0.5,
            },
            workload: WorkloadSpec::read_mostly(),
            warmup_ops: 1_000,
            measure_ops: 12_000,
            seed: 42,
        }
    }
}

impl OverloadConfig {
    /// A fast variant for tests and smoke runs (same grid shape, tiny
    /// scale, a geometric load ladder wide enough to straddle the tiny
    /// cluster's knee).
    pub fn quick() -> Self {
        let mut cfg = Self {
            scale: Scale::tiny(),
            offered_loads: vec![2_000.0, 8_000.0, 32_000.0, 128_000.0],
            warmup_ops: 100,
            measure_ops: 5_000,
            ..Self::default()
        };
        // The tiny cluster drains far slower than the stress testbed, so
        // the bounded queue must be shallower for admitted ops to keep a
        // low tail. The run stays long enough (5 000 measured completions)
        // for the uncontrolled arm's backlog to visibly diverge.
        cfg.admission.max_in_flight = 32;
        cfg
    }
}

/// The default two-tenant mix: an interactive tenant that must keep its
/// SLA and a batch tenant that is shed first under strict priority.
pub fn default_tenants() -> Vec<Tenant> {
    vec![
        Tenant {
            name: "interactive",
            weight: 0.7,
            priority: 0,
            mix: None,
        },
        Tenant {
            name: "batch",
            weight: 0.3,
            priority: 2,
            mix: None,
        },
    ]
}

/// One Fig. 10 cell: one (store, control arm, offered load) run.
#[derive(Debug, Clone)]
pub struct OverloadCell {
    /// Which store.
    pub store: StoreKind,
    /// [`CONTROL_OFF`] or [`CONTROL_ON`].
    pub control: &'static str,
    /// Offered load, arrivals/sec.
    pub offered: f64,
    /// Settled throughput over the measured window, ops/s.
    pub runtime: f64,
    /// Successful (admitted, error-free) throughput, ops/s.
    pub goodput: f64,
    /// Operations the admission controller shed in the window.
    pub shed: u64,
    /// Shed fraction of the measured window.
    pub shed_rate: f64,
    /// All failed operations in the window (shed included).
    pub errors: u64,
    /// Mean latency of admitted successes, µs.
    pub mean_us: f64,
    /// 99th-percentile latency of admitted successes, µs.
    pub p99_us: u64,
    /// Per-tenant p99, µs, in [`OverloadConfig::tenants`] order.
    pub tenant_p99_us: Vec<u64>,
    /// Per-tenant shed fraction, same order.
    pub tenant_shed_rate: Vec<f64>,
    /// Whether the run met the configured SLA.
    pub sla_met: bool,
}

/// The full Fig. 10 result.
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// Every (store, control, offered load) cell.
    pub cells: Vec<OverloadCell>,
    /// Tenant names, in per-tenant column order.
    pub tenant_names: Vec<&'static str>,
    /// What the sweep cost.
    pub telemetry: Telemetry,
}

impl OverloadResult {
    /// The cell for `(store, control, offered)`, if present.
    pub fn cell(&self, store: StoreKind, control: &str, offered: f64) -> Option<&OverloadCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.control == control && c.offered == offered)
    }

    fn tenant_headers(&self, suffix: &str) -> Vec<String> {
        self.tenant_names
            .iter()
            .map(|n| format!("{n}_{suffix}"))
            .collect()
    }

    /// Render one table per store — the Fig. 10 panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for store in [StoreKind::CStore, StoreKind::HStore] {
            let mut headers = vec![
                "control".to_owned(),
                "offered".to_owned(),
                "goodput".to_owned(),
                "shed_rate".to_owned(),
                "p99_us".to_owned(),
            ];
            headers.extend(self.tenant_headers("p99_us"));
            headers.push("sla_met".to_owned());
            let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut t = Table::new(
                &format!(
                    "Fig. 10 — graceful degradation under overload: {}",
                    store.short()
                ),
                &refs,
            );
            for c in self.cells.iter().filter(|c| c.store == store) {
                let mut row = vec![
                    c.control.to_owned(),
                    fmt_ops(c.offered),
                    fmt_ops(c.goodput),
                    format!("{:.3}", c.shed_rate),
                    c.p99_us.to_string(),
                ];
                row.extend(c.tenant_p99_us.iter().map(u64::to_string));
                row.push(if c.sla_met { "yes" } else { "NO" }.to_owned());
                t.row(row);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// CSV table of every cell.
    pub fn table(&self) -> Table {
        let mut headers = vec![
            "store".to_owned(),
            "control".to_owned(),
            "offered".to_owned(),
            "runtime".to_owned(),
            "goodput".to_owned(),
            "shed".to_owned(),
            "shed_rate".to_owned(),
            "errors".to_owned(),
            "mean_us".to_owned(),
            "p99_us".to_owned(),
        ];
        headers.extend(self.tenant_headers("p99_us"));
        headers.extend(self.tenant_headers("shed_rate"));
        headers.push("sla_met".to_owned());
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new("fig10_overload", &refs);
        for c in &self.cells {
            let mut row = vec![
                c.store.short().to_owned(),
                c.control.to_owned(),
                format!("{:.0}", c.offered),
                format!("{:.1}", c.runtime),
                format!("{:.1}", c.goodput),
                c.shed.to_string(),
                format!("{:.5}", c.shed_rate),
                c.errors.to_string(),
                format!("{:.1}", c.mean_us),
                c.p99_us.to_string(),
            ];
            row.extend(c.tenant_p99_us.iter().map(u64::to_string));
            row.extend(c.tenant_shed_rate.iter().map(|r| format!("{r:.5}")));
            row.push(u8::from(c.sla_met).to_string());
            t.row(row);
        }
        t
    }
}

fn driver_config(cfg: &OverloadConfig, seed: u64, offered: f64) -> DriverConfig {
    DriverConfig {
        workload: cfg.workload.clone(),
        threads: 1,
        target_ops_per_sec: 0.0,
        records: cfg.scale.records,
        value_len: cfg.scale.value_len,
        warmup_ops: cfg.warmup_ops,
        measure_ops: cfg.measure_ops,
        seed,
        faults: FaultPlan::new(),
        timeline_window_us: 0,
        retry: RetryPolicy {
            deadline_us: cfg.deadline_us,
            ..RetryPolicy::none()
        },
        trace: obs::TraceConfig::off(),
        audit: audit::AuditConfig::off(),
        arrival: ArrivalMode::OpenLoop(OpenLoop {
            ops_per_sec: offered,
            diurnal_amplitude: cfg.diurnal_amplitude,
            diurnal_period_us: cfg.diurnal_period_us,
            flash: cfg.flash,
            tenants: cfg.tenants.clone(),
        }),
    }
}

/// Reduce one driver run into a Fig. 10 cell.
fn cell_from(
    cfg: &OverloadConfig,
    store: StoreKind,
    control: bool,
    offered: f64,
    run: &driver::RunOutcome,
) -> OverloadCell {
    let settled = (run.metrics.ops() + run.errors).max(1);
    let shed: u64 = run.metrics.tenants().iter().map(|t| t.shed).sum();
    let tenant = |i: usize| run.metrics.tenants().get(i);
    let tenant_p99_us = (0..cfg.tenants.len())
        .map(|i| tenant(i).map_or(0, |t| t.hist.quantile(0.99)))
        .collect();
    let tenant_shed_rate = (0..cfg.tenants.len())
        .map(|i| {
            tenant(i).map_or(0.0, |t| {
                let total = t.hist.count() + t.errors;
                if total == 0 {
                    0.0
                } else {
                    t.shed as f64 / total as f64
                }
            })
        })
        .collect();
    OverloadCell {
        store,
        control: if control { CONTROL_ON } else { CONTROL_OFF },
        offered,
        runtime: run.throughput,
        goodput: run.throughput * (1.0 - run.errors as f64 / settled as f64),
        shed,
        shed_rate: shed as f64 / settled as f64,
        errors: run.errors,
        mean_us: run.mean_latency_us,
        p99_us: run.metrics.overall().quantile(0.99),
        tenant_p99_us,
        tenant_shed_rate,
        sla_met: cfg.sla.met_by(run),
    }
}

/// Run the full Fig. 10 experiment through the sweep engine.
pub fn run_overload(cfg: &OverloadConfig) -> OverloadResult {
    run_overload_with(cfg, &Sweep::from_env())
}

/// [`run_overload`] on a caller-configured engine.
pub fn run_overload_with(cfg: &OverloadConfig, sweep: &Sweep) -> OverloadResult {
    // (store, control, load index), store-major then control-major, so the
    // rendered panels read as uncontrolled ladder then controlled ladder.
    let mut specs: Vec<(StoreKind, bool, usize)> = Vec::new();
    for store in [StoreKind::CStore, StoreKind::HStore] {
        for control in [false, true] {
            for li in 0..cfg.offered_loads.len() {
                specs.push((store, control, li));
            }
        }
    }
    // One loaded base per (store, control arm): the admission config is
    // cluster state, so each arm gets its own base; every load step then
    // snapshots copy-on-write from it.
    let cpool: BasePool<bool, cstore::Cluster> = BasePool::new([false, true]);
    let hpool: BasePool<bool, hstore::Cluster> = BasePool::new([false, true]);

    let outcome = sweep.run(cfg.seed, &specs, |_ctx, &(store, control, li)| {
        let offered = cfg.offered_loads[li];
        // Control arms at the same (store, load) share a seed: identical
        // arrival sequence, so the shed/no-shed comparison is paired.
        let cell_seed =
            cfg.seed ^ ((li as u64 + 1) << 17) ^ (u64::from(store == StoreKind::HStore) << 33);
        let dcfg = driver_config(cfg, cell_seed, offered);
        let run = match store {
            StoreKind::CStore => {
                let mut snapshot = cpool
                    .get_or_load(&control, || {
                        let mut base = setup::build_cstore_with(
                            &cfg.scale,
                            cfg.rf,
                            cfg.read_cl,
                            cfg.write_cl,
                            |c| {
                                if control {
                                    c.admission = cfg.admission;
                                }
                            },
                        );
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                driver::run(&mut snapshot, &dcfg)
            }
            StoreKind::HStore => {
                let mut snapshot = hpool
                    .get_or_load(&control, || {
                        let mut base = setup::build_hstore_with(&cfg.scale, cfg.rf, |h| {
                            if control {
                                h.admission = cfg.admission;
                            }
                        });
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                driver::run(&mut snapshot, &dcfg)
            }
        };
        cell_from(cfg, store, control, offered, &run)
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&cpool);
    telemetry.record_pool(&hpool);
    OverloadResult {
        cells: outcome.results,
        tenant_names: cfg.tenants.iter().map(|t| t.name).collect(),
        telemetry,
    }
}

#[cfg(test)]
#[allow(clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn quick_overload_produces_the_full_grid() {
        let cfg = OverloadConfig::quick();
        let res = run_overload(&cfg);
        // 2 stores × 2 control arms × 4 loads.
        assert_eq!(res.cells.len(), 16);
        for c in &res.cells {
            assert!(c.runtime > 0.0, "{c:?}");
            assert_eq!(c.tenant_p99_us.len(), 2);
        }
        assert!(res.render().contains("Fig. 10"));
        assert_eq!(res.telemetry.base_loads, 4);
    }

    #[test]
    fn uncontrolled_arm_never_sheds() {
        let mut cfg = OverloadConfig::quick();
        cfg.offered_loads = vec![32_000.0];
        let res = run_overload(&cfg);
        for store in [StoreKind::CStore, StoreKind::HStore] {
            let c = res.cell(store, CONTROL_OFF, 32_000.0).expect("cell");
            assert_eq!(c.shed, 0, "{store:?} shed without admission control");
            assert_eq!(c.errors, 0, "{store:?} errored without faults");
        }
    }

    #[test]
    fn shedding_bounds_the_tail_past_the_knee() {
        // At the top of the quick ladder (far past the tiny cluster's
        // capacity) the uncontrolled arm's p99 is dominated by unbounded
        // queueing; the admission arm sheds instead and keeps the admitted
        // tail orders of magnitude lower.
        let mut cfg = OverloadConfig::quick();
        cfg.offered_loads = vec![32_000.0];
        let res = run_overload(&cfg);
        for store in [StoreKind::CStore, StoreKind::HStore] {
            let off = res.cell(store, CONTROL_OFF, 32_000.0).expect("cell");
            let on = res.cell(store, CONTROL_ON, 32_000.0).expect("cell");
            assert!(on.shed > 0, "{store:?} must shed past the knee");
            assert!(
                on.p99_us * 4 < off.p99_us,
                "{store:?}: admitted p99 {} should be far below uncontrolled {}",
                on.p99_us,
                off.p99_us
            );
            // Graceful degradation in SLA terms: shedding keeps the
            // latency bound and stays inside the 50% error budget, the
            // uncontrolled arm blows the latency bound.
            assert!(on.sla_met, "{store:?}: admission arm should meet SLA");
            assert!(!off.sla_met, "{store:?}: uncontrolled arm should not");
        }
    }

    #[test]
    fn strict_priority_sheds_the_batch_tenant_first() {
        let mut cfg = OverloadConfig::quick();
        cfg.offered_loads = vec![32_000.0];
        let res = run_overload(&cfg);
        for store in [StoreKind::CStore, StoreKind::HStore] {
            let on = res.cell(store, CONTROL_ON, 32_000.0).expect("cell");
            // tenants[0] = interactive (priority 0), tenants[1] = batch
            // (priority 2, bound max_in_flight >> 2).
            assert!(
                on.tenant_shed_rate[1] > on.tenant_shed_rate[0],
                "{store:?}: batch shed {} should exceed interactive shed {}",
                on.tenant_shed_rate[1],
                on.tenant_shed_rate[0]
            );
        }
    }
}
