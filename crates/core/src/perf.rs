//! Engine-speed measurement: the numbers behind `results/BENCH_009.json`.
//!
//! The event core and the storage engine are the denominator of every
//! experiment's wall-clock cost, so this artifact pins their speed as a
//! tracked number instead of folklore. Three measurements, all runnable in
//! seconds:
//!
//! * [`queue_churn`] — the classic hold model for priority queues: keep a
//!   fixed population of pending events and repeatedly pop-one/push-one
//!   with a near-future increment. This isolates the queue itself (the
//!   calendar wheel vs the reference binary heap) at controlled pending
//!   counts, with an event payload as fat as the cluster models' enums.
//! * [`storage_microbench`] — LSM hot paths in isolation: cache-hot and
//!   cache-cold point reads, put+flush cycles, and the streaming
//!   compaction merge at several run counts. These track the zero-copy
//!   storage work (borrowed k-way merge, refcounted payloads, fast block
//!   cache hashing) without the cluster models on top.
//! * [`driver_run`] — a whole benchmark run through [`crate::driver::run`]
//!   against a loaded store, timed end to end, on a chosen queue backend.
//!   This shows how much of the layer-level wins survive once replica
//!   models, caches, and metrics share the profile.
//!
//! [`PerfReport::to_json`] emits the hand-rolled JSON the CI regression
//! gate diffs against the committed baseline ([`extract_number`] is the
//! matching reader — the workspace deliberately has no serde). The gate
//! tracks two floors: calendar churn events/sec ([`PerfReport::gate_events_per_sec`])
//! and whole-driver cstore ops/sec ([`PerfReport::gate_ops_per_sec`]).

use std::time::{Duration, Instant};

use simkit::{EventQueue, QueueKind};
use ycsb::WorkloadSpec;

use crate::driver::{self, DriverConfig};
use crate::setup::{build_cstore, build_hstore, Scale, StoreKind};
use crate::store::SimStore;
use cstore::Consistency;
use storage::merge::merge_runs;
use storage::{Cell, Key, LsmConfig, LsmTree};

/// Queue-churn event payload: sized like the fat end of the cluster event
/// enums (≈100 bytes), so per-level memcpy cost in the heap is realistic.
type FatEvent = [u64; 12];

/// One queue-churn measurement.
#[derive(Debug, Clone)]
pub struct ChurnSample {
    /// Which backend ran.
    pub backend: QueueKind,
    /// Pending-event population held constant through the run.
    pub pending: usize,
    /// Pop/push pairs executed.
    pub events: u64,
    /// Wall-clock time for the churn loop (excludes initial fill).
    pub wall: Duration,
}

impl ChurnSample {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        per_sec(self.events, self.wall)
    }
}

/// One driver-level measurement: a full benchmark run, timed.
#[derive(Debug, Clone)]
pub struct DriverSample {
    /// Which store ran.
    pub store: StoreKind,
    /// Which queue backend ran.
    pub backend: QueueKind,
    /// Simulation events dispatched over the run.
    pub events: u64,
    /// Client operations completed (warm-up + measured).
    pub ops: u64,
    /// Wall-clock time for the run (excludes the functional load).
    pub wall: Duration,
}

impl DriverSample {
    /// Simulation events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        per_sec(self.events, self.wall)
    }

    /// Simulated client operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        per_sec(self.ops, self.wall)
    }
}

fn per_sec(count: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

fn backend_name(kind: QueueKind) -> &'static str {
    match kind {
        QueueKind::Calendar => "calendar",
        QueueKind::Heap => "heap",
    }
}

/// Hold-model churn: fill the queue to `pending` events, then pop one /
/// push one `events` times, each push landing a pseudo-random near-future
/// increment (up to ~2 wheel buckets) after the popped time — the locality
/// the cluster models actually exhibit. Deterministic: a fixed splitmix64
/// stream drives the increments, so both backends churn the same schedule.
pub fn queue_churn(kind: QueueKind, pending: usize, events: u64) -> ChurnSample {
    let mut q: EventQueue<FatEvent> = EventQueue::with_kind(kind);
    let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        // splitmix64: cheap, deterministic, dependency-free.
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let payload: FatEvent = [7; 12];
    for i in 0..pending as u64 {
        q.push(next() % 1_000_000, [i; 12]);
    }
    let start = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..events {
        if let Some((t, ev)) = q.pop() {
            checksum = checksum.wrapping_add(t).wrapping_add(ev[0]);
            q.push(t + 1 + next() % 512, payload);
        }
    }
    let wall = start.elapsed();
    std::hint::black_box(checksum);
    ChurnSample {
        backend: kind,
        pending,
        events,
        wall,
    }
}

/// Run one full YCSB-A benchmark (load excluded from timing) on the chosen
/// store and queue backend. The backend is selected through the same
/// `SIM_QUEUE` environment variable the escape hatch uses, so the measured
/// path is exactly the shipping one; call this from a single-threaded
/// binary (the perfbench harness), not from parallel tests.
pub fn driver_run(store_kind: StoreKind, backend: QueueKind, quick: bool) -> DriverSample {
    std::env::set_var("SIM_QUEUE", backend_name(backend));
    let scale = if quick {
        Scale::tiny()
    } else {
        Scale::stress()
    };
    let mut cfg = DriverConfig::new(WorkloadSpec::ycsb_a(), scale.records);
    cfg.value_len = scale.value_len;
    cfg.threads = 32;
    cfg.warmup_ops = if quick { 500 } else { 4_000 };
    cfg.measure_ops = if quick { 4_500 } else { 146_000 };
    cfg.seed = 42;
    let sample = match store_kind {
        StoreKind::CStore => {
            let mut store = build_cstore(&scale, 3, Consistency::Quorum, Consistency::Quorum);
            driver::load(&mut store, cfg.records, cfg.value_len, cfg.seed);
            time_run(&mut store, &cfg, store_kind, backend)
        }
        StoreKind::HStore => {
            let mut store = build_hstore(&scale, 3);
            driver::load(&mut store, cfg.records, cfg.value_len, cfg.seed);
            time_run(&mut store, &cfg, store_kind, backend)
        }
    };
    std::env::remove_var("SIM_QUEUE");
    sample
}

fn time_run<S>(
    store: &mut S,
    cfg: &DriverConfig,
    kind: StoreKind,
    backend: QueueKind,
) -> DriverSample
where
    S: SimStore + faults::FaultTarget<Event = <S as SimStore>::Event>,
{
    let start = Instant::now();
    let out = driver::run(store, cfg);
    let wall = start.elapsed();
    DriverSample {
        store: kind,
        backend,
        events: out.events_dispatched,
        ops: cfg.warmup_ops + cfg.measure_ops,
        wall,
    }
}

/// One storage-engine microbench measurement.
#[derive(Debug, Clone)]
pub struct StorageSample {
    /// Which microbench ran (`lsm_get_hot`, `lsm_get_cold`, `flush`,
    /// `compact_merge_4` …).
    pub name: &'static str,
    /// Operations (gets, puts, or merged entries) executed in the timed loop.
    pub ops: u64,
    /// Wall-clock time for the timed loop (excludes setup).
    pub wall: Duration,
}

impl StorageSample {
    /// Operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        per_sec(self.ops, self.wall)
    }
}

fn storage_key(i: u64) -> Key {
    Key::from(format!("user{i:012}").into_bytes())
}

/// A flushed LSM tree holding `records` keys with ~`value_len`-byte values.
fn loaded_tree(records: u64, value_len: usize, cache_bytes: u64) -> LsmTree {
    let mut tree = LsmTree::new(LsmConfig {
        cache_bytes,
        ..LsmConfig::default()
    });
    let value = Key::from(vec![7u8; value_len]);
    for i in 0..records {
        tree.put(storage_key(i), Cell::live(value.clone(), i));
    }
    tree.flush();
    tree
}

/// Point reads against a small working set that fits the block cache: the
/// steady-state read path (memtable miss → bloom pass → cache hit).
pub fn lsm_get_hot(quick: bool) -> StorageSample {
    let records: u64 = if quick { 2_000 } else { 20_000 };
    let gets: u64 = if quick { 50_000 } else { 1_000_000 };
    let hot: u64 = 512;
    let mut tree = loaded_tree(records, 64, 4 << 20);
    for i in 0..hot {
        std::hint::black_box(tree.get(&storage_key(i)));
    }
    let start = Instant::now();
    let mut found = 0u64;
    for i in 0..gets {
        let r = tree.get(&storage_key((i.wrapping_mul(7)) % hot));
        if r.cell.is_some() {
            found += 1;
        }
    }
    let wall = start.elapsed();
    assert_eq!(found, gets, "hot gets must all hit");
    StorageSample {
        name: "lsm_get_hot",
        ops: gets,
        wall,
    }
}

/// Point reads spread over the whole keyspace against a cache far smaller
/// than the data: the disk-dominated read path (block fetch + insert/evict
/// on every get).
pub fn lsm_get_cold(quick: bool) -> StorageSample {
    let records: u64 = if quick { 2_000 } else { 20_000 };
    let gets: u64 = if quick { 20_000 } else { 400_000 };
    let mut tree = loaded_tree(records, 64, 8 << 10);
    let start = Instant::now();
    let mut found = 0u64;
    for i in 0..gets {
        let r = tree.get(&storage_key((i.wrapping_mul(2_654_435_761)) % records));
        if r.cell.is_some() {
            found += 1;
        }
    }
    let wall = start.elapsed();
    assert_eq!(found, gets, "cold gets must all hit");
    StorageSample {
        name: "lsm_get_cold",
        ops: gets,
        wall,
    }
}

/// Write path: puts into the memtable plus the flushes they trigger (WAL
/// append by reference, memtable drained by move into `SsTable::build`).
pub fn lsm_flush(quick: bool) -> StorageSample {
    let puts: u64 = if quick { 20_000 } else { 400_000 };
    let mut tree = LsmTree::new(LsmConfig {
        // Large enough to disable auto-compaction pressure but small enough
        // to exercise many flush cycles.
        memtable_flush_bytes: 64 << 10,
        ..LsmConfig::default()
    });
    let value = Key::from(vec![7u8; 64]);
    let start = Instant::now();
    for i in 0..puts {
        let receipt = tree.put(storage_key(i % 50_000), Cell::live(value.clone(), i));
        if receipt.flush_due {
            tree.flush();
        }
    }
    tree.flush();
    let wall = start.elapsed();
    StorageSample {
        name: "flush",
        ops: puts,
        wall,
    }
}

/// The streaming k-way compaction merge over `runs_n` sorted runs.
/// Even/odd runs duplicate each other's keyspace, so the merge exercises
/// both interleaving and last-write-wins reconciliation. `ops` counts input
/// entries consumed.
pub fn compact_merge(runs_n: usize, quick: bool) -> StorageSample {
    let per_run: usize = if quick { 2_000 } else { 10_000 };
    let value = Key::from(vec![7u8; 64]);
    let runs: Vec<Vec<(Key, Cell)>> = (0..runs_n)
        .map(|r| {
            (0..per_run)
                .map(|i| {
                    let id = (i * 2 + (r & 1)) as u64;
                    (storage_key(id), Cell::live(value.clone(), r as u64))
                })
                .collect()
        })
        .collect();
    let views: Vec<&[(Key, Cell)]> = runs.iter().map(Vec::as_slice).collect();
    let start = Instant::now();
    let merged = merge_runs(&views, true);
    let wall = start.elapsed();
    std::hint::black_box(merged.len());
    let name = match runs_n {
        4 => "compact_merge_4",
        16 => "compact_merge_16",
        _ => "compact_merge_64",
    };
    StorageSample {
        name,
        ops: (runs_n * per_run) as u64,
        wall,
    }
}

/// The full storage microbench suite in report order.
pub fn storage_microbench(quick: bool) -> Vec<StorageSample> {
    vec![
        lsm_get_hot(quick),
        lsm_get_cold(quick),
        lsm_flush(quick),
        compact_merge(4, quick),
        compact_merge(16, quick),
        compact_merge(64, quick),
    ]
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The full measurement set perfbench serializes to `BENCH_009.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `true` for the CI smoke variant (smaller populations and op counts).
    pub quick: bool,
    /// Queue-churn samples, both backends at each pending population.
    pub churn: Vec<ChurnSample>,
    /// Storage-engine microbench samples.
    pub storage: Vec<StorageSample>,
    /// Driver-level samples, both stores × both backends.
    pub driver: Vec<DriverSample>,
    /// Peak RSS at the end of measurement.
    pub peak_rss_bytes: u64,
}

impl PerfReport {
    /// Calendar-over-heap events/sec ratio at the largest churn population
    /// (the headline number), or `None` before both backends ran.
    pub fn churn_speedup(&self) -> Option<f64> {
        let max_pending = self.churn.iter().map(|s| s.pending).max()?;
        let eps = |kind: QueueKind| {
            self.churn
                .iter()
                .find(|s| s.pending == max_pending && s.backend == kind)
                .map(ChurnSample::events_per_sec)
        };
        let cal = eps(QueueKind::Calendar)?;
        let heap = eps(QueueKind::Heap)?;
        if heap <= 0.0 {
            return None;
        }
        Some(cal / heap)
    }

    /// The first number the CI regression gate tracks: calendar-backend
    /// churn events/sec at the largest measured pending population.
    pub fn gate_events_per_sec(&self) -> f64 {
        let max_pending = self.churn.iter().map(|s| s.pending).max().unwrap_or(0);
        self.churn
            .iter()
            .find(|s| s.pending == max_pending && s.backend == QueueKind::Calendar)
            .map(ChurnSample::events_per_sec)
            .unwrap_or(0.0)
    }

    /// The second gated number: whole-driver cstore ops/sec on the calendar
    /// backend — the end-to-end figure the zero-copy storage path moves.
    /// Cstore (quorum reads through the LSM on every replica) leans hardest
    /// on the storage engine, so it is the sentinel store.
    pub fn gate_ops_per_sec(&self) -> f64 {
        self.driver
            .iter()
            .find(|d| d.store == StoreKind::CStore && d.backend == QueueKind::Calendar)
            .map(DriverSample::ops_per_sec)
            .unwrap_or(0.0)
    }

    /// Serialize to the `BENCH_009.json` document (hand-rolled: the
    /// workspace has no serde; see `obs::export` for the precedent).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str("  \"bench_id\": \"BENCH_009\",\n");
        s.push_str(
            "  \"title\": \"Zero-copy storage hot path: streaming merge, shared runs, fast hashing\",\n",
        );
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str("  \"queue_churn\": [\n");
        for (i, c) in self.churn.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"pending\": {}, \"events\": {}, \"wall_secs\": {:.4}, \"events_per_sec\": {:.1}}}{}\n",
                backend_name(c.backend),
                c.pending,
                c.events,
                c.wall.as_secs_f64(),
                c.events_per_sec(),
                if i + 1 < self.churn.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"storage\": [\n");
        for (i, m) in self.storage.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"ops\": {}, \"wall_secs\": {:.4}, \"ops_per_sec\": {:.1}}}{}\n",
                m.name,
                m.ops,
                m.wall.as_secs_f64(),
                m.ops_per_sec(),
                if i + 1 < self.storage.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"churn_speedup_calendar_over_heap\": {:.2},\n",
            self.churn_speedup().unwrap_or(0.0)
        ));
        s.push_str("  \"driver\": [\n");
        for (i, d) in self.driver.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"store\": \"{}\", \"backend\": \"{}\", \"events_dispatched\": {}, \"ops\": {}, \"wall_secs\": {:.4}, \"events_per_sec\": {:.1}, \"ops_per_sec\": {:.1}}}{}\n",
                d.store.short(),
                backend_name(d.backend),
                d.events,
                d.ops,
                d.wall.as_secs_f64(),
                d.events_per_sec(),
                d.ops_per_sec(),
                if i + 1 < self.driver.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"gate_events_per_sec\": {:.1},\n",
            self.gate_events_per_sec()
        ));
        s.push_str(&format!(
            "  \"gate_ops_per_sec\": {:.1},\n",
            self.gate_ops_per_sec()
        ));
        s.push_str(&format!("  \"peak_rss_bytes\": {}\n", self.peak_rss_bytes));
        s.push_str("}\n");
        s
    }
}

/// Extract the first numeric value following `"key":` in a JSON document.
/// The minimal reader for the regression gate — enough for the flat
/// numbers [`PerfReport::to_json`] writes, not a general parser.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_counts_every_event_and_preserves_population() {
        let s = queue_churn(QueueKind::Calendar, 100, 1_000);
        assert_eq!(s.events, 1_000);
        assert_eq!(s.pending, 100);
        assert!(s.events_per_sec() > 0.0);
        let h = queue_churn(QueueKind::Heap, 100, 1_000);
        assert_eq!(h.events, 1_000);
    }

    #[test]
    fn report_round_trips_through_the_gate_reader() {
        let report = PerfReport {
            quick: true,
            churn: vec![
                ChurnSample {
                    backend: QueueKind::Calendar,
                    pending: 1000,
                    events: 500_000,
                    wall: Duration::from_millis(100),
                },
                ChurnSample {
                    backend: QueueKind::Heap,
                    pending: 1000,
                    events: 500_000,
                    wall: Duration::from_millis(400),
                },
            ],
            storage: vec![StorageSample {
                name: "lsm_get_hot",
                ops: 1_000,
                wall: Duration::from_millis(10),
            }],
            driver: vec![],
            peak_rss_bytes: 123,
        };
        let json = report.to_json();
        let gate = extract_number(&json, "gate_events_per_sec");
        assert_eq!(gate, Some(report.gate_events_per_sec()));
        let speedup = extract_number(&json, "churn_speedup_calendar_over_heap");
        assert!(speedup.is_some_and(|s| (s - 4.0).abs() < 0.1));
        assert_eq!(extract_number(&json, "peak_rss_bytes"), Some(123.0));
        assert_eq!(extract_number(&json, "no_such_key"), None);
        // Empty driver set: the ops/sec gate reads 0 rather than panicking.
        assert_eq!(extract_number(&json, "gate_ops_per_sec"), Some(0.0));
        assert!(json.contains("\"name\": \"lsm_get_hot\""));
        assert!(json.contains("\"bench_id\": \"BENCH_009\""));
    }

    #[test]
    fn storage_microbenches_run_and_count_ops() {
        for s in storage_microbench(true) {
            assert!(s.ops > 0, "{} did no work", s.name);
            assert!(s.ops_per_sec() > 0.0, "{} measured nothing", s.name);
        }
    }

    #[test]
    fn peak_rss_reads_procfs_on_linux() {
        // On Linux this must be nonzero; elsewhere the fallback is 0.
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0);
        }
    }
}
