//! The shared parallel experiment engine.
//!
//! Every figure in the paper is a *grid* of independent cells — (store,
//! replication factor, operation/workload/consistency-level, target) — and
//! every cell is one deterministic simulated run. Before this module
//! existed, each experiment hand-rolled its own scoped-thread fan-out and
//! re-loaded the store from zero per cell; the engine centralises that:
//!
//! * **cell spec → seed**: [`SeedPolicy`] derives the seed each cell runs
//!   under, either the experiment's fixed seed (the paper's setup: every
//!   cell uses the same seed so cells differ only in their knob) or a
//!   per-cell splitmix64 stream for variance studies;
//! * **self-scheduling executor**: worker threads pull the next unclaimed
//!   cell index from a shared atomic counter, so long cells (high RF,
//!   scan-heavy) never leave workers idle behind a static partition;
//! * **ordered collection**: results are returned in cell order no matter
//!   which worker ran them, so parallel output is bit-identical to serial;
//! * **telemetry**: per-cell wall time and worker id, per-worker busy time,
//!   pool utilization, and base-state load accounting.
//!
//! Cells obtain their store from a [`BasePool`]: each distinct base state
//! (store kind × RF × consistency level) is built and bulk-loaded exactly
//! once, then stamped out per cell as an O(metadata) copy-on-write
//! [`snapshot`](crate::store::SimStore::snapshot) — the load phase that used
//! to dominate grid wall time is paid once per base, not once per cell.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// How each cell's seed is derived from the experiment's root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Every cell runs under the root seed itself — the paper's setup:
    /// cells differ only in the knob being swept, never in their random
    /// stream.
    Fixed,
    /// Cell `i` runs under `derive_seed(root, i)` — independent streams for
    /// variance and robustness studies.
    PerCell,
}

/// Derive the seed for cell `index` from a root seed (splitmix64 over the
/// root xored with the index): deterministic, order-free, and
/// well-distributed even for adjacent indices.
pub fn derive_seed(root: u64, index: usize) -> u64 {
    let mut z = root ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Context handed to a cell closure: which cell it is, the seed the
/// [`SeedPolicy`] derived for it, and which worker is running it.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx {
    /// The cell's index in the spec slice (and in the result vector).
    pub index: usize,
    /// The derived seed the cell should run under.
    pub seed: u64,
    /// The worker thread executing the cell (0 in serial mode).
    pub worker: usize,
}

/// Wall-time accounting for one executed cell.
#[derive(Debug, Clone, Copy)]
pub struct CellStat {
    /// The cell's index.
    pub index: usize,
    /// The worker that ran it.
    pub worker: usize,
    /// Wall-clock microseconds the cell took.
    pub wall_us: u64,
}

/// What one sweep cost: per-cell and per-worker wall time plus base-state
/// load accounting (filled in by the experiment via
/// [`Telemetry::record_pool`]).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Per-cell stats, in cell order.
    pub cells: Vec<CellStat>,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock microseconds for the whole sweep.
    pub wall_us: u64,
    /// Busy microseconds per worker.
    pub busy_us: Vec<u64>,
    /// Base states built and bulk-loaded.
    pub base_loads: u64,
    /// Distinct base states declared across the experiment's pools.
    pub base_states: u64,
}

impl Telemetry {
    /// Fraction of worker wall time spent running cells (1.0 = perfectly
    /// packed).
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.busy_us.iter().sum();
        let denom = self.wall_us.saturating_mul(self.workers as u64);
        if denom == 0 {
            0.0
        } else {
            busy as f64 / denom as f64
        }
    }

    /// Fold a pool's load accounting into the telemetry.
    pub fn record_pool<K, S>(&mut self, pool: &BasePool<K, S>) {
        self.base_loads += pool.loads();
        self.base_states += pool.len() as u64;
    }

    /// One-line human summary for the figure binaries' stderr.
    pub fn summary(&self) -> String {
        format!(
            "sweep: {} cells on {} workers in {:.2}s, utilization {:.0}%, {} base loads for {} base states",
            self.cells.len(),
            self.workers,
            self.wall_us as f64 / 1e6,
            self.utilization() * 100.0,
            self.base_loads,
            self.base_states,
        )
    }
}

/// A sweep's results (in cell order) and its cost accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome<R> {
    /// One result per cell, in the order the cells were specified.
    pub results: Vec<R>,
    /// Wall-time and load accounting.
    pub telemetry: Telemetry,
}

/// A pool of lazily-built base states, keyed by whatever distinguishes them
/// (RF, consistency level, …). Each key's state is built **exactly once**,
/// even under concurrent access from many sweep workers; cells take
/// O(metadata) copy-on-write clones via [`BasePool::snapshot`].
pub struct BasePool<K, S> {
    entries: Vec<(K, OnceLock<S>)>,
    loads: AtomicU64,
}

impl<K: PartialEq + std::fmt::Debug, S> BasePool<K, S> {
    /// Declare the keys the pool will serve. Keys must be distinct.
    pub fn new(keys: impl IntoIterator<Item = K>) -> Self {
        let entries: Vec<(K, OnceLock<S>)> =
            keys.into_iter().map(|k| (k, OnceLock::new())).collect();
        for (i, (k, _)) in entries.iter().enumerate() {
            assert!(
                !entries[..i].iter().any(|(other, _)| other == k),
                "duplicate base-state key {k:?}"
            );
        }
        Self {
            entries,
            loads: AtomicU64::new(0),
        }
    }

    /// The base state for `key`, building it with `load` on first access.
    ///
    /// # Panics
    /// If `key` was not declared in [`BasePool::new`].
    pub fn get_or_load(&self, key: &K, load: impl FnOnce() -> S) -> &S {
        let (_, slot) = self
            .entries
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("base-state key {key:?} not declared"));
        slot.get_or_init(|| {
            self.loads.fetch_add(1, Ordering::Relaxed);
            load()
        })
    }

    /// A copy-on-write clone of the base state for `key` (loading it first
    /// if no cell has touched it yet).
    pub fn snapshot(&self, key: &K, load: impl FnOnce() -> S) -> S
    where
        S: Clone,
    {
        self.get_or_load(key, load).clone()
    }
}

impl<K, S> BasePool<K, S> {
    /// How many base states have actually been built and loaded.
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// How many distinct base states the pool declares.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are declared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The engine: thread count, execution mode, and seed policy.
#[derive(Debug, Clone)]
pub struct Sweep {
    threads: usize,
    serial: bool,
    seed_policy: SeedPolicy,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

impl Sweep {
    /// A parallel sweep sized to the machine, fixed-seed policy.
    pub fn new() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, usize::from),
            serial: false,
            seed_policy: SeedPolicy::Fixed,
        }
    }

    /// Like [`Sweep::new`], honouring the `SWEEP_THREADS` (worker count)
    /// and `SWEEP_SERIAL` (any value: force serial) environment variables —
    /// the figure binaries' escape hatch.
    pub fn from_env() -> Self {
        let mut s = Self::new();
        if let Some(n) = std::env::var("SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            s = s.with_threads(n);
        }
        if std::env::var_os("SWEEP_SERIAL").is_some() {
            s = s.serial();
        }
        s
    }

    /// Set the worker count (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run cells one at a time, in order, on the calling thread — the
    /// reference execution that parallel runs must match bit-for-bit.
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Set the seed policy.
    pub fn with_seed_policy(mut self, policy: SeedPolicy) -> Self {
        self.seed_policy = policy;
        self
    }

    fn cell_seed(&self, root: u64, index: usize) -> u64 {
        match self.seed_policy {
            SeedPolicy::Fixed => root,
            SeedPolicy::PerCell => derive_seed(root, index),
        }
    }

    /// Run one cell closure over every spec in `cells`, returning results
    /// in spec order plus telemetry. The closure sees the cell's
    /// [`CellCtx`] (index, derived seed, worker) and its spec.
    pub fn run<T, R, F>(&self, root_seed: u64, cells: &[T], f: F) -> SweepOutcome<R>
    where
        T: Sync,
        R: Send,
        F: Fn(CellCtx, &T) -> R + Sync,
    {
        let n = cells.len();
        let workers = if self.serial {
            1
        } else {
            self.threads.min(n.max(1))
        };
        let started = Instant::now();

        let (results, stats, busy_us) = if workers <= 1 {
            let mut results = Vec::with_capacity(n);
            let mut stats = Vec::with_capacity(n);
            let mut busy = 0u64;
            for (i, cell) in cells.iter().enumerate() {
                let ctx = CellCtx {
                    index: i,
                    seed: self.cell_seed(root_seed, i),
                    worker: 0,
                };
                let t0 = Instant::now();
                results.push(f(ctx, cell));
                let wall_us = t0.elapsed().as_micros() as u64;
                busy += wall_us;
                stats.push(CellStat {
                    index: i,
                    worker: 0,
                    wall_us,
                });
            }
            (results, stats, vec![busy])
        } else {
            // One entry per worker: its total busy time plus every
            // `(cell index, result, cell wall time)` it produced.
            type WorkerOut<R> = Vec<(u64, Vec<(usize, R, u64)>)>;
            let next = AtomicUsize::new(0);
            let f = &f;
            let per_worker: WorkerOut<R> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let next = &next;
                        s.spawn(move || {
                            let mut out: Vec<(usize, R, u64)> = Vec::new();
                            let mut busy = 0u64;
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let ctx = CellCtx {
                                    index: i,
                                    seed: self.cell_seed(root_seed, i),
                                    worker,
                                };
                                let t0 = Instant::now();
                                let r = f(ctx, &cells[i]);
                                let wall_us = t0.elapsed().as_micros() as u64;
                                busy += wall_us;
                                out.push((i, r, wall_us));
                            }
                            (busy, out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });

            // Ordered collection: place every result at its cell index.
            let mut slots: Vec<Option<(R, CellStat)>> = (0..n).map(|_| None).collect();
            let mut busy_us = Vec::with_capacity(workers);
            for (worker, (busy, items)) in per_worker.into_iter().enumerate() {
                busy_us.push(busy);
                for (index, r, wall_us) in items {
                    slots[index] = Some((
                        r,
                        CellStat {
                            index,
                            worker,
                            wall_us,
                        },
                    ));
                }
            }
            let mut results = Vec::with_capacity(n);
            let mut stats = Vec::with_capacity(n);
            for slot in slots {
                let (r, stat) = slot.expect("every cell ran exactly once");
                results.push(r);
                stats.push(stat);
            }
            (results, stats, busy_us)
        };

        SweepOutcome {
            results,
            telemetry: Telemetry {
                cells: stats,
                workers,
                wall_us: started.elapsed().as_micros() as u64,
                busy_us,
                base_loads: 0,
                base_states: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<u64> = (0..57).collect();
        let out = Sweep::new().with_threads(7).run(1, &cells, |ctx, &c| {
            // Uneven work so workers finish out of order.
            let spin = (c % 5) * 40;
            let mut acc = ctx.seed;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(c);
            }
            (ctx.index as u64, c * 2, acc)
        });
        assert_eq!(out.results.len(), 57);
        for (i, (idx, doubled, _)) in out.results.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*doubled, cells[i] * 2);
        }
        assert_eq!(out.telemetry.cells.len(), 57);
        assert!(out.telemetry.workers <= 7);
    }

    #[test]
    fn fixed_policy_hands_every_cell_the_root_seed() {
        let cells = [0u8; 5];
        let out = Sweep::new().serial().run(99, &cells, |ctx, _| ctx.seed);
        assert!(out.results.iter().all(|&s| s == 99));
    }

    #[test]
    fn per_cell_policy_derives_distinct_streams() {
        let cells = [0u8; 8];
        let out = Sweep::new()
            .serial()
            .with_seed_policy(SeedPolicy::PerCell)
            .run(42, &cells, |ctx, _| ctx.seed);
        let mut seen = out.results.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "derived seeds must be distinct");
        assert_eq!(out.results[3], derive_seed(42, 3));
    }

    #[test]
    fn base_pool_loads_each_key_exactly_once() {
        let pool: BasePool<u32, Vec<u32>> = BasePool::new([1, 3, 6]);
        let cells: Vec<u32> = (0..20).flat_map(|_| [1u32, 3, 6]).collect();
        let out = Sweep::new().with_threads(8).run(0, &cells, |_, &rf| {
            let snap = pool.snapshot(&rf, || vec![rf; 4]);
            snap.len() as u32 + rf
        });
        assert_eq!(pool.loads(), 3, "each base state must load exactly once");
        assert!(out.results.iter().zip(&cells).all(|(r, rf)| *r == rf + 4));
        let mut telemetry = out.telemetry;
        telemetry.record_pool(&pool);
        assert_eq!(telemetry.base_loads, 3);
        assert_eq!(telemetry.base_states, 3);
        assert!(telemetry.summary().contains("3 base loads"));
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn base_pool_rejects_undeclared_keys() {
        let pool: BasePool<u32, u32> = BasePool::new([1, 2]);
        pool.get_or_load(&9, || 0);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // A cheap stand-in for a simulated run: a deterministic function of
        // (cell spec, derived seed).
        let cells: Vec<u64> = (0..40).map(|i| i * 31).collect();
        let run = |sweep: Sweep| {
            sweep
                .with_seed_policy(SeedPolicy::PerCell)
                .run(7, &cells, |ctx, &c| {
                    let mut acc = ctx.seed ^ c;
                    for _ in 0..(c % 11) {
                        acc = acc.rotate_left(13).wrapping_mul(0x2545F4914F6CDD1D);
                    }
                    acc
                })
                .results
        };
        assert_eq!(
            run(Sweep::new().with_threads(6)),
            run(Sweep::new().serial())
        );
    }

    #[test]
    fn empty_sweep_is_harmless() {
        let out = Sweep::new().run(1, &[] as &[u8], |_, _| 0u8);
        assert!(out.results.is_empty());
        assert_eq!(out.telemetry.utilization(), 0.0);
    }
}
