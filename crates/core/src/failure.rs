//! Figure 4: the failure-timeline experiment — crash/recover under load.
//!
//! The paper benchmarks replication and consistency strategies under
//! steady state; this experiment extends the methodology to the failure
//! case those strategies exist for. A constant-rate workload runs while a
//! declarative [`FaultPlan`] crashes one node at a virtual time and brings
//! it back later. Per-window timeline metrics expose the three phases the
//! availability literature (Pokluda et al., and the paper's §6 future
//! work) cares about: throughput before the fault, the dip and error
//! spike while the node is down, and how fully throughput recovers after
//! the node returns.
//!
//! Both stores run the identical plan: the HBase analog pays a detection
//! window (ZooKeeper-style failover delay) during which requests to the
//! victim's regions fail fast, then region movement plus WAL replay; the
//! Cassandra analog degrades per consistency level — CL=ONE mostly rides
//! through, write-ALL refuses writes on every range replicated on the
//! victim until it returns.

use faults::FaultPlan;
use simkit::NodeId;
use ycsb::{TimelineWindow, WorkloadSpec};

use crate::consistency::PAPER_LEVELS;
use crate::driver::{self, DriverConfig};
use crate::report::{fmt_ops, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore_with, build_hstore_with, Scale, StoreKind};
use crate::sweep::{BasePool, Sweep, Telemetry};

/// The consistency label used for the HBase analog, which has no
/// consistency knob (HBase is always strongly consistent).
pub const HSTORE_CL: &str = "strong";

/// Configuration of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct FailureConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Replication factors to sweep.
    pub rfs: Vec<u32>,
    /// Client threads.
    pub threads: usize,
    /// Cluster-wide target throughput; constant-rate so the timeline dip
    /// measures the store, not the load generator.
    pub target_ops_per_sec: f64,
    /// Warm-up completions.
    pub warmup_ops: u64,
    /// Measured completions.
    pub measure_ops: u64,
    /// Virtual time at which the victim crashes, µs from sim start.
    pub crash_at_us: u64,
    /// Virtual time at which the victim comes back, µs from sim start.
    pub recover_at_us: u64,
    /// Timeline bucket width, µs.
    pub window_us: u64,
    /// Client RPC timeout applied to both stores; short enough that an
    /// in-flight request stranded on the victim resolves within a couple
    /// of timeline windows.
    pub rpc_timeout_us: u64,
    /// HBase-analog failure-detection window (ZooKeeper session expiry +
    /// master reaction) between the crash and the region failover.
    pub failover_delay_us: u64,
    /// The node that crashes.
    pub victim: NodeId,
    /// The workload under which the failure happens.
    pub workload: WorkloadSpec,
    /// Seed.
    pub seed: u64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            rfs: vec![1, 3, 5],
            threads: 48,
            target_ops_per_sec: 3_000.0,
            warmup_ops: 2_000,
            measure_ops: 40_000,
            crash_at_us: 4_000_000,
            recover_at_us: 9_000_000,
            window_us: 250_000,
            rpc_timeout_us: 250_000,
            failover_delay_us: 2_000_000,
            victim: NodeId(0),
            workload: WorkloadSpec::read_update(),
            seed: 42,
        }
    }
}

impl FailureConfig {
    /// A fast variant for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            rfs: vec![1, 3, 5],
            threads: 8,
            target_ops_per_sec: 2_000.0,
            warmup_ops: 400,
            measure_ops: 5_600,
            crash_at_us: 900_000,
            recover_at_us: 1_800_000,
            window_us: 150_000,
            rpc_timeout_us: 120_000,
            failover_delay_us: 300_000,
            victim: NodeId(0),
            workload: WorkloadSpec::read_update(),
            seed: 42,
        }
    }
}

/// One (store, RF, consistency) failure timeline with its phase summary.
#[derive(Debug, Clone)]
pub struct FailureCell {
    /// Which store.
    pub store: StoreKind,
    /// Replication factor.
    pub rf: u32,
    /// Consistency strategy name ([`HSTORE_CL`] for the HBase analog).
    pub cl: &'static str,
    /// Mean throughput over full windows before the crash, ops/s.
    pub pre_tput: f64,
    /// Mean throughput over windows inside the crash window, ops/s.
    pub fault_tput: f64,
    /// Worst single-window throughput inside the crash window, ops/s.
    pub fault_min_tput: f64,
    /// Errors accumulated inside the crash window.
    pub fault_errors: u64,
    /// Mean throughput after recovery settles, ops/s.
    pub post_tput: f64,
    /// Fault events the injector applied (crash + recover = 2).
    pub faults_injected: u64,
    /// The full per-window timeline.
    pub windows: Vec<TimelineWindow>,
}

/// The full Fig. 4 result.
#[derive(Debug, Clone)]
pub struct FailureResult {
    /// All measured cells.
    pub cells: Vec<FailureCell>,
    /// Crash time, µs (for rendering).
    pub crash_at_us: u64,
    /// Recovery time, µs (for rendering).
    pub recover_at_us: u64,
    /// Workload name (for rendering).
    pub workload: String,
    /// What the sweep cost (wall time, utilization, base loads).
    pub telemetry: Telemetry,
}

/// Phase aggregates extracted from one timeline.
struct PhaseStats {
    pre: f64,
    fault: f64,
    fault_min: f64,
    fault_errors: u64,
    post: f64,
}

/// Split a timeline into the pre/fault/post phases of one crash window.
///
/// * *pre* — full windows ending at or before the crash, skipping the
///   first window (thread-stagger ramp) when more than one qualifies;
/// * *fault* — windows starting inside `[crash_at, recover_at)`;
/// * *post* — windows starting at least one full window after recovery
///   (the recovery transient — hint replay, cache refill — belongs to
///   neither phase), excluding the final window, which the end of the
///   run truncates.
fn phase_stats(
    windows: &[TimelineWindow],
    crash_at: u64,
    recover_at: u64,
    window_us: u64,
) -> PhaseStats {
    let mean = |ws: &[&TimelineWindow]| -> f64 {
        if ws.is_empty() {
            0.0
        } else {
            ws.iter().map(|w| w.ops_per_sec).sum::<f64>() / ws.len() as f64
        }
    };
    let pre_all: Vec<&TimelineWindow> = windows.iter().filter(|w| w.end_us <= crash_at).collect();
    let pre = if pre_all.len() > 1 {
        &pre_all[1..]
    } else {
        &pre_all[..]
    };
    let fault: Vec<&TimelineWindow> = windows
        .iter()
        .filter(|w| w.start_us >= crash_at && w.start_us < recover_at)
        .collect();
    let last_start = windows.last().map_or(0, |w| w.start_us);
    let post: Vec<&TimelineWindow> = windows
        .iter()
        .filter(|w| w.start_us >= recover_at + window_us && w.start_us < last_start)
        .collect();
    PhaseStats {
        pre: mean(pre),
        fault: mean(&fault),
        fault_min: if fault.is_empty() {
            0.0
        } else {
            fault
                .iter()
                .map(|w| w.ops_per_sec)
                .fold(f64::INFINITY, f64::min)
        },
        fault_errors: fault.iter().map(|w| w.errors).sum(),
        post: mean(&post),
    }
}

impl FailureResult {
    /// The cell for a specific point.
    pub fn cell(&self, store: StoreKind, rf: u32, cl: &str) -> Option<&FailureCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.rf == rf && c.cl == cl)
    }

    /// Render the phase-summary table — one row per (store, RF, CL) with
    /// pre/fault/post throughput, the worst fault window, the error
    /// spike, and how fully throughput recovered.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            &format!(
                "Fig. 4 — failure timeline: crash t={:.1}s, recover t={:.1}s ({})",
                self.crash_at_us as f64 / 1e6,
                self.recover_at_us as f64 / 1e6,
                self.workload,
            ),
            &[
                "store",
                "rf",
                "cl",
                "pre tput",
                "fault tput",
                "fault min",
                "fault errors",
                "post tput",
                "recovery",
            ],
        );
        for c in &self.cells {
            let recovery = if c.pre_tput > 0.0 {
                format!("{:.0}%", c.post_tput / c.pre_tput * 100.0)
            } else {
                "-".to_owned()
            };
            t.row(vec![
                c.store.short().into(),
                c.rf.to_string(),
                c.cl.into(),
                fmt_ops(c.pre_tput),
                fmt_ops(c.fault_tput),
                fmt_ops(c.fault_min_tput),
                c.fault_errors.to_string(),
                fmt_ops(c.post_tput),
                recovery,
            ]);
        }
        t.render()
    }

    /// CSV table: one row per timeline window per cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fig4_failure",
            &[
                "store",
                "rf",
                "cl",
                "window_start_us",
                "ops",
                "ops_per_sec",
                "mean_us",
                "p95_us",
                "p99_us",
                "errors",
            ],
        );
        for c in &self.cells {
            for w in &c.windows {
                t.row(vec![
                    c.store.short().into(),
                    c.rf.to_string(),
                    c.cl.into(),
                    w.start_us.to_string(),
                    w.ops.to_string(),
                    format!("{:.1}", w.ops_per_sec),
                    format!("{:.1}", w.mean_us),
                    w.p95_us.to_string(),
                    w.p99_us.to_string(),
                    w.errors.to_string(),
                ]);
            }
        }
        t
    }
}

/// Run the full Fig. 4 experiment through the sweep engine.
pub fn run_failure(cfg: &FailureConfig) -> FailureResult {
    run_failure_with(cfg, &Sweep::from_env())
}

/// [`run_failure`] on a caller-configured engine.
pub fn run_failure_with(cfg: &FailureConfig, sweep: &Sweep) -> FailureResult {
    // One cell per (store, RF, consistency level): the HBase analog has a
    // single implicit level; the Cassandra analog sweeps the paper's
    // three. Consistency is baked into the cstore config, so each cell
    // gets its own loaded base (pooled only for telemetry accounting).
    let specs: Vec<(StoreKind, u32, usize)> = cfg
        .rfs
        .iter()
        .flat_map(|&rf| {
            std::iter::once((StoreKind::HStore, rf, 0))
                .chain((0..PAPER_LEVELS.len()).map(move |l| (StoreKind::CStore, rf, l)))
        })
        .collect();
    let hpool: BasePool<u32, hstore::Cluster> = BasePool::new(cfg.rfs.iter().copied());
    let cpool: BasePool<(u32, usize), cstore::Cluster> = BasePool::new(
        cfg.rfs
            .iter()
            .flat_map(|&rf| (0..PAPER_LEVELS.len()).map(move |l| (rf, l))),
    );

    let outcome = sweep.run(cfg.seed, &specs, |ctx, &(store, rf, l)| {
        let dcfg = DriverConfig {
            workload: cfg.workload.clone(),
            threads: cfg.threads,
            target_ops_per_sec: cfg.target_ops_per_sec,
            records: cfg.scale.records,
            value_len: cfg.scale.value_len,
            warmup_ops: cfg.warmup_ops,
            measure_ops: cfg.measure_ops,
            seed: ctx.seed,
            faults: FaultPlan::new().crash_window(cfg.victim, cfg.crash_at_us, cfg.recover_at_us),
            timeline_window_us: cfg.window_us,
            // Fig. 4 keeps the paper's fair-weather client; Fig. 5 reruns
            // this plan under real retry policies.
            retry: RetryPolicy::none(),
            trace: obs::TraceConfig::off(),
            audit: audit::AuditConfig::off(),
            arrival: crate::driver::ArrivalMode::ClosedLoop,
        };
        let (cl, out) = match store {
            StoreKind::HStore => {
                let mut snapshot = hpool
                    .get_or_load(&rf, || {
                        let mut base = build_hstore_with(&cfg.scale, rf, |c| {
                            c.rpc_timeout_us = cfg.rpc_timeout_us;
                            c.failover_delay_us = cfg.failover_delay_us;
                        });
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (HSTORE_CL, driver::run(&mut snapshot, &dcfg))
            }
            StoreKind::CStore => {
                let level = PAPER_LEVELS[l];
                let mut snapshot = cpool
                    .get_or_load(&(rf, l), || {
                        let mut base =
                            build_cstore_with(&cfg.scale, rf, level.read, level.write, |c| {
                                c.rpc_timeout_us = cfg.rpc_timeout_us;
                            });
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                (level.name, driver::run(&mut snapshot, &dcfg))
            }
        };
        let windows = out
            .metrics
            .timeline()
            .map(|t| t.windows())
            .unwrap_or_default();
        let ph = phase_stats(&windows, cfg.crash_at_us, cfg.recover_at_us, cfg.window_us);
        FailureCell {
            store,
            rf,
            cl,
            pre_tput: ph.pre,
            fault_tput: ph.fault,
            fault_min_tput: ph.fault_min,
            fault_errors: ph.fault_errors,
            post_tput: ph.post,
            faults_injected: out.faults_injected,
            windows,
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&hpool);
    telemetry.record_pool(&cpool);
    let mut cells = outcome.results;
    cells.sort_by(|a, b| (a.store.short(), a.rf, a.cl).cmp(&(b.store.short(), b.rf, b.cl)));
    FailureResult {
        cells,
        crash_at_us: cfg.crash_at_us,
        recover_at_us: cfg.recover_at_us,
        workload: cfg.workload.name.clone(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_failure_produces_all_cells() {
        let cfg = FailureConfig::quick();
        let res = run_failure(&cfg);
        // 3 RFs × (1 hstore level + 3 cstore levels).
        assert_eq!(res.cells.len(), 12);
        for c in &res.cells {
            assert_eq!(c.faults_injected, 2, "{}/{}/{}", c.store, c.rf, c.cl);
            assert!(!c.windows.is_empty());
            assert!(c.pre_tput > 0.0, "{}/{}/{}", c.store, c.rf, c.cl);
        }
        let rendered = res.render();
        assert!(rendered.contains("Fig. 4"));
        assert!(rendered.contains("strong"));
        // The CSV has one row per window per cell.
        let total_windows: usize = res.cells.iter().map(|c| c.windows.len()).sum();
        assert_eq!(res.table().rows.len(), total_windows);
    }

    #[test]
    fn rf3_dips_and_recovers_for_both_stores() {
        let cfg = FailureConfig::quick();
        let res = run_failure(&cfg);
        // The acceptance shape: at RF=3 both stores show a throughput dip
        // and an error spike inside the crash window, then recover to
        // within 10% of the pre-fault throughput.
        for (store, cl) in [
            (StoreKind::HStore, HSTORE_CL),
            (StoreKind::CStore, "write ALL"),
        ] {
            let c = res.cell(store, 3, cl).expect("cell exists");
            assert!(c.fault_errors > 0, "no error spike: {c:?}");
            assert!(
                c.fault_min_tput < 0.9 * c.pre_tput,
                "no dip: min {} vs pre {} ({}/{})",
                c.fault_min_tput,
                c.pre_tput,
                c.store,
                c.cl
            );
            let dev = (c.post_tput - c.pre_tput).abs() / c.pre_tput;
            assert!(
                dev < 0.10,
                "poor recovery: post {} vs pre {} ({}/{})",
                c.post_tput,
                c.pre_tput,
                c.store,
                c.cl
            );
        }
    }

    #[test]
    fn cl_one_rides_through_better_than_write_all() {
        let cfg = FailureConfig::quick();
        let res = run_failure(&cfg);
        // CL=ONE skips the dead replica (1 ack suffices, hints queue for
        // the victim), so its fault-phase throughput beats write-ALL's,
        // which refuses every write replicated on the victim.
        let one = res.cell(StoreKind::CStore, 3, "ONE").unwrap();
        let all = res.cell(StoreKind::CStore, 3, "write ALL").unwrap();
        assert!(
            one.fault_tput > all.fault_tput,
            "ONE {} should out-serve write-ALL {} during the outage",
            one.fault_tput,
            all.fault_tput
        );
        assert!(one.fault_errors <= all.fault_errors);
    }
}
