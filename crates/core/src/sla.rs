//! SLA-based stress specification — the paper's §6 future work, implemented.
//!
//! "Another way to specify the stress level is using the service level
//! agreement, SLA. An SLA is commonly specified like this: at least p
//! percentage of requests get response within l latency... Using the SLA,
//! we can keep user experiences at same level to compare throughputs of
//! different systems. However, it is hard to specify an SLA using YCSB. We
//! need to extend it." — this module is that extension: it searches for the
//! highest target throughput whose measured latency quantile still meets the
//! SLA, via bisection over throttled runs.

use ycsb::WorkloadSpec;

use faults::FaultTarget;

use crate::driver::{self, DriverConfig};
use crate::report::{fmt_ops, fmt_us, Table};
use crate::resilience::RetryPolicy;
use crate::setup::Scale;
use crate::store::SimStore;
use crate::sweep::Sweep;

/// A service-level agreement: quantile `percentile` of request latencies
/// must be at or below `latency_us`, with at most `error_budget` of
/// requests failing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// The guaranteed quantile, e.g. `0.95`.
    pub percentile: f64,
    /// The latency bound at that quantile, microseconds.
    pub latency_us: u64,
    /// Tolerated fraction of failed requests in `[0, 1]`. `0` (the strict
    /// default) fails the SLA on any error; production agreements budget a
    /// small fraction so a single fault-window error — or a deliberately
    /// shed request — doesn't void certification. Shed/errored ops consume
    /// budget but contribute no latency samples.
    pub error_budget: f64,
}

impl Sla {
    /// A typical interactive-service agreement: p95 ≤ 10 ms, zero errors.
    pub fn p95_10ms() -> Self {
        Self {
            percentile: 0.95,
            latency_us: 10_000,
            error_budget: 0.0,
        }
    }

    /// This agreement with an error budget: up to `budget` (a fraction of
    /// all requests) may fail without voiding it.
    pub fn with_error_budget(mut self, budget: f64) -> Self {
        self.error_budget = budget;
        self
    }

    /// Does a run outcome satisfy the agreement? Errors (including shed
    /// ops) are compared against the budget as a fraction of all settled
    /// requests; the latency quantile is taken over successes only.
    pub fn met_by(&self, outcome: &driver::RunOutcome) -> bool {
        let total = outcome.metrics.ops() + outcome.errors;
        let within_budget = if outcome.errors == 0 {
            true
        } else {
            total > 0 && outcome.errors as f64 <= self.error_budget * total as f64
        };
        within_budget && outcome.metrics.overall().quantile(self.percentile) <= self.latency_us
    }
}

impl std::fmt::Display for Sla {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p{:02.0} <= {}",
            self.percentile * 100.0,
            fmt_us(self.latency_us as f64)
        )
    }
}

/// Result of an SLA capacity search.
#[derive(Debug, Clone)]
pub struct SlaCapacity {
    /// The SLA searched against.
    pub sla: Sla,
    /// Highest target throughput (ops/s) that still met the SLA; 0 when even
    /// the lowest probe violated it.
    pub capacity: f64,
    /// The measured quantile at that capacity.
    pub quantile_at_capacity: u64,
    /// Probes performed: `(target, measured quantile, met)`.
    pub probes: Vec<(f64, u64, bool)>,
}

/// Search knobs.
#[derive(Debug, Clone)]
pub struct SlaSearchConfig {
    /// Record/cache scale (the store must be loaded at this scale).
    pub scale: Scale,
    /// The workload to certify.
    pub workload: WorkloadSpec,
    /// The agreement.
    pub sla: Sla,
    /// Client threads.
    pub threads: usize,
    /// Lowest target probed.
    pub floor: f64,
    /// Highest target probed.
    pub ceiling: f64,
    /// Bisection iterations (each is one simulated run).
    pub iterations: u32,
    /// Completions per probe.
    pub measure_ops: u64,
    /// Warm-up completions per probe.
    pub warmup_ops: u64,
    /// Seed.
    pub seed: u64,
}

impl SlaSearchConfig {
    /// Defaults for a loaded store at `scale`.
    pub fn new(scale: Scale, workload: WorkloadSpec, sla: Sla) -> Self {
        Self {
            scale,
            workload,
            sla,
            threads: 64,
            floor: 500.0,
            ceiling: 120_000.0,
            iterations: 8,
            measure_ops: 10_000,
            warmup_ops: 1_000,
            seed: 42,
        }
    }
}

/// Find the highest target throughput that meets the SLA, by bisection over
/// throttled runs against snapshots of `base` (which must already be
/// loaded).
pub fn find_sla_capacity<S>(base: &S, cfg: &SlaSearchConfig) -> SlaCapacity
where
    S: SimStore + FaultTarget<Event = <S as SimStore>::Event> + Clone + Sync,
{
    find_sla_capacity_with(base, cfg, &Sweep::from_env())
}

/// [`find_sla_capacity`] on a caller-configured engine. The bisection is
/// inherently sequential (each midpoint depends on the previous verdict),
/// so each probe runs as a single engine cell: one snapshot clone, one
/// deterministic driver run.
pub fn find_sla_capacity_with<S>(base: &S, cfg: &SlaSearchConfig, sweep: &Sweep) -> SlaCapacity
where
    S: SimStore + FaultTarget<Event = <S as SimStore>::Event> + Clone + Sync,
{
    let mut probes = Vec::new();
    let probe = |target: f64| -> (u64, bool) {
        sweep
            .run(cfg.seed, &[target], |ctx, &target| {
                let mut snapshot = base.snapshot();
                let dcfg = DriverConfig {
                    workload: cfg.workload.clone(),
                    threads: cfg.threads,
                    target_ops_per_sec: target,
                    records: cfg.scale.records,
                    value_len: cfg.scale.value_len,
                    warmup_ops: cfg.warmup_ops,
                    measure_ops: cfg.measure_ops,
                    seed: ctx.seed,
                    faults: Default::default(),
                    timeline_window_us: 0,
                    retry: RetryPolicy::none(),
                    trace: obs::TraceConfig::off(),
                    audit: audit::AuditConfig::off(),
                    arrival: crate::driver::ArrivalMode::ClosedLoop,
                };
                let out = driver::run(&mut snapshot, &dcfg);
                let q = out.metrics.overall().quantile(cfg.sla.percentile);
                // The probe must also have *achieved* the target (within
                // 10%): a throttled run that can't keep up fails the SLA
                // definitionally.
                let achieved = out.throughput >= target * 0.9;
                let met = cfg.sla.met_by(&out) && achieved;
                (q, met)
            })
            .results[0]
    };

    let (q_floor, floor_ok) = probe(cfg.floor);
    probes.push((cfg.floor, q_floor, floor_ok));
    if !floor_ok {
        return SlaCapacity {
            sla: cfg.sla,
            capacity: 0.0,
            quantile_at_capacity: q_floor,
            probes,
        };
    }
    let mut lo = cfg.floor;
    let mut lo_q = q_floor;
    let mut hi = cfg.ceiling;
    let (q_hi, hi_ok) = probe(hi);
    probes.push((hi, q_hi, hi_ok));
    if hi_ok {
        return SlaCapacity {
            sla: cfg.sla,
            capacity: hi,
            quantile_at_capacity: q_hi,
            probes,
        };
    }
    for _ in 0..cfg.iterations {
        let mid = (lo + hi) / 2.0;
        let (q, ok) = probe(mid);
        probes.push((mid, q, ok));
        if ok {
            lo = mid;
            lo_q = q;
        } else {
            hi = mid;
        }
    }
    SlaCapacity {
        sla: cfg.sla,
        capacity: lo,
        quantile_at_capacity: lo_q,
        probes,
    }
}

/// Render a set of named capacity results as a table.
pub fn capacity_table(title: &str, rows: &[(&str, &SlaCapacity)]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "system",
            "sla",
            "certified capacity",
            "quantile at capacity",
        ],
    );
    for (name, cap) in rows {
        t.row(vec![
            (*name).to_owned(),
            cap.sla.to_string(),
            fmt_ops(cap.capacity),
            fmt_us(cap.quantile_at_capacity as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{build_cstore, Scale};
    use cstore::Consistency;

    fn quick_search(scale: Scale, sla: Sla) -> SlaSearchConfig {
        SlaSearchConfig {
            threads: 8,
            floor: 100.0,
            ceiling: 20_000.0,
            iterations: 5,
            measure_ops: 1_200,
            warmup_ops: 150,
            ..SlaSearchConfig::new(scale, WorkloadSpec::read_mostly(), sla)
        }
    }

    #[test]
    fn sla_capacity_is_between_floor_and_ceiling() {
        let scale = Scale::tiny();
        let mut base = build_cstore(&scale, 2, Consistency::One, Consistency::One);
        driver::load(&mut base, scale.records, scale.value_len, 1);
        let cfg = quick_search(scale, Sla::p95_10ms());
        let cap = find_sla_capacity(&base, &cfg);
        assert!(cap.capacity >= cfg.floor, "capacity {}", cap.capacity);
        assert!(cap.capacity <= cfg.ceiling);
        assert!(!cap.probes.is_empty());
        // At the certified capacity the quantile respects the bound.
        assert!(cap.quantile_at_capacity <= cap.sla.latency_us);
    }

    #[test]
    fn impossible_sla_certifies_zero() {
        let scale = Scale::tiny();
        let mut base = build_cstore(&scale, 2, Consistency::One, Consistency::One);
        driver::load(&mut base, scale.records, scale.value_len, 1);
        let sla = Sla {
            percentile: 0.95,
            latency_us: 1, // nothing responds in a microsecond
            error_budget: 0.0,
        };
        let cap = find_sla_capacity(&base, &quick_search(scale, sla));
        assert_eq!(cap.capacity, 0.0);
    }

    #[test]
    fn tighter_sla_certifies_no_more_capacity() {
        let scale = Scale::tiny();
        let mut base = build_cstore(&scale, 2, Consistency::One, Consistency::One);
        driver::load(&mut base, scale.records, scale.value_len, 1);
        let loose = find_sla_capacity(
            &base,
            &quick_search(
                scale,
                Sla {
                    percentile: 0.95,
                    latency_us: 50_000,
                    error_budget: 0.0,
                },
            ),
        );
        let tight = find_sla_capacity(
            &base,
            &quick_search(
                scale,
                Sla {
                    percentile: 0.95,
                    latency_us: 3_000,
                    error_budget: 0.0,
                },
            ),
        );
        assert!(
            tight.capacity <= loose.capacity,
            "tight {} > loose {}",
            tight.capacity,
            loose.capacity
        );
    }

    #[test]
    fn error_budget_tolerates_bounded_failures() {
        // Synthesize outcomes via a real quick run, then perturb the error
        // count: the budget, not a hard zero, decides.
        let scale = Scale::tiny();
        let mut base = build_cstore(&scale, 2, Consistency::One, Consistency::One);
        driver::load(&mut base, scale.records, scale.value_len, 1);
        let cfg = DriverConfig {
            threads: 8,
            warmup_ops: 100,
            measure_ops: 500,
            value_len: scale.value_len,
            ..DriverConfig::new(WorkloadSpec::read_mostly(), scale.records)
        };
        let mut out = driver::run(&mut base, &cfg);
        let loose = Sla {
            percentile: 0.95,
            latency_us: u64::MAX,
            error_budget: 0.0,
        };
        assert!(loose.met_by(&out), "clean run meets a zero-budget SLA");
        out.errors = 3; // a fault window's worth of failures
        assert!(!loose.met_by(&out), "zero budget still fails on any error");
        assert!(
            loose.with_error_budget(0.01).met_by(&out),
            "3 errors in ~500 ops fit a 1% budget"
        );
        assert!(
            !loose.with_error_budget(0.001).met_by(&out),
            "3 errors in ~500 ops exceed a 0.1% budget"
        );
    }

    #[test]
    fn sla_display_and_table() {
        let sla = Sla::p95_10ms();
        assert_eq!(sla.to_string(), "p95 <= 10.00ms");
        let cap = SlaCapacity {
            sla,
            capacity: 12_500.0,
            quantile_at_capacity: 8_000,
            probes: vec![],
        };
        let t = capacity_table("demo", &[("cstore", &cap)]);
        assert!(t.render().contains("12.5k"));
    }
}
