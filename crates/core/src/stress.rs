//! Figure 2: the stress benchmark for replication.
//!
//! "In this benchmark, we use a constant number of test threads and a
//! variety of target throughputs to detect the peak runtime throughput and
//! the corresponding latency of databases. We conduct six rounds of testing
//! [RF 1..6], and the read latest / scan short ranges / read mostly /
//! read-modify-write / read & update test is run one after another."

use ycsb::WorkloadSpec;

use crate::driver::{self, DriverConfig};
use crate::report::{fmt_ops, fmt_us, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore, build_hstore, Scale, StoreKind};
use crate::store::SimStore;
use crate::sweep::{BasePool, Sweep, Telemetry};
use cstore::Consistency;

/// Configuration of the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Replication factors to sweep.
    pub rfs: Vec<u32>,
    /// The workloads (default: the paper's five, in its order).
    pub workloads: Vec<WorkloadSpec>,
    /// Constant client thread count.
    pub threads: usize,
    /// Target throughputs probed per cell; `0.0` = unthrottled (probes the
    /// closed-loop peak directly).
    pub targets: Vec<f64>,
    /// Warm-up completions per run.
    pub warmup_ops: u64,
    /// Measured completions per run.
    pub measure_ops: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            rfs: (1..=6).collect(),
            workloads: WorkloadSpec::paper_stress_workloads(),
            threads: 64,
            targets: vec![0.0],
            warmup_ops: 2_000,
            measure_ops: 20_000,
            seed: 42,
        }
    }
}

impl StressConfig {
    /// A fast variant for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            rfs: vec![1, 3],
            workloads: vec![WorkloadSpec::read_mostly(), WorkloadSpec::read_latest()],
            threads: 16,
            targets: vec![0.0],
            warmup_ops: 200,
            measure_ops: 1_500,
            seed: 42,
        }
    }
}

/// The peak point for one (store, RF, workload).
#[derive(Debug, Clone)]
pub struct StressCell {
    /// Which store.
    pub store: StoreKind,
    /// Replication factor.
    pub rf: u32,
    /// Workload name.
    pub workload: String,
    /// Peak runtime throughput across the probed targets, ops/s.
    pub peak_throughput: f64,
    /// Mean latency at the peak, µs.
    pub mean_us: f64,
    /// 95th-percentile latency at the peak, µs.
    pub p95_us: u64,
    /// Stale-read fraction observed at the peak.
    pub stale_fraction: f64,
    /// Errors at the peak.
    pub errors: u64,
}

/// The full Fig. 2 result.
#[derive(Debug, Clone)]
pub struct StressResult {
    /// All peak cells.
    pub cells: Vec<StressCell>,
    /// What the sweep cost (wall time, utilization, base loads).
    pub telemetry: Telemetry,
}

impl StressResult {
    /// The cell for a point.
    pub fn cell(&self, store: StoreKind, rf: u32, workload: &str) -> Option<&StressCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.rf == rf && c.workload == workload)
    }

    /// Throughput series for `(store, workload)` ordered by RF.
    pub fn throughput_series(&self, store: StoreKind, workload: &str) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .cells
            .iter()
            .filter(|c| c.store == store && c.workload == workload)
            .map(|c| (c.rf, c.peak_throughput))
            .collect();
        v.sort_by_key(|&(rf, _)| rf);
        v
    }

    /// Latency series for `(store, workload)` ordered by RF.
    pub fn latency_series(&self, store: StoreKind, workload: &str) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .cells
            .iter()
            .filter(|c| c.store == store && c.workload == workload)
            .map(|c| (c.rf, c.mean_us))
            .collect();
        v.sort_by_key(|&(rf, _)| rf);
        v
    }

    /// Render one table per (store, workload): RF rows with throughput and
    /// latency — the two panels of each Fig. 2 sub-plot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut keys: Vec<(StoreKind, String)> = self
            .cells
            .iter()
            .map(|c| (c.store, c.workload.clone()))
            .collect();
        keys.sort_by(|a, b| (a.0.short(), &a.1).cmp(&(b.0.short(), &b.1)));
        keys.dedup();
        for (store, workload) in keys {
            let mut t = Table::new(
                &format!("Fig. 2 — stress: {workload} on {}", store.label()),
                &[
                    "rf",
                    "peak throughput",
                    "mean latency",
                    "p95 latency",
                    "stale%",
                ],
            );
            let mut rows: Vec<&StressCell> = self
                .cells
                .iter()
                .filter(|c| c.store == store && c.workload == workload)
                .collect();
            rows.sort_by_key(|c| c.rf);
            for c in rows {
                t.row(vec![
                    c.rf.to_string(),
                    fmt_ops(c.peak_throughput),
                    fmt_us(c.mean_us),
                    fmt_us(c.p95_us as f64),
                    format!("{:.3}%", c.stale_fraction * 100.0),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// CSV table of every cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fig2_stress_replication",
            &[
                "store",
                "rf",
                "workload",
                "peak_throughput",
                "mean_us",
                "p95_us",
                "stale_fraction",
                "errors",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.store.short().into(),
                c.rf.to_string(),
                c.workload.clone(),
                format!("{:.1}", c.peak_throughput),
                format!("{:.1}", c.mean_us),
                c.p95_us.to_string(),
                format!("{:.5}", c.stale_fraction),
                c.errors.to_string(),
            ]);
        }
        t
    }
}

/// Probe every target against snapshots of one loaded base and keep the
/// peak.
fn run_cell<S: SimStore + faults::FaultTarget<Event = <S as SimStore>::Event> + Clone>(
    base: &S,
    store: StoreKind,
    rf: u32,
    workload: &WorkloadSpec,
    cfg: &StressConfig,
    seed: u64,
) -> StressCell {
    let mut best: Option<(f64, crate::driver::RunOutcome)> = None;
    for &target in &cfg.targets {
        let mut snapshot = base.snapshot();
        let dcfg = DriverConfig {
            workload: workload.clone(),
            threads: cfg.threads,
            target_ops_per_sec: target,
            records: cfg.scale.records,
            value_len: cfg.scale.value_len,
            warmup_ops: cfg.warmup_ops,
            measure_ops: cfg.measure_ops,
            seed,
            faults: Default::default(),
            timeline_window_us: 0,
            retry: RetryPolicy::none(),
            trace: obs::TraceConfig::off(),
            audit: audit::AuditConfig::off(),
            arrival: crate::driver::ArrivalMode::ClosedLoop,
        };
        let out = driver::run(&mut snapshot, &dcfg);
        if best.as_ref().is_none_or(|(t, _)| out.throughput > *t) {
            best = Some((out.throughput, out));
        }
    }
    let (_, out) = best.expect("at least one target probed");
    StressCell {
        store,
        rf,
        workload: workload.name.clone(),
        peak_throughput: out.throughput,
        mean_us: out.mean_latency_us,
        p95_us: out.metrics.overall().p95(),
        stale_fraction: out.stale_fraction,
        errors: out.errors,
    }
}

/// Run the full Fig. 2 experiment through the sweep engine.
pub fn run_stress(cfg: &StressConfig) -> StressResult {
    run_stress_with(cfg, &Sweep::from_env())
}

/// [`run_stress`] on a caller-configured engine.
pub fn run_stress_with(cfg: &StressConfig, sweep: &Sweep) -> StressResult {
    // One cell per (store, RF, workload); the target probes within a cell
    // stay sequential (they share the cell's peak detection).
    let specs: Vec<(StoreKind, u32, usize)> = cfg
        .rfs
        .iter()
        .flat_map(|&rf| {
            [StoreKind::HStore, StoreKind::CStore]
                .into_iter()
                .flat_map(move |store| (0..cfg.workloads.len()).map(move |w| (store, rf, w)))
        })
        .collect();
    let hpool: BasePool<u32, hstore::Cluster> = BasePool::new(cfg.rfs.iter().copied());
    let cpool: BasePool<u32, cstore::Cluster> = BasePool::new(cfg.rfs.iter().copied());

    let outcome = sweep.run(cfg.seed, &specs, |ctx, &(store, rf, w)| {
        let workload = &cfg.workloads[w];
        match store {
            StoreKind::HStore => {
                let base = hpool.get_or_load(&rf, || {
                    let mut base = build_hstore(&cfg.scale, rf);
                    driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                    base
                });
                run_cell(base, store, rf, workload, cfg, ctx.seed)
            }
            StoreKind::CStore => {
                let base = cpool.get_or_load(&rf, || {
                    let mut base = build_cstore(&cfg.scale, rf, Consistency::One, Consistency::One);
                    driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                    base
                });
                run_cell(base, store, rf, workload, cfg, ctx.seed)
            }
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&hpool);
    telemetry.record_pool(&cpool);
    let mut cells = outcome.results;
    cells.sort_by(|a, b| {
        (a.store.short(), a.rf, &a.workload).cmp(&(b.store.short(), b.rf, &b.workload))
    });
    StressResult { cells, telemetry }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_stress_produces_all_cells() {
        let cfg = StressConfig::quick();
        let res = run_stress(&cfg);
        // 2 stores × 2 RFs × 2 workloads.
        assert_eq!(res.cells.len(), 8);
        for c in &res.cells {
            assert!(c.peak_throughput > 0.0, "{c:?}");
            assert!(c.mean_us > 0.0);
        }
        assert!(res.render().contains("Fig. 2"));
        let series = res.throughput_series(StoreKind::HStore, "read mostly");
        assert_eq!(series.len(), 2);
        // 2 stores × 2 RFs base states, each loaded once.
        assert_eq!(res.telemetry.base_loads, 4);
    }
}
