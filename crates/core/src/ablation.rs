//! Beyond-paper ablations and extension experiments.
//!
//! The paper's §6 lists what its single-rack testbed could not do; these
//! experiments cover the design-choice ablations DESIGN.md calls out:
//!
//! * **read repair on/off** — isolates the mechanism the paper blames for
//!   Cassandra's read-latency growth at RF > 3;
//! * **commit-log durability** — periodic (the paper's deployment) vs
//!   per-write sync, isolating the mechanism behind flat write latency;
//! * **failover** — Pokluda et al.-style availability: throughput and
//!   errors before, during, and after a node failure.

use cstore::{CommitlogSync, Consistency};
use faults::FaultPlan;
use simkit::NodeId;
use ycsb::WorkloadSpec;

use crate::driver::{self, DriverConfig};
use crate::report::{fmt_ops, fmt_us, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{build_cstore_with, build_hstore, Scale, StoreKind};
use crate::store::SimStore;
use crate::sweep::Sweep;

/// Shared knobs for the ablation runs.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Record/cache scale.
    pub scale: Scale,
    /// Client threads.
    pub threads: usize,
    /// Warm-up completions per run.
    pub warmup_ops: u64,
    /// Measured completions per run.
    pub measure_ops: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            threads: 64,
            warmup_ops: 2_000,
            measure_ops: 15_000,
            seed: 42,
        }
    }
}

impl AblationConfig {
    /// A fast variant for tests.
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            threads: 8,
            warmup_ops: 100,
            measure_ops: 800,
            seed: 42,
        }
    }

    fn driver(&self, workload: WorkloadSpec) -> DriverConfig {
        DriverConfig {
            workload,
            threads: self.threads,
            target_ops_per_sec: 0.0,
            records: self.scale.records,
            value_len: self.scale.value_len,
            warmup_ops: self.warmup_ops,
            measure_ops: self.measure_ops,
            seed: self.seed,
            faults: Default::default(),
            timeline_window_us: 0,
            retry: RetryPolicy::none(),
            trace: obs::TraceConfig::off(),
            audit: audit::AuditConfig::off(),
            arrival: crate::driver::ArrivalMode::ClosedLoop,
        }
    }
}

/// One labelled measurement row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Runtime throughput, ops/s.
    pub throughput: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Stale-read fraction.
    pub stale_fraction: f64,
    /// Errors in the measured window.
    pub errors: u64,
}

fn to_row<S: SimStore>(variant: &str, out: &driver::RunOutcome, _store: &S) -> AblationRow {
    AblationRow {
        variant: variant.to_owned(),
        throughput: out.throughput,
        mean_us: out.mean_latency_us,
        stale_fraction: out.stale_fraction,
        errors: out.errors,
    }
}

fn rows_table(title: &str, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        title,
        &["variant", "throughput", "mean latency", "stale%", "errors"],
    );
    for r in rows {
        t.row(vec![
            r.variant.clone(),
            fmt_ops(r.throughput),
            fmt_us(r.mean_us),
            format!("{:.3}%", r.stale_fraction * 100.0),
            r.errors.to_string(),
        ]);
    }
    t
}

/// Ablation A — read repair chance 0 / 0.1 / 1.0 at a high RF, CL=ONE,
/// read-mostly: the mechanism behind the Fig. 1 Cassandra read knee.
/// Variants are independent, so each is one sweep cell.
pub fn ablate_read_repair(cfg: &AblationConfig, rf: u32) -> Table {
    let chances = [0.0, 0.1, 1.0];
    let rows = Sweep::from_env()
        .run(cfg.seed, &chances, |_, &chance| {
            let mut store =
                build_cstore_with(&cfg.scale, rf, Consistency::One, Consistency::One, |c| {
                    c.read_repair_chance = chance
                });
            driver::load(&mut store, cfg.scale.records, cfg.scale.value_len, cfg.seed);
            let out = driver::run(&mut store, &cfg.driver(WorkloadSpec::read_mostly()));
            to_row(&format!("read_repair_chance={chance}"), &out, &store)
        })
        .results;
    rows_table(
        &format!("Ablation — read repair chance (cstore, RF={rf}, CL=ONE, read mostly)"),
        &rows,
    )
}

/// Ablation B — commit-log durability: periodic (deployed default) vs
/// per-write sync on a write-heavy workload.
pub fn ablate_commitlog(cfg: &AblationConfig) -> Table {
    let modes = [
        ("periodic (default)", CommitlogSync::Periodic),
        ("per-write sync", CommitlogSync::PerWrite),
    ];
    let rows = Sweep::from_env()
        .run(cfg.seed, &modes, |_, &(label, mode)| {
            let mut store =
                build_cstore_with(&cfg.scale, 3, Consistency::One, Consistency::One, |c| {
                    c.commitlog_sync = mode
                });
            driver::load(&mut store, cfg.scale.records, cfg.scale.value_len, cfg.seed);
            let out = driver::run(&mut store, &cfg.driver(WorkloadSpec::read_update()));
            to_row(label, &out, &store)
        })
        .results;
    rows_table(
        "Ablation — commit-log durability (cstore, RF=3, read & update)",
        &rows,
    )
}

/// Extension — Pokluda et al.-style failover: phase throughput for both
/// stores before a node failure, while the node is down, and after
/// recovery.
pub fn failover_phases(cfg: &AblationConfig) -> Table {
    let workload = WorkloadSpec::read_mostly;
    let victim = NodeId(0);
    // The fail/recover sequences ride on the fault-injection subsystem: a
    // plan event at t=0 fires before the first issued op (fault wrapper
    // events are scheduled ahead of the thread stagger), so "node down"
    // measures a run that starts with the victim already dead, and
    // "recovered" replays hints inside the same driver sim that serves
    // the load.
    let crash_now = FaultPlan::new().crash_at(victim, 0);
    let recover_now = FaultPlan::new().recover_at(victim, 0);
    let faulted = |mut dcfg: DriverConfig, plan: &FaultPlan| {
        dcfg.faults = plan.clone();
        dcfg
    };

    // Each store's before/during/after sequence mutates one cluster, so the
    // phases stay serial inside a cell; the two stores run as parallel
    // sweep cells and the ordered collection keeps cstore rows first.
    let cells = [StoreKind::CStore, StoreKind::HStore];
    let rows: Vec<AblationRow> = Sweep::from_env()
        .run(cfg.seed, &cells, |_, &kind| match kind {
            StoreKind::CStore => {
                let mut rows = Vec::new();
                let mut store =
                    build_cstore_with(&cfg.scale, 3, Consistency::One, Consistency::One, |_| {});
                driver::load(&mut store, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                let healthy = driver::run(&mut store, &cfg.driver(workload()));
                rows.push(to_row("cstore healthy", &healthy, &store));

                let degraded =
                    driver::run(&mut store, &faulted(cfg.driver(workload()), &crash_now));
                rows.push(to_row("cstore node down", &degraded, &store));

                let recovered =
                    driver::run(&mut store, &faulted(cfg.driver(workload()), &recover_now));
                rows.push(to_row("cstore recovered", &recovered, &store));
                rows
            }
            StoreKind::HStore => {
                let mut rows = Vec::new();
                let mut store = build_hstore(&cfg.scale, 3);
                driver::load(&mut store, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                let healthy = driver::run(&mut store, &cfg.driver(workload()));
                rows.push(to_row("hstore healthy", &healthy, &store));

                let failed_over =
                    driver::run(&mut store, &faulted(cfg.driver(workload()), &crash_now));
                rows.push(to_row("hstore after failover", &failed_over, &store));

                let recovered =
                    driver::run(&mut store, &faulted(cfg.driver(workload()), &recover_now));
                rows.push(to_row("hstore recovered", &recovered, &store));
                rows
            }
        })
        .results
        .into_iter()
        .flatten()
        .collect();

    rows_table(
        "Extension — failover phases (read mostly, RF=3, one node killed)",
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_repair_ablation_runs() {
        let t = ablate_read_repair(&AblationConfig::quick(), 3);
        assert_eq!(t.rows.len(), 3);
        assert!(t.render().contains("read_repair_chance=0"));
    }

    #[test]
    fn commitlog_ablation_shows_per_write_cost() {
        let t = ablate_commitlog(&AblationConfig::quick());
        assert_eq!(t.rows.len(), 2);
        // Column 2 is mean latency like "3.20ms"; parse back loosely by
        // comparing throughput (col 1): periodic must beat per-write sync.
        let parse = |s: &str| -> f64 {
            if let Some(k) = s.strip_suffix('k') {
                k.parse::<f64>().unwrap_or(0.0) * 1_000.0
            } else {
                s.parse::<f64>().unwrap_or(0.0)
            }
        };
        let periodic = parse(&t.rows[0][1]);
        let perwrite = parse(&t.rows[1][1]);
        assert!(
            periodic > perwrite,
            "periodic {periodic} should out-run per-write {perwrite}"
        );
    }

    #[test]
    fn failover_phases_run_without_errors_at_cl_one() {
        let t = failover_phases(&AblationConfig::quick());
        assert_eq!(t.rows.len(), 6);
        // cstore at CL=ONE must keep serving with a node down.
        let down_row = &t.rows[1];
        assert_eq!(down_row[0], "cstore node down");
        assert_eq!(down_row[4], "0", "CL=ONE should ride through: {down_row:?}");
    }
}

/// Ablation — partitioner choice: the order-preserving partitioner the scan
/// workloads require vs the hashing (Murmur-style) partitioner Cassandra
/// defaults to. Measures point-op throughput and the per-node primary-load
/// balance; range scans are only meaningful under the ordered partitioner.
pub fn ablate_partitioner(cfg: &AblationConfig) -> Table {
    let mut t = Table::new(
        "Ablation — partitioner (cstore, RF=3, read & update)",
        &[
            "partitioner",
            "throughput",
            "mean latency",
            "primary-load skew (max/min)",
        ],
    );
    let variants = [true, false];
    let rows = Sweep::from_env()
        .run(cfg.seed, &variants, |_, &ordered| {
            let nodes = cfg.scale.nodes;
            let tokens = cfg.scale.tokens();
            let mut store =
                build_cstore_with(&cfg.scale, 3, Consistency::One, Consistency::One, |c| {
                    c.partitioner = if ordered {
                        cstore::Partitioner::order_preserving(tokens)
                    } else {
                        cstore::Partitioner::murmur()
                    };
                });
            driver::load(&mut store, cfg.scale.records, cfg.scale.value_len, cfg.seed);
            let out = driver::run(&mut store, &cfg.driver(WorkloadSpec::read_update()));
            // Primary-load balance: how evenly the preloaded keys spread.
            let mut counts = vec![0u64; nodes];
            for i in 0..cfg.scale.records.min(20_000) {
                counts[store.ring().primary(&ycsb::encode_key(i))] += 1;
            }
            let min = *counts.iter().min().unwrap() as f64;
            let max = *counts.iter().max().unwrap() as f64;
            vec![
                if ordered {
                    "order-preserving".into()
                } else {
                    "murmur (hashing)".into()
                },
                fmt_ops(out.throughput),
                fmt_us(out.mean_latency_us),
                format!("{:.2}", max / min.max(1.0)),
            ]
        })
        .results;
    for row in rows {
        t.row(row);
    }
    t
}

#[cfg(test)]
mod partitioner_tests {
    use super::*;

    #[test]
    fn both_partitioners_balance_hashed_keys() {
        let t = ablate_partitioner(&AblationConfig::quick());
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let skew: f64 = row[3].parse().unwrap();
            assert!(skew < 1.6, "{} skew {skew} too high", row[0]);
        }
    }
}
