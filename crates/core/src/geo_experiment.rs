//! Figure 7: the geo-replication (PACELC) experiment.
//!
//! The paper's testbed is one datacenter; its §6 future work asks what the
//! replication/consistency trade looks like when replicas sit behind WAN
//! links. This experiment sweeps region count × consistency level over the
//! geo subsystem: the Cassandra analog places `rf_per_dc` replicas in every
//! datacenter with [`geo::Strategy::NetworkTopology`] and runs the
//! datacenter-aware levels (`LOCAL_QUORUM` settles inside the coordinator's
//! DC, `EACH_QUORUM` waits on the slowest DC's quorum), while the HBase
//! analog runs its async cluster-replication mode (the primary region
//! serves all traffic and ships committed WAL groups to follower regions).
//!
//! The output is the PACELC trade made measurable: as regions grow, weak
//! levels keep their latency but pay in staleness (Cassandra: stale-read
//! fraction; HBase: the follower replication window), strong levels pay
//! one or two WAN round trips per operation.

use cstore::{CStoreConfig, Consistency, Partitioner};
use faults::FaultPlan;
use hstore::HStoreConfig;
use ycsb::{balanced_tokens, WorkloadSpec};

use crate::consistency::Level;
use crate::driver::{self, ArrivalMode, DriverConfig};
use crate::report::{fmt_ops, Table};
use crate::resilience::RetryPolicy;
use crate::setup::{Scale, StoreKind};
use crate::sweep::{BasePool, Sweep, Telemetry};

/// The level label used for the HBase analog's async-replication rows
/// (HBase has no consistency knob; geo mode adds asynchrony, not a level).
pub const HSTORE_LEVEL: &str = "async-ship";

/// The five strategies of the geo sweep: the paper's three plus the two
/// datacenter-aware levels the geo subsystem adds.
pub const GEO_LEVELS: [Level; 5] = [
    Level {
        name: "ONE",
        read: Consistency::One,
        write: Consistency::One,
    },
    Level {
        name: "LOCAL_QUORUM",
        read: Consistency::LocalQuorum,
        write: Consistency::LocalQuorum,
    },
    Level {
        name: "QUORUM",
        read: Consistency::Quorum,
        write: Consistency::Quorum,
    },
    Level {
        name: "EACH_QUORUM",
        read: Consistency::EachQuorum,
        write: Consistency::EachQuorum,
    },
    Level {
        name: "write ALL",
        read: Consistency::One,
        write: Consistency::All,
    },
];

/// Configuration of the Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct GeoExperimentConfig {
    /// Record/cache scale (`scale.nodes` is ignored: the cluster is
    /// `nodes_per_region × regions`).
    pub scale: Scale,
    /// Servers per datacenter.
    pub nodes_per_region: usize,
    /// Replicas per datacenter (Cassandra analog: the NetworkTopology
    /// quota; HBase analog: the in-region HDFS replication factor).
    pub rf_per_dc: u32,
    /// Region counts swept (the x-axis; 1 = the paper's single-DC testbed).
    pub region_counts: Vec<u32>,
    /// One-way inter-region delay, microseconds.
    pub inter_region_us: u64,
    /// Relative WAN jitter applied per region pair at matrix build time
    /// (asymmetric links; still deterministic).
    pub wan_jitter: f64,
    /// Extra HBase-analog shipping lag before a committed group leaves the
    /// primary.
    pub ship_lag_us: u64,
    /// Consistency strategies swept (Cassandra analog only).
    pub levels: Vec<Level>,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Client threads.
    pub threads: usize,
    /// Target throughput (0 = unthrottled peak probe).
    pub target_ops_per_sec: f64,
    /// Warm-up completions per run.
    pub warmup_ops: u64,
    /// Measured completions per run.
    pub measure_ops: u64,
    /// Fault plan injected into every cell (empty by default; region-scoped
    /// kinds let a whole datacenter crash or partition mid-run).
    pub faults: FaultPlan,
    /// Seed. Cells with the same region count share their driver seed, so
    /// levels that take identical code paths (single-region LOCAL_QUORUM vs
    /// QUORUM) produce bit-identical rows.
    pub seed: u64,
}

impl Default for GeoExperimentConfig {
    fn default() -> Self {
        Self {
            scale: Scale::stress(),
            nodes_per_region: 5,
            rf_per_dc: 3,
            region_counts: vec![1, 2, 3],
            inter_region_us: geo::DEFAULT_INTER_REGION_US,
            wan_jitter: 0.2,
            ship_lag_us: 10_000,
            levels: GEO_LEVELS.to_vec(),
            workload: WorkloadSpec::read_update(),
            threads: 48,
            target_ops_per_sec: 0.0,
            warmup_ops: 2_000,
            measure_ops: 20_000,
            faults: FaultPlan::new(),
            seed: 42,
        }
    }
}

impl GeoExperimentConfig {
    /// A fast variant for tests and smoke runs (same grid, tiny scale).
    pub fn quick() -> Self {
        Self {
            scale: Scale::tiny(),
            threads: 8,
            warmup_ops: 100,
            measure_ops: 600,
            ..Self::default()
        }
    }
}

/// One Fig. 7 cell: one (store, region count, level) run.
#[derive(Debug, Clone)]
pub struct GeoCell {
    /// Which store.
    pub store: StoreKind,
    /// Datacenters in the cluster.
    pub regions: u32,
    /// Consistency strategy name ([`HSTORE_LEVEL`] for the HBase analog).
    pub level: &'static str,
    /// Total replicas per key across all datacenters.
    pub rf_total: u32,
    /// Runtime throughput, ops/s.
    pub runtime: f64,
    /// Successful (error-free) throughput, ops/s.
    pub goodput: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Failed operations in the measured window.
    pub errors: u64,
    /// Stale-read fraction the driver measured (Cassandra analog; the
    /// HBase primary is strongly consistent, so 0 there).
    pub stale_fraction: f64,
    /// Mean replication window, µs: commit-to-follower-apply gap (HBase
    /// analog async mode; 0 for the Cassandra analog and single region).
    pub repl_window_us: f64,
}

/// The full Fig. 7 result.
#[derive(Debug, Clone)]
pub struct GeoResult {
    /// Every (store, regions, level) cell.
    pub cells: Vec<GeoCell>,
    /// What the sweep cost.
    pub telemetry: Telemetry,
}

impl GeoResult {
    /// The cell for `(store, regions, level)`, if present.
    pub fn cell(&self, store: StoreKind, regions: u32, level: &str) -> Option<&GeoCell> {
        self.cells
            .iter()
            .find(|c| c.store == store && c.regions == regions && c.level == level)
    }

    /// Render one table per region count — the Fig. 7 panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut region_counts: Vec<u32> = self.cells.iter().map(|c| c.regions).collect();
        region_counts.sort_unstable();
        region_counts.dedup();
        for regions in region_counts {
            let mut t = Table::new(
                &format!("Fig. 7 — geo-replication PACELC: {regions} region(s)"),
                &[
                    "store",
                    "level",
                    "rf_total",
                    "runtime",
                    "goodput",
                    "mean_us",
                    "p99_us",
                    "stale_frac",
                    "repl_window_us",
                ],
            );
            for c in self.cells.iter().filter(|c| c.regions == regions) {
                t.row(vec![
                    c.store.short().to_owned(),
                    c.level.to_owned(),
                    c.rf_total.to_string(),
                    fmt_ops(c.runtime),
                    fmt_ops(c.goodput),
                    format!("{:.1}", c.mean_us),
                    c.p99_us.to_string(),
                    format!("{:.5}", c.stale_fraction),
                    format!("{:.1}", c.repl_window_us),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// CSV table of every cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fig7_geo",
            &[
                "store",
                "regions",
                "level",
                "rf_total",
                "runtime",
                "goodput",
                "mean_us",
                "p99_us",
                "errors",
                "stale_fraction",
                "repl_window_us",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.store.short().to_owned(),
                c.regions.to_string(),
                c.level.to_owned(),
                c.rf_total.to_string(),
                format!("{:.1}", c.runtime),
                format!("{:.1}", c.goodput),
                format!("{:.1}", c.mean_us),
                c.p99_us.to_string(),
                c.errors.to_string(),
                format!("{:.5}", c.stale_fraction),
                format!("{:.1}", c.repl_window_us),
            ]);
        }
        t
    }
}

/// The per-region-pair jitter seed is tied to the experiment seed so two
/// runs of the same config see the same asymmetric WAN matrix.
fn geo_config(cfg: &GeoExperimentConfig, regions: u32) -> geo::GeoConfig {
    geo::GeoConfig {
        regions,
        racks_per_region: 1,
        inter_region_us: cfg.inter_region_us,
        wan_jitter: cfg.wan_jitter,
        jitter_seed: cfg.seed,
    }
}

/// Build the Cassandra-analog geo cluster: `nodes_per_region` nodes per
/// datacenter, `rf_per_dc` replicas per datacenter via NetworkTopology.
fn build_geo_cstore(cfg: &GeoExperimentConfig, regions: u32, level: Level) -> cstore::Cluster {
    let npr = cfg.nodes_per_region;
    let nodes = npr * regions as usize;
    let rf_total = cfg.rf_per_dc * regions;
    let mut c = CStoreConfig::paper_testbed(
        rf_total,
        Partitioner::order_preserving(balanced_tokens(nodes)),
    );
    c.nodes = nodes;
    let prop = c.profile.nic.prop_us;
    c.topology = geo_config(cfg, regions).topology(npr, prop, prop);
    c.strategy = geo::Strategy::network_topology(regions, cfg.rf_per_dc);
    c.lsm = cfg.scale.lsm();
    c.read_cl = level.read;
    c.write_cl = level.write;
    cstore::Cluster::new(c)
}

/// Build the HBase-analog geo cluster: the primary region serves all
/// traffic, `regions - 1` follower regions receive shipped WAL groups.
fn build_geo_hstore(cfg: &GeoExperimentConfig, regions: u32) -> hstore::Cluster {
    let npr = cfg.nodes_per_region;
    let splits: Vec<_> = balanced_tokens(npr).into_iter().skip(1).collect();
    let mut h = HStoreConfig::paper_testbed(cfg.rf_per_dc.min(npr as u32), splits);
    h.nodes = npr;
    h.topology = simkit::Topology::single_rack(npr, h.profile.nic.prop_us);
    h.lsm = cfg.scale.lsm();
    h.follower_regions = regions - 1;
    h.ship_wan_us = cfg.inter_region_us;
    h.ship_lag_us = cfg.ship_lag_us;
    hstore::Cluster::new(h, 0xB0A7 ^ u64::from(regions))
}

fn driver_config(cfg: &GeoExperimentConfig, seed: u64) -> DriverConfig {
    DriverConfig {
        workload: cfg.workload.clone(),
        threads: cfg.threads,
        target_ops_per_sec: cfg.target_ops_per_sec,
        records: cfg.scale.records,
        value_len: cfg.scale.value_len,
        warmup_ops: cfg.warmup_ops,
        measure_ops: cfg.measure_ops,
        seed,
        faults: cfg.faults.clone(),
        timeline_window_us: 0,
        retry: RetryPolicy::none(),
        trace: obs::TraceConfig::off(),
        audit: audit::AuditConfig::off(),
        arrival: ArrivalMode::ClosedLoop,
    }
}

fn goodput(run: &driver::RunOutcome, measure_ops: u64) -> f64 {
    if measure_ops == 0 {
        return 0.0;
    }
    run.throughput * (1.0 - run.errors as f64 / measure_ops as f64)
}

/// Run the full Fig. 7 experiment through the sweep engine.
pub fn run_geo(cfg: &GeoExperimentConfig) -> GeoResult {
    run_geo_with(cfg, &Sweep::from_env())
}

/// [`run_geo`] on a caller-configured engine.
pub fn run_geo_with(cfg: &GeoExperimentConfig, sweep: &Sweep) -> GeoResult {
    // One cell per (regions, level) for the Cassandra analog plus one
    // async-replication cell per region count for the HBase analog, in
    // region-count-major order. `None` marks the HBase cell.
    let specs: Vec<(u32, Option<usize>)> = cfg
        .region_counts
        .iter()
        .flat_map(|&r| {
            (0..cfg.levels.len())
                .map(move |l| (r, Some(l)))
                .chain(std::iter::once((r, None)))
        })
        .collect();
    let cpool: BasePool<(u32, usize), cstore::Cluster> = BasePool::new(
        cfg.region_counts
            .iter()
            .flat_map(|&r| (0..cfg.levels.len()).map(move |l| (r, l))),
    );
    let hpool: BasePool<u32, hstore::Cluster> = BasePool::new(cfg.region_counts.iter().copied());

    let outcome = sweep.run(cfg.seed, &specs, |_ctx, &(regions, level_idx)| {
        // Cells with equal region counts share one driver seed so levels
        // that must coincide (single-region LOCAL_QUORUM vs QUORUM) stay
        // bit-identical; different region counts get distinct streams.
        let cell_seed = cfg.seed ^ (u64::from(regions) << 17);
        match level_idx {
            Some(l) => {
                let level = cfg.levels[l];
                let mut snapshot = cpool
                    .get_or_load(&(regions, l), || {
                        let mut base = build_geo_cstore(cfg, regions, level);
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                let run = driver::run(&mut snapshot, &driver_config(cfg, cell_seed));
                GeoCell {
                    store: StoreKind::CStore,
                    regions,
                    level: level.name,
                    rf_total: cfg.rf_per_dc * regions,
                    runtime: run.throughput,
                    goodput: goodput(&run, cfg.measure_ops),
                    mean_us: run.mean_latency_us,
                    p99_us: run.metrics.overall().quantile(0.99),
                    errors: run.errors,
                    stale_fraction: run.stale_fraction,
                    repl_window_us: 0.0,
                }
            }
            None => {
                let mut snapshot = hpool
                    .get_or_load(&regions, || {
                        let mut base = build_geo_hstore(cfg, regions);
                        driver::load(&mut base, cfg.scale.records, cfg.scale.value_len, cfg.seed);
                        base
                    })
                    .snapshot();
                let run = driver::run(&mut snapshot, &driver_config(cfg, cell_seed));
                GeoCell {
                    store: StoreKind::HStore,
                    regions,
                    level: HSTORE_LEVEL,
                    rf_total: cfg.rf_per_dc.min(cfg.nodes_per_region as u32) * regions,
                    runtime: run.throughput,
                    goodput: goodput(&run, cfg.measure_ops),
                    mean_us: run.mean_latency_us,
                    p99_us: run.metrics.overall().quantile(0.99),
                    errors: run.errors,
                    stale_fraction: run.stale_fraction,
                    repl_window_us: snapshot.mean_replication_window_us(),
                }
            }
        }
    });

    let mut telemetry = outcome.telemetry;
    telemetry.record_pool(&cpool);
    telemetry.record_pool(&hpool);
    GeoResult {
        cells: outcome.results,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_geo_produces_the_full_grid() {
        let cfg = GeoExperimentConfig::quick();
        let res = run_geo(&cfg);
        // 3 region counts × (5 levels + 1 hstore row).
        assert_eq!(res.cells.len(), 18);
        for c in &res.cells {
            assert!(c.runtime > 0.0, "{c:?}");
        }
        assert!(res.render().contains("Fig. 7"));
        assert_eq!(res.telemetry.base_loads, 18);
    }

    #[test]
    fn single_region_dc_aware_levels_match_quorum_exactly() {
        let mut cfg = GeoExperimentConfig::quick();
        cfg.region_counts = vec![1];
        let res = run_geo(&cfg);
        let q = res.cell(StoreKind::CStore, 1, "QUORUM").expect("cell");
        for level in ["LOCAL_QUORUM", "EACH_QUORUM"] {
            let c = res.cell(StoreKind::CStore, 1, level).expect("cell");
            assert_eq!(c.runtime, q.runtime, "{level} runtime diverged");
            assert_eq!(c.mean_us, q.mean_us, "{level} latency diverged");
            assert_eq!(c.p99_us, q.p99_us, "{level} p99 diverged");
            assert_eq!(c.errors, q.errors);
        }
    }

    #[test]
    fn three_regions_reproduce_the_pacelc_trade() {
        let mut cfg = GeoExperimentConfig::quick();
        cfg.region_counts = vec![3];
        let res = run_geo(&cfg);
        let one = res.cell(StoreKind::CStore, 3, "ONE").expect("cell");
        let each = res.cell(StoreKind::CStore, 3, "EACH_QUORUM").expect("cell");
        // Latency: EACH_QUORUM pays at least one WAN round trip per op.
        assert!(
            each.mean_us > one.mean_us + 2.0 * cfg.inter_region_us as f64 * 0.5,
            "EACH_QUORUM {:.0}µs should dwarf ONE {:.0}µs",
            each.mean_us,
            one.mean_us
        );
        // Staleness: the strong level's R+W quotas overlap in every DC.
        assert!(each.stale_fraction <= one.stale_fraction);
        // The HBase analog keeps local latency but pays a replication
        // window of at least ship lag + WAN delay.
        let h = res.cell(StoreKind::HStore, 3, HSTORE_LEVEL).expect("cell");
        assert!(h.mean_us < each.mean_us);
        assert!(h.repl_window_us >= (cfg.ship_lag_us + cfg.inter_region_us) as f64);
    }

    #[test]
    fn single_region_nts_run_matches_simple_strategy_run() {
        // The whole-experiment equivalence behind the placement refactor: a
        // driver run over a 1-region NetworkTopology cluster is event-for-
        // event identical to the same run over classic SimpleStrategy
        // placement (same topology distances, same tokens, same RF).
        let cfg = GeoExperimentConfig::quick();
        let run = |strategy: geo::Strategy| {
            let level = GEO_LEVELS[0];
            let mut c = build_geo_cstore(&cfg, 1, level);
            assert_eq!(c.config().strategy, geo::Strategy::network_topology(1, 3));
            if strategy == geo::Strategy::Simple {
                let mut base = CStoreConfig::paper_testbed(
                    3,
                    Partitioner::order_preserving(balanced_tokens(cfg.nodes_per_region)),
                );
                base.nodes = cfg.nodes_per_region;
                let prop = base.profile.nic.prop_us;
                base.topology = geo_config(&cfg, 1).topology(cfg.nodes_per_region, prop, prop);
                base.lsm = cfg.scale.lsm();
                base.read_cl = level.read;
                base.write_cl = level.write;
                c = cstore::Cluster::new(base);
            }
            driver::load(&mut c, cfg.scale.records, cfg.scale.value_len, cfg.seed);
            let run = driver::run(&mut c, &driver_config(&cfg, cfg.seed));
            (
                run.throughput,
                run.mean_latency_us,
                run.events_dispatched,
                run.sim_duration_us,
            )
        };
        assert_eq!(
            run(geo::Strategy::Simple),
            run(geo::Strategy::network_topology(1, 3))
        );
    }

    #[test]
    fn region_crash_hurts_each_quorum_hardest() {
        // Satellite check: a whole-datacenter crash through the region-
        // scoped fault plan. EACH_QUORUM needs every DC's quorum, so it
        // errors on (nearly) every write while region 1 is down;
        // LOCAL_QUORUM only fails ops coordinated by the dead DC.
        let mut cfg = GeoExperimentConfig::quick();
        cfg.region_counts = vec![2];
        cfg.faults = FaultPlan::new().crash_region_at(1, 50_000);
        cfg.levels = vec![GEO_LEVELS[1], GEO_LEVELS[3]];
        let res = run_geo(&cfg);
        let local = res
            .cell(StoreKind::CStore, 2, "LOCAL_QUORUM")
            .expect("cell");
        let each = res.cell(StoreKind::CStore, 2, "EACH_QUORUM").expect("cell");
        assert!(each.errors > 0, "EACH_QUORUM must fail during a DC outage");
        assert!(
            each.errors > local.errors,
            "EACH_QUORUM ({}) should fail more than LOCAL_QUORUM ({})",
            each.errors,
            local.errors
        );
    }
}
